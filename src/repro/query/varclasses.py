"""Variable classification for conjunctive queries (paper, Section 3.2).

For a normalized CQ ``Q`` this module computes, per variable ``x``:

* ``eq(x, Q)`` — the set of variables equal to ``x`` via variable-to-
  variable equality atoms and transitivity;
* ``eq+(x, Q)`` — the extension of ``eq`` where two classes are merged
  when they are pinned to the *same* constant (``x = c`` and ``y = c``
  imply ``x = y``);
* *constant variables* — ``eq(x, Q)`` contains some ``y`` with ``y = c``
  in ``Q``;
* *data-dependent* vs. *data-independent* variables — ``eq(x, Q)``
  contains a relation-atom variable or not (Example 3.8 shows the two
  notions genuinely differ: ``u`` can be in ``eq+(x)`` yet be
  data-independent).

The analysis also records classical satisfiability: a query equating two
distinct constants (directly or transitively) has an empty answer on
every instance, which Example 3.12 exploits (``Q'2(x) = (x=1 ∧ x=2)`` is
covered *because* it is trivially empty).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from .._util import UnionFind
from .ast import CQ
from .terms import Const, Var


@dataclass
class VariableAnalysis:
    """The result of analysing one CQ; obtain via :func:`analyze_variables`."""

    query: CQ
    #: eq-classes: union-find over variables using var-var equalities only.
    eq: UnionFind = field(repr=False, default=None)
    #: eq+-classes: eq plus merging classes pinned to the same constant.
    eqplus: UnionFind = field(repr=False, default=None)
    #: For each eq-class root, the set of constants the class is pinned to.
    class_constants: dict[Var, set[Const]] = field(default_factory=dict)
    #: Variables whose eq-class is pinned to at least one constant.
    constant_vars: set[Var] = field(default_factory=set)
    #: Variables whose eq-class contains a relation-atom variable.
    data_dependent: set[Var] = field(default_factory=set)
    #: False when some class is pinned to two distinct constants.
    classically_satisfiable: bool = True

    # -- class queries -------------------------------------------------------

    def eq_class(self, var: Var) -> set[Var]:
        """``eq(x, Q)`` as a set (contains ``x`` itself)."""
        return self.eq.class_of(var)

    def eqplus_class(self, var: Var) -> set[Var]:
        """``eq+(x, Q)`` as a set."""
        return self.eqplus.class_of(var)

    def is_constant_var(self, var: Var) -> bool:
        return var in self.constant_vars

    def is_data_dependent(self, var: Var) -> bool:
        return var in self.data_dependent

    def is_data_independent(self, var: Var) -> bool:
        return var not in self.data_dependent

    def constant_of(self, var: Var) -> Const | None:
        """The constant pinning ``var``'s eq-class, if any.

        When the query is classically unsatisfiable a class may have
        several constants; an arbitrary-but-deterministic one is
        returned.
        """
        constants = self.class_constants.get(self.eq.find(var))
        if not constants:
            return None
        return min(constants, key=lambda c: repr(c.value))

    def pinned_value(self, var: Var):
        const = self.constant_of(var)
        return None if const is None else const.value

    def data_independent_vars(self) -> set[Var]:
        return {v for v in self.query.variables() if v not in self.data_dependent}

    def same_eq(self, a: Var, b: Var) -> bool:
        return self.eq.same(a, b)

    def same_eqplus(self, a: Var, b: Var) -> bool:
        return self.eqplus.same(a, b)


def analyze_variables(q: CQ) -> VariableAnalysis:
    """Compute the full variable classification of a normalized CQ.

    >>> from .ast import Atom, Equality
    >>> q = CQ("Q", (Var("x"), Var("u")),
    ...        (Atom("R", (Var("x"), Var("y"))),),
    ...        (Equality(Var("x"), Const(1)), Equality(Var("x"), Var("y")),
    ...         Equality(Var("u"), Const(1)), Equality(Var("u"), Var("v"))))
    >>> analysis = analyze_variables(q)
    >>> sorted(v.name for v in analysis.eq_class(Var("x")))
    ['x', 'y']
    >>> sorted(v.name for v in analysis.eqplus_class(Var("x")))
    ['u', 'v', 'x', 'y']
    >>> analysis.is_data_dependent(Var("u"))
    False
    """
    variables = q.variables()
    eq = UnionFind(variables)
    for equality in q.equalities:
        if equality.is_var_var:
            eq.union(equality.left, equality.right)

    # Constants pinned to each eq-class.
    class_constants: dict[Var, set[Const]] = {}
    for equality in q.equalities:
        if equality.is_var_const:
            root = eq.find(equality.left)
            class_constants.setdefault(root, set()).add(equality.right)
    # Re-key by the current roots (unions above may have changed them).
    class_constants = _rekey_by_root(eq, class_constants)

    classically_satisfiable = all(
        len(constants) <= 1 for constants in class_constants.values()
    )

    constant_vars = {
        v for v in variables if class_constants.get(eq.find(v))
    }

    atom_vars = q.atom_variables()
    dependent_roots = {eq.find(v) for v in atom_vars}
    data_dependent = {v for v in variables if eq.find(v) in dependent_roots}

    # eq+ merges classes pinned to a shared constant.
    eqplus = eq.copy()
    pinning: dict[Const, Var] = {}
    for root, constants in class_constants.items():
        for constant in constants:
            if constant in pinning:
                eqplus.union(pinning[constant], root)
            else:
                pinning[constant] = root

    return VariableAnalysis(
        query=q,
        eq=eq,
        eqplus=eqplus,
        class_constants=class_constants,
        constant_vars=constant_vars,
        data_dependent=data_dependent,
        classically_satisfiable=classically_satisfiable,
    )


def _rekey_by_root(eq: UnionFind, mapping: Mapping[Var, set[Const]]) -> dict[Var, set[Const]]:
    rekeyed: dict[Var, set[Const]] = {}
    for key, constants in mapping.items():
        rekeyed.setdefault(eq.find(key), set()).update(constants)
    return rekeyed
