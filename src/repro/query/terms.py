"""Terms: variables and constants.

Both are immutable and hashable so they can key dictionaries, live in
sets and act as union-find elements.  Constants wrap arbitrary hashable
Python values (strings, ints, dates-as-strings, ...), matching the
paper's countably infinite domain ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union


@dataclass(frozen=True)
class Var:
    """A query variable.

    >>> Var("x") == Var("x")
    True
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Const:
    """A constant from the data domain.

    >>> Const(1) == Const(1)
    True
    >>> Const("1") == Const(1)
    False
    """

    value: Hashable

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


Term = Union[Var, Const]


def is_var(term: Term) -> bool:
    return isinstance(term, Var)


def is_const(term: Term) -> bool:
    return isinstance(term, Const)


def term_str(term: Term) -> str:
    return str(term)
