"""Terms: variables and constants.

Both are immutable and hashable so they can key dictionaries, live in
sets and act as union-find elements.  Constants wrap arbitrary hashable
Python values (strings, ints, dates-as-strings, ...), matching the
paper's countably infinite domain ``D``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union


@dataclass(frozen=True)
class Var:
    """A query variable.

    >>> Var("x") == Var("x")
    True
    """

    name: str

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:
        return f"Var({self.name!r})"


@dataclass(frozen=True)
class Const:
    """A constant from the data domain.

    >>> Const(1) == Const(1)
    True
    >>> Const("1") == Const(1)
    False
    """

    value: Hashable

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return repr(self.value)
        return str(self.value)

    def __repr__(self) -> str:
        return f"Const({self.value!r})"


@dataclass(frozen=True)
class Param:
    """A named parameter placeholder ``$name`` awaiting a constant.

    Parameters are *values*, not terms: a template query carries them
    wrapped in :class:`Const` (``Const(Param("p"))``), so every static
    analysis — coverage, plan construction, cost certificates — treats
    them exactly like the constant they will become.  That is sound
    because the paper's guarantees are determined by Q and A only, never
    by the constant's value; ``repro.service.templates`` substitutes the
    bound value into the compiled plan at request time.

    >>> Param("p") == Param("p")
    True
    >>> str(Const(Param("p")))
    '$p'
    """

    name: str

    def __str__(self) -> str:
        return f"${self.name}"

    def __repr__(self) -> str:
        return f"Param({self.name!r})"


Term = Union[Var, Const]


def is_var(term: Term) -> bool:
    return isinstance(term, Var)


def is_const(term: Term) -> bool:
    return isinstance(term, Const)


def is_param(term) -> bool:
    """True for a :class:`Const` wrapping an unbound :class:`Param`."""
    return isinstance(term, Const) and isinstance(term.value, Param)


def term_str(term: Term) -> str:
    return str(term)
