"""Normalization to the paper's assumed normal form (Section 3.2).

The paper assumes, w.l.o.g., that queries are *safe* (every variable is
equal to a relation-atom variable or to a constant), that only variables
appear in relation atoms while constants live in equality atoms, and
that queries are written with explicit equality atoms.  This module
enforces those assumptions:

* :func:`normalize_cq` — validates a CQ against a schema, moves inline
  constants out of relation atoms (``R(x, 1)`` becomes ``R(x, v) ∧
  v = 1``), and checks safety.
* :func:`positive_to_ucq` — converts an ∃FO+ query to an equivalent UCQ
  by DNF expansion, the normal form Lemma 3.6 and Corollary 3.13 reason
  over.
* :func:`rename_apart` — alpha-renames a CQ away from a set of taken
  names, for building unions and expansions with disjoint variables.
* :func:`query_fingerprint` — an alpha-invariant canonical string for a
  query; the plan-cache key ingredient of ``repro.service``.
"""

from __future__ import annotations

from typing import Iterable

from .._util import FreshNames, UnionFind
from ..errors import QueryError, UnsafeQueryError
from ..schema.relation import Schema
from .ast import (CQ, UCQ, Atom, Equality, FAnd, FAtom, FEq, FExists, FOr,
                  Formula, PositiveQuery)
from .terms import Var, is_const, is_var


def validate_arities(q: CQ, schema: Schema) -> None:
    """Raise :class:`QueryError` when an atom's arity disagrees with the schema."""
    for atom in q.atoms:
        relation = schema.relation(atom.relation)
        if atom.arity != relation.arity:
            raise QueryError(
                f"atom {atom} has arity {atom.arity} but relation "
                f"{relation} has arity {relation.arity}"
            )


def extract_inline_constants(q: CQ) -> CQ:
    """Replace constants inside relation atoms by fresh constrained variables.

    ``R(x, 1)`` becomes ``R(x, c_1) ∧ c_1 = 1``.  Idempotent on queries
    already in normal form.
    """
    if all(not atom.constants() for atom in q.atoms):
        return q
    fresh = FreshNames(v.name for v in q.variables())
    new_atoms: list[Atom] = []
    new_equalities = list(q.equalities)
    for atom in q.atoms:
        terms = []
        for term in atom.terms:
            if is_const(term):
                var = Var(fresh.fresh("c"))
                new_equalities.append(Equality(var, term))
                terms.append(var)
            else:
                terms.append(term)
        new_atoms.append(Atom(atom.relation, terms))
    return CQ(q.name, q.head, new_atoms, new_equalities)


def check_safety(q: CQ) -> None:
    """Enforce the paper's safety assumption.

    Every variable's eq-class (closure of variable-variable equalities)
    must contain a variable occurring in a relation atom, or be pinned to
    a constant.  Raises :class:`UnsafeQueryError` otherwise.
    """
    eq = UnionFind(q.variables())
    for equality in q.equalities:
        if equality.is_var_var:
            eq.union(equality.left, equality.right)
    atom_vars = q.atom_variables()
    pinned_roots = set()
    for equality in q.equalities:
        if equality.is_var_const:
            pinned_roots.add(eq.find(equality.left))
    atom_roots = {eq.find(v) for v in atom_vars}
    for var in q.variables():
        root = eq.find(var)
        if root not in atom_roots and root not in pinned_roots:
            raise UnsafeQueryError(
                f"variable {var} of {q.name} is neither joined to a "
                "relation atom nor equated with a constant"
            )


def normalize_cq(q: CQ, schema: Schema) -> CQ:
    """Full normalization pipeline for a CQ.

    Validates arities, extracts inline constants, and checks safety.
    Returns a CQ in the paper's normal form; raises on malformed input.
    """
    validate_arities(q, schema)
    normalized = extract_inline_constants(q)
    check_safety(normalized)
    return normalized


def normalize_ucq(q: UCQ, schema: Schema) -> UCQ:
    """Normalize every disjunct of a UCQ."""
    return UCQ(q.name, [normalize_cq(d, schema) for d in q.disjuncts])


def rename_apart(q: CQ, taken: Iterable[str], keep_head: bool = True) -> CQ:
    """Alpha-rename the bound variables of ``q`` away from ``taken``.

    With ``keep_head=False`` head variables are renamed too (useful when
    embedding a CQ as a sub-structure of another query); the default
    keeps the head stable.
    """
    fresh = FreshNames(set(taken) | {v.name for v in q.head})
    mapping: dict[Var, Var] = {}
    protected = set(q.head) if keep_head else set()
    for var in sorted(q.variables(), key=lambda v: v.name):
        if var in protected:
            continue
        if var.name in taken or not keep_head:
            mapping[var] = Var(fresh.fresh(var.name))
    if not mapping:
        return q
    return q.substitute(mapping)


# ---------------------------------------------------------------------------
# Canonical fingerprints (plan-cache keys).
# ---------------------------------------------------------------------------

def _cq_fingerprint(q: CQ, schema: Schema | None) -> str:
    """Canonical string of one CQ: normalized, variables renamed by
    first occurrence (head, then atoms, then equalities), name dropped."""
    if schema is not None:
        q = normalize_cq(q, schema)
    order: dict[Var, str] = {}

    def canon(term):
        if is_var(term):
            if term not in order:
                order[term] = f"v{len(order)}"
            return order[term]
        return f"c:{term.value!r}"

    head = ",".join(canon(v) for v in q.head)
    atoms = ";".join(
        f"{a.relation}({','.join(canon(t) for t in a.terms)})"
        for a in q.atoms)
    eqs = ";".join(sorted(f"{canon(e.left)}={canon(e.right)}"
                          for e in q.equalities))
    return f"({head}):-{atoms}|{eqs}"


def query_fingerprint(query, schema: Schema | None = None) -> str:
    """A canonical fingerprint determining a query up to renaming.

    Two queries with equal fingerprints are syntactically identical
    modulo variable names and the head predicate's name, so they share
    coverage verdicts, bounded plans and cost certificates — the
    fingerprint is the query half of the ``repro.service`` plan-cache
    key.  (The converse does not hold: semantically equivalent queries
    may fingerprint differently; they just cache separately.)

    When a ``schema`` is supplied, CQ/UCQ queries are normalized first,
    so e.g. ``R(x, 1)`` and ``R(x, y), y = 1`` coincide.  UCQ disjunct
    fingerprints are sorted, making unions order-insensitive.

    >>> from .parser import parse_query
    >>> a = query_fingerprint(parse_query("Q(x) :- R(x, y), y = 1"))
    >>> b = query_fingerprint(parse_query("P(u) :- R(u, w), w = 1"))
    >>> a == b
    True
    """
    if isinstance(query, CQ):
        return "cq:" + _cq_fingerprint(query, schema)
    if isinstance(query, UCQ):
        parts = sorted(_cq_fingerprint(d, schema) for d in query.disjuncts)
        return "ucq:" + "||".join(parts)
    if isinstance(query, PositiveQuery):
        return query_fingerprint(positive_to_ucq(query, schema))
    # Full FO: no normal form is attempted; the printed body (head name
    # stripped) is still a sound cache key, merely a conservative one.
    head = ",".join(str(v) for v in query.head)
    return f"fo:({head}):={query.body}"


# ---------------------------------------------------------------------------
# ∃FO+ → UCQ conversion (DNF expansion).
# ---------------------------------------------------------------------------

def _dnf(formula: Formula) -> list[list[Formula]]:
    """Disjunctive normal form of a positive formula.

    Returns a list of conjunctions, each a list of FAtom/FEq leaves.
    EXISTS nodes are dissolved: in the flat CQ representation every
    non-head variable is implicitly quantified, so explicit quantifiers
    only matter for variable scoping, which the parser has already made
    unique.
    """
    if isinstance(formula, (FAtom, FEq)):
        return [[formula]]
    if isinstance(formula, FExists):
        return _dnf(formula.child)
    if isinstance(formula, FOr):
        clauses: list[list[Formula]] = []
        for child in formula.children:
            clauses.extend(_dnf(child))
        return clauses
    if isinstance(formula, FAnd):
        clauses = [[]]
        for child in formula.children:
            child_clauses = _dnf(child)
            clauses = [c1 + c2 for c1 in clauses for c2 in child_clauses]
        return clauses
    raise QueryError(
        f"formula node {type(formula).__name__} is not positive; "
        "cannot convert to UCQ"
    )


def _uniquify_quantifiers(formula: Formula, fresh: FreshNames) -> Formula:
    """Rename quantified variables so every EXISTS binds distinct names.

    This makes the DNF's implicit-quantification reading sound: after
    renaming, dissolving EXISTS cannot capture variables across branches
    of an OR.
    """
    if isinstance(formula, (FAtom, FEq)):
        return formula
    if isinstance(formula, FAnd):
        return FAnd([_uniquify_quantifiers(c, fresh) for c in formula.children])
    if isinstance(formula, FOr):
        return FOr([_uniquify_quantifiers(c, fresh) for c in formula.children])
    if isinstance(formula, FExists):
        mapping = {v: Var(fresh.fresh(v.name)) for v in formula.variables}
        renamed_child = _substitute_formula(formula.child, mapping)
        return FExists(tuple(mapping.values()),
                       _uniquify_quantifiers(renamed_child, fresh))
    raise QueryError(f"unexpected node {type(formula).__name__} in positive formula")


def _substitute_formula(formula: Formula, mapping: dict[Var, Var]) -> Formula:
    if isinstance(formula, FAtom):
        return FAtom(formula.atom.substitute(mapping))
    if isinstance(formula, FEq):
        return FEq(formula.equality.substitute(mapping))
    if isinstance(formula, FAnd):
        return FAnd([_substitute_formula(c, mapping) for c in formula.children])
    if isinstance(formula, FOr):
        return FOr([_substitute_formula(c, mapping) for c in formula.children])
    if isinstance(formula, FExists):
        inner = {v: t for v, t in mapping.items() if v not in formula.variables}
        return FExists(formula.variables, _substitute_formula(formula.child, inner))
    raise QueryError(f"unexpected node {type(formula).__name__} in positive formula")


def positive_to_ucq(q: PositiveQuery, schema: Schema | None = None) -> UCQ:
    """Convert an ∃FO+ query to an equivalent UCQ.

    The result's disjuncts are the paper's "CQ sub-queries of Q"
    (Section 2: "a CQ sub-query of Q is a CQ sub-query in the UCQ
    equivalence of Q").  When a schema is given, each disjunct is also
    normalized.
    """
    fresh = FreshNames(v.name for v in q.body.all_variables() | set(q.head))
    body = _uniquify_quantifiers(q.body, fresh)
    disjuncts: list[CQ] = []
    for index, clause in enumerate(_dnf(body), start=1):
        atoms = [leaf.atom for leaf in clause if isinstance(leaf, FAtom)]
        equalities = [leaf.equality for leaf in clause if isinstance(leaf, FEq)]
        cq = CQ(f"{q.name}_{index}", q.head, atoms, equalities)
        if schema is not None:
            cq = normalize_cq(cq, schema)
        disjuncts.append(cq)
    return UCQ(q.name, disjuncts)


def as_ucq(query, schema: Schema | None = None) -> UCQ:
    """Coerce a CQ, UCQ or PositiveQuery to a UCQ (normalizing if a
    schema is supplied)."""
    if isinstance(query, CQ):
        q = normalize_cq(query, schema) if schema is not None else query
        return UCQ(query.name, [q])
    if isinstance(query, UCQ):
        return normalize_ucq(query, schema) if schema is not None else query
    if isinstance(query, PositiveQuery):
        return positive_to_ucq(query, schema)
    raise QueryError(f"cannot convert {type(query).__name__} to UCQ")
