"""Query languages: terms, ASTs, parsing, normalization and analysis."""

from .ast import (CQ, UCQ, Atom, Equality, FAnd, FAtom, FEq, FExists,
                  FForAll, FNot, FOQuery, FOr, Formula, PositiveQuery,
                  conjunction, cq_to_formula, disjunction)
from .normalize import (as_ucq, extract_inline_constants, normalize_cq,
                        normalize_ucq, positive_to_ucq, query_fingerprint,
                        rename_apart, validate_arities)
from .parser import parse_cq, parse_query, parse_ucq
from .tableau import (Row, Tableau, classically_contained,
                      classically_equivalent, core_tableau,
                      find_homomorphism, resolved_tableau, tableau_to_cq)
from .terms import Const, Param, Term, Var, is_const, is_param, is_var
from .varclasses import VariableAnalysis, analyze_variables

__all__ = [
    "CQ", "UCQ", "Atom", "Equality", "Const", "Param", "Term", "Var",
    "FAnd", "FAtom", "FEq", "FExists", "FForAll", "FNot", "FOr",
    "FOQuery", "Formula", "PositiveQuery",
    "conjunction", "disjunction", "cq_to_formula",
    "parse_cq", "parse_query", "parse_ucq",
    "normalize_cq", "normalize_ucq", "positive_to_ucq", "as_ucq",
    "extract_inline_constants", "rename_apart", "validate_arities",
    "query_fingerprint",
    "VariableAnalysis", "analyze_variables",
    "Row", "Tableau", "resolved_tableau", "tableau_to_cq", "core_tableau",
    "find_homomorphism", "classically_contained", "classically_equivalent",
    "is_var", "is_const", "is_param",
]
