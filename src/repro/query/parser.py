"""A small textual query language.

Two rule forms are supported:

* Datalog-style CQ/UCQ rules::

      Q(x) :- Accident(aid, d, t), d = 'Queens Park', t = '1/5/2005'
      Q(x) :- R(x, y) ; Q(x) :- S(x, 1)        # two rules => UCQ

* Formula-style ∃FO+/FO rules::

      Q(x) := EXISTS y. (R(x, y) AND (S(y) OR T(y)))
      Q(x) := FORALL y. (NOT R(x, y) OR S(y))

Lexical rules: identifiers are variables; an identifier followed by
``(`` is a relation (or head) name; numbers and single-quoted strings
are constants; ``$name`` is a parameter placeholder (a constant whose
value is bound per request — see ``repro.service.templates``).  Inline
constants in relation atoms are legal and are normalized away later
(``repro.query.normalize``).

The parser is deliberately simple — a hand-rolled tokenizer plus
recursive descent — and reports offsets in :class:`ParseError`.
"""

from __future__ import annotations

import re

from ..errors import ParseError
from ..obs.trace import span
from .ast import (CQ, UCQ, Atom, Equality, FAnd, FAtom, FEq, FExists, FForAll,
                  FNot, FOQuery, FOr, Formula, PositiveQuery)
from .terms import Const, Param, Term, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<WS>\s+)
  | (?P<ARROW>:-|:=)
  | (?P<STRING>'(?:[^'\\]|\\.)*')
  | (?P<NUMBER>-?\d+(?:\.\d+)?)
  | (?P<PARAM>\$[A-Za-z_][A-Za-z_0-9]*)
  | (?P<IDENT>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<LPAREN>\()
  | (?P<RPAREN>\))
  | (?P<COMMA>,)
  | (?P<EQ>=)
  | (?P<DOT>\.)
  | (?P<SEMI>;)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"AND", "OR", "NOT", "EXISTS", "FORALL", "TRUE"}


class _Token:
    __slots__ = ("kind", "text", "pos")

    def __init__(self, kind: str, text: str, pos: int):
        self.kind = kind
        self.text = text
        self.pos = pos

    def __repr__(self):
        return f"Token({self.kind}, {self.text!r})"


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError("unexpected character", text, pos)
        kind = match.lastgroup
        value = match.group()
        if kind != "WS":
            if kind == "IDENT" and value.upper() in _KEYWORDS:
                kind = value.upper()
            tokens.append(_Token(kind, value, pos))
        pos = match.end()
    tokens.append(_Token("EOF", "", len(text)))
    return tokens


class _Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = _tokenize(text)
        self.index = 0

    # -- token plumbing ------------------------------------------------------

    def peek(self) -> _Token:
        return self.tokens[self.index]

    def next(self) -> _Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def expect(self, kind: str) -> _Token:
        token = self.peek()
        if token.kind != kind:
            raise ParseError(
                f"expected {kind}, found {token.kind} {token.text!r}",
                self.text, token.pos,
            )
        return self.next()

    def at(self, kind: str) -> bool:
        return self.peek().kind == kind

    # -- grammar -------------------------------------------------------------

    def parse_program(self):
        """Parse one or more rules; returns CQ, UCQ, PositiveQuery or FOQuery."""
        rules = [self.parse_rule()]
        while self.at("SEMI"):
            self.next()
            if self.at("EOF"):
                break
            rules.append(self.parse_rule())
        self.expect("EOF")
        if len(rules) == 1:
            return rules[0]
        if not all(isinstance(rule, CQ) for rule in rules):
            raise ParseError(
                "only CQ rules can be combined into a union", self.text, 0
            )
        names = {rule.name for rule in rules}
        if len(names) != 1:
            raise ParseError(
                f"union rules must share a head name, got {sorted(names)}",
                self.text, 0,
            )
        name = rules[0].name
        return UCQ(name, [
            CQ(f"{name}_{i}", rule.head, rule.atoms, rule.equalities)
            for i, rule in enumerate(rules, start=1)
        ])

    def parse_rule(self):
        name_token = self.expect("IDENT")
        head = self.parse_head_vars()
        arrow = self.peek()
        if arrow.kind != "ARROW":
            raise ParseError("expected ':-' or ':='", self.text, arrow.pos)
        self.next()
        if arrow.text == ":-":
            atoms, equalities = self.parse_conjunct_list()
            return CQ(name_token.text, head, atoms, equalities)
        body = self.parse_formula()
        if body.is_positive():
            return PositiveQuery(name_token.text, head, body)
        return FOQuery(name_token.text, head, body)

    def parse_head_vars(self) -> list[Var]:
        self.expect("LPAREN")
        head: list[Var] = []
        if not self.at("RPAREN"):
            while True:
                token = self.expect("IDENT")
                head.append(Var(token.text))
                if self.at("COMMA"):
                    self.next()
                    continue
                break
        self.expect("RPAREN")
        return head

    def parse_conjunct_list(self):
        atoms: list[Atom] = []
        equalities: list[Equality] = []
        if self.at("TRUE"):
            self.next()
            return atoms, equalities
        while True:
            atom_or_eq = self.parse_literal()
            if isinstance(atom_or_eq, Atom):
                atoms.append(atom_or_eq)
            else:
                equalities.append(atom_or_eq)
            if self.at("COMMA"):
                self.next()
                continue
            break
        return atoms, equalities

    def parse_literal(self):
        """An atom ``R(t, ...)`` or an equality ``t = t``."""
        token = self.peek()
        if token.kind == "IDENT" and self.tokens[self.index + 1].kind == "LPAREN":
            return self.parse_atom()
        left = self.parse_term()
        self.expect("EQ")
        right = self.parse_term()
        return Equality(left, right)

    def parse_atom(self) -> Atom:
        name = self.expect("IDENT").text
        self.expect("LPAREN")
        terms: list[Term] = []
        if not self.at("RPAREN"):
            while True:
                terms.append(self.parse_term())
                if self.at("COMMA"):
                    self.next()
                    continue
                break
        self.expect("RPAREN")
        return Atom(name, terms)

    def parse_term(self) -> Term:
        token = self.peek()
        if token.kind == "IDENT":
            self.next()
            return Var(token.text)
        if token.kind == "NUMBER":
            self.next()
            text = token.text
            return Const(float(text) if "." in text else int(text))
        if token.kind == "STRING":
            self.next()
            raw = token.text[1:-1]
            return Const(raw.replace("\\'", "'").replace("\\\\", "\\"))
        if token.kind == "PARAM":
            self.next()
            return Const(Param(token.text[1:]))
        raise ParseError("expected a term", self.text, token.pos)

    # -- formula grammar (for := rules) ---------------------------------------
    # formula   := or_expr
    # or_expr   := and_expr (OR and_expr)*
    # and_expr  := unary (AND unary)*
    # unary     := NOT unary | EXISTS vars. unary | FORALL vars. unary | primary
    # primary   := '(' formula ')' | atom | equality

    def parse_formula(self) -> Formula:
        return self.parse_or()

    def parse_or(self) -> Formula:
        children = [self.parse_and()]
        while self.at("OR"):
            self.next()
            children.append(self.parse_and())
        return children[0] if len(children) == 1 else FOr(children)

    def parse_and(self) -> Formula:
        children = [self.parse_unary()]
        while self.at("AND"):
            self.next()
            children.append(self.parse_unary())
        return children[0] if len(children) == 1 else FAnd(children)

    def parse_unary(self) -> Formula:
        token = self.peek()
        if token.kind == "NOT":
            self.next()
            return FNot(self.parse_unary())
        if token.kind in ("EXISTS", "FORALL"):
            self.next()
            variables = [Var(self.expect("IDENT").text)]
            while self.at("COMMA"):
                self.next()
                variables.append(Var(self.expect("IDENT").text))
            self.expect("DOT")
            child = self.parse_unary()
            if token.kind == "EXISTS":
                return FExists(variables, child)
            return FForAll(variables, child)
        return self.parse_primary()

    def parse_primary(self) -> Formula:
        if self.at("LPAREN"):
            self.next()
            inner = self.parse_formula()
            self.expect("RPAREN")
            return inner
        literal = self.parse_literal()
        if isinstance(literal, Atom):
            return FAtom(literal)
        return FEq(literal)


def parse_query(text: str):
    """Parse a query of any supported class.

    Returns a :class:`CQ`, :class:`UCQ`, :class:`PositiveQuery` or
    :class:`FOQuery` depending on the rule form and body shape.

    >>> q = parse_query("Q(x) :- R(x, y), y = 1")
    >>> type(q).__name__
    'CQ'
    """
    with span("compile"):
        return _Parser(text).parse_program()


def parse_cq(text: str) -> CQ:
    """Parse text that must denote a single CQ."""
    query = parse_query(text)
    if not isinstance(query, CQ):
        raise ParseError(f"expected a CQ, parsed a {type(query).__name__}", text, 0)
    return query


def parse_ucq(text: str) -> UCQ:
    """Parse text that must denote a UCQ (a single CQ is wrapped)."""
    query = parse_query(text)
    if isinstance(query, CQ):
        return UCQ(query.name, [query])
    if not isinstance(query, UCQ):
        raise ParseError(f"expected a UCQ, parsed a {type(query).__name__}", text, 0)
    return query
