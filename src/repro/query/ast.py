"""Query abstract syntax: CQ, UCQ, positive-existential FO and full FO.

The paper studies four query classes (Section 2):

* :class:`CQ` — conjunctive queries: relation atoms plus equality atoms,
  closed under conjunction and existential quantification.  Stored in
  flat normal form: a head variable tuple, a tuple of relation atoms and
  a tuple of equality atoms (all non-head variables implicitly
  existentially quantified).
* :class:`UCQ` — finite unions of CQs with identical head arity.
* :class:`PositiveQuery` (∃FO+) — a head plus a positive formula tree
  built from atoms, equalities, ``AND``, ``OR`` and ``EXISTS``; it
  normalizes to a UCQ (``repro.query.normalize.positive_to_ucq``).
* :class:`FOQuery` — adds ``NOT`` and ``FORALL``; the paper's
  undecidability frontier.

Construction performs cheap structural checks only.  Schema-aware
validation (arity checks), safety analysis and the paper's normal-form
assumptions (constants only in equality atoms) live in
``repro.query.normalize``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import QueryError
from .terms import Const, Param, Term, Var, is_const, is_var


@dataclass(frozen=True)
class Atom:
    """A relation atom ``R(t1, ..., tn)``.

    >>> str(Atom("R", (Var("x"), Const(1))))
    'R(x, 1)'
    """

    relation: str
    terms: tuple[Term, ...]

    def __init__(self, relation: str, terms: Sequence[Term]):
        object.__setattr__(self, "relation", relation)
        object.__setattr__(self, "terms", tuple(terms))
        for term in self.terms:
            if not isinstance(term, (Var, Const)):
                raise QueryError(f"atom term must be Var or Const, got {term!r}")

    @property
    def arity(self) -> int:
        return len(self.terms)

    def variables(self) -> list[Var]:
        """Variables in positional order, with repeats."""
        return [t for t in self.terms if is_var(t)]

    def constants(self) -> list[Const]:
        return [t for t in self.terms if is_const(t)]

    def substitute(self, mapping: Mapping[Term, Term]) -> "Atom":
        return Atom(self.relation, tuple(mapping.get(t, t) for t in self.terms))

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass(frozen=True)
class Equality:
    """An equality atom ``t1 = t2`` (``x = y`` or ``x = c``).

    Normal form orders a variable first when one side is constant.
    """

    left: Term
    right: Term

    def __init__(self, left: Term, right: Term):
        if is_const(left) and is_var(right):
            left, right = right, left
        object.__setattr__(self, "left", left)
        object.__setattr__(self, "right", right)

    @property
    def is_var_var(self) -> bool:
        return is_var(self.left) and is_var(self.right)

    @property
    def is_var_const(self) -> bool:
        return is_var(self.left) and is_const(self.right)

    @property
    def is_const_const(self) -> bool:
        return is_const(self.left) and is_const(self.right)

    def variables(self) -> list[Var]:
        return [t for t in (self.left, self.right) if is_var(t)]

    def substitute(self, mapping: Mapping[Term, Term]) -> "Equality":
        return Equality(mapping.get(self.left, self.left),
                        mapping.get(self.right, self.right))

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


class CQ:
    """A conjunctive query in flat normal form.

    ``head`` lists the free variables (possibly with repeats, possibly
    empty for a Boolean query); every non-head variable is existentially
    quantified.  ``atoms`` are the relation atoms, ``equalities`` the
    equality atoms.

    >>> q = CQ("Q", (Var("x"),), (Atom("R", (Var("x"), Var("y"))),),
    ...        (Equality(Var("y"), Const(1)),))
    >>> print(q)
    Q(x) :- R(x, y), y = 1
    """

    def __init__(self, name: str, head: Sequence[Var],
                 atoms: Sequence[Atom] = (),
                 equalities: Sequence[Equality] = ()):
        self.name = name or "Q"
        self.head: tuple[Var, ...] = tuple(head)
        self.atoms: tuple[Atom, ...] = tuple(atoms)
        self.equalities: tuple[Equality, ...] = tuple(equalities)
        for v in self.head:
            if not is_var(v):
                raise QueryError(f"head terms must be variables, got {v!r}")
        for eq in self.equalities:
            if eq.is_const_const:
                raise QueryError(
                    f"constant-to-constant equality {eq} is not allowed; "
                    "drop it (if trivially true) or mark the query "
                    "unsatisfiable explicitly"
                )

    # -- structural accessors ----------------------------------------------

    @property
    def arity(self) -> int:
        return len(self.head)

    def variables(self) -> set[Var]:
        """``var(Q)``: all variables, free or bound."""
        result: set[Var] = set(self.head)
        for atom in self.atoms:
            result.update(atom.variables())
        for eq in self.equalities:
            result.update(eq.variables())
        return result

    def free_variables(self) -> set[Var]:
        return set(self.head)

    def bound_variables(self) -> set[Var]:
        return self.variables() - set(self.head)

    def atom_variables(self) -> set[Var]:
        """Variables occurring in relation atoms."""
        result: set[Var] = set()
        for atom in self.atoms:
            result.update(atom.variables())
        return result

    def constants(self) -> set[Const]:
        result: set[Const] = set()
        for atom in self.atoms:
            result.update(atom.constants())
        for eq in self.equalities:
            if is_const(eq.right):
                result.add(eq.right)
            if is_const(eq.left):
                result.add(eq.left)
        return result

    def parameters(self) -> set[str]:
        """Names of unbound ``$param`` placeholders in the body.

        >>> q = CQ("Q", (Var("x"),), (Atom("R", (Var("x"), Var("y"))),),
        ...        (Equality(Var("y"), Const(Param("p"))),))
        >>> q.parameters()
        {'p'}
        """
        return {c.value.name for c in self.constants()
                if isinstance(c.value, Param)}

    def occurrence_count(self, var: Var) -> int:
        """Total occurrences of ``var`` in relation and equality atoms.

        Used by condition (b) of covered queries ("only occurs once in
        Q", Section 3.2).  Head occurrences are not counted: a free
        variable is already handled by condition (a).
        """
        count = 0
        for atom in self.atoms:
            count += sum(1 for t in atom.terms if t == var)
        for eq in self.equalities:
            count += sum(1 for t in (eq.left, eq.right) if t == var)
        return count

    def relation_names(self) -> set[str]:
        return {atom.relation for atom in self.atoms}

    def size(self) -> int:
        """``|Q|``: number of term occurrences plus head arity."""
        return (len(self.head)
                + sum(a.arity for a in self.atoms)
                + 2 * len(self.equalities))

    # -- builders ------------------------------------------------------------

    def with_atoms(self, atoms: Sequence[Atom],
                   equalities: Sequence[Equality] | None = None,
                   name: str | None = None) -> "CQ":
        """A copy with the body replaced (head unchanged)."""
        return CQ(name or self.name, self.head, atoms,
                  self.equalities if equalities is None else equalities)

    def substitute(self, mapping: Mapping[Term, Term],
                   name: str | None = None) -> "CQ":
        """Apply a term substitution to body **and head**.

        Head variables mapped to constants are not representable in a
        head tuple, so the caller must ensure head variables map to
        variables; otherwise a :class:`QueryError` is raised.
        """
        new_head = []
        for v in self.head:
            image = mapping.get(v, v)
            if not is_var(image):
                raise QueryError(
                    f"substitution maps head variable {v} to constant {image}"
                )
            new_head.append(image)
        return CQ(name or self.name, new_head,
                  tuple(a.substitute(mapping) for a in self.atoms),
                  tuple(e.substitute(mapping) for e in self.equalities
                        if not (mapping.get(e.left, e.left)
                                == mapping.get(e.right, e.right))))

    def specialize(self, valuation: Mapping[Var, Const],
                   name: str | None = None) -> "CQ":
        """The specialized query ``Q(x̄ = c̄)`` of Section 5.

        Adds equality atoms ``x = c`` for each parameter; the structure
        of the query (and hence its coverage analysis) is otherwise
        unchanged.
        """
        extra = tuple(Equality(var, const) for var, const in valuation.items())
        return CQ(name or f"{self.name}_spec", self.head, self.atoms,
                  self.equalities + extra)

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(str(v) for v in self.head)})"
        parts = [str(a) for a in self.atoms] + [str(e) for e in self.equalities]
        if not parts:
            return f"{head} :- true"
        return f"{head} :- {', '.join(parts)}"

    def __repr__(self) -> str:
        return f"<CQ {self}>"


class UCQ:
    """A union of conjunctive queries ``Q1 ∪ ... ∪ Qk``.

    All disjuncts must share the same head arity.

    >>> q1 = CQ("Q", (Var("x"),), (Atom("R", (Var("x"),)),))
    >>> q2 = CQ("Q", (Var("x"),), (Atom("S", (Var("x"),)),))
    >>> u = UCQ("Q", (q1, q2))
    >>> len(u.disjuncts)
    2
    """

    def __init__(self, name: str, disjuncts: Sequence[CQ]):
        self.name = name or "Q"
        self.disjuncts: tuple[CQ, ...] = tuple(disjuncts)
        if not self.disjuncts:
            raise QueryError("a UCQ needs at least one disjunct")
        arities = {q.arity for q in self.disjuncts}
        if len(arities) != 1:
            raise QueryError(f"UCQ disjuncts disagree on arity: {arities}")

    @property
    def arity(self) -> int:
        return self.disjuncts[0].arity

    def relation_names(self) -> set[str]:
        names: set[str] = set()
        for q in self.disjuncts:
            names.update(q.relation_names())
        return names

    def size(self) -> int:
        return sum(q.size() for q in self.disjuncts)

    def parameters(self) -> set[str]:
        """Union of the disjuncts' unbound ``$param`` names."""
        names: set[str] = set()
        for q in self.disjuncts:
            names.update(q.parameters())
        return names

    def __iter__(self) -> Iterator[CQ]:
        return iter(self.disjuncts)

    def __len__(self) -> int:
        return len(self.disjuncts)

    def __str__(self) -> str:
        return "  UNION  ".join(str(q) for q in self.disjuncts)

    def __repr__(self) -> str:
        return f"<UCQ {self}>"


# ---------------------------------------------------------------------------
# Formula trees for ∃FO+ and FO.
# ---------------------------------------------------------------------------

class Formula:
    """Base class for formula-tree nodes."""

    def free_variables(self) -> set[Var]:
        raise NotImplementedError

    def all_variables(self) -> set[Var]:
        raise NotImplementedError

    def is_positive(self) -> bool:
        """True when the subtree uses only atoms, =, AND, OR, EXISTS."""
        raise NotImplementedError


@dataclass(frozen=True)
class FAtom(Formula):
    atom: Atom

    def free_variables(self) -> set[Var]:
        return set(self.atom.variables())

    def all_variables(self) -> set[Var]:
        return set(self.atom.variables())

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return str(self.atom)


@dataclass(frozen=True)
class FEq(Formula):
    equality: Equality

    def free_variables(self) -> set[Var]:
        return set(self.equality.variables())

    def all_variables(self) -> set[Var]:
        return set(self.equality.variables())

    def is_positive(self) -> bool:
        return True

    def __str__(self) -> str:
        return str(self.equality)


class FAnd(Formula):
    def __init__(self, children: Sequence[Formula]):
        if not children:
            raise QueryError("AND needs at least one child")
        self.children = tuple(children)

    def free_variables(self) -> set[Var]:
        return set().union(*(c.free_variables() for c in self.children))

    def all_variables(self) -> set[Var]:
        return set().union(*(c.all_variables() for c in self.children))

    def is_positive(self) -> bool:
        return all(c.is_positive() for c in self.children)

    def __str__(self) -> str:
        return "(" + " AND ".join(str(c) for c in self.children) + ")"


class FOr(Formula):
    def __init__(self, children: Sequence[Formula]):
        if not children:
            raise QueryError("OR needs at least one child")
        self.children = tuple(children)

    def free_variables(self) -> set[Var]:
        return set().union(*(c.free_variables() for c in self.children))

    def all_variables(self) -> set[Var]:
        return set().union(*(c.all_variables() for c in self.children))

    def is_positive(self) -> bool:
        return all(c.is_positive() for c in self.children)

    def __str__(self) -> str:
        return "(" + " OR ".join(str(c) for c in self.children) + ")"


class FExists(Formula):
    def __init__(self, variables: Sequence[Var], child: Formula):
        if not variables:
            raise QueryError("EXISTS needs at least one variable")
        self.variables = tuple(variables)
        self.child = child

    def free_variables(self) -> set[Var]:
        return self.child.free_variables() - set(self.variables)

    def all_variables(self) -> set[Var]:
        return self.child.all_variables() | set(self.variables)

    def is_positive(self) -> bool:
        return self.child.is_positive()

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"EXISTS {names}. {self.child}"


class FNot(Formula):
    def __init__(self, child: Formula):
        self.child = child

    def free_variables(self) -> set[Var]:
        return self.child.free_variables()

    def all_variables(self) -> set[Var]:
        return self.child.all_variables()

    def is_positive(self) -> bool:
        return False

    def __str__(self) -> str:
        return f"NOT {self.child}"


class FForAll(Formula):
    def __init__(self, variables: Sequence[Var], child: Formula):
        if not variables:
            raise QueryError("FORALL needs at least one variable")
        self.variables = tuple(variables)
        self.child = child

    def free_variables(self) -> set[Var]:
        return self.child.free_variables() - set(self.variables)

    def all_variables(self) -> set[Var]:
        return self.child.all_variables() | set(self.variables)

    def is_positive(self) -> bool:
        return False

    def __str__(self) -> str:
        names = ", ".join(v.name for v in self.variables)
        return f"FORALL {names}. {self.child}"


def formula_parameters(formula: Formula) -> set[str]:
    """Names of unbound ``$param`` placeholders in a formula tree."""
    if isinstance(formula, FAtom):
        return {c.value.name for c in formula.atom.constants()
                if isinstance(c.value, Param)}
    if isinstance(formula, FEq):
        return {t.value.name
                for t in (formula.equality.left, formula.equality.right)
                if is_const(t) and isinstance(t.value, Param)}
    if isinstance(formula, (FAnd, FOr)):
        names: set[str] = set()
        for child in formula.children:
            names.update(formula_parameters(child))
        return names
    if isinstance(formula, (FExists, FForAll, FNot)):
        return formula_parameters(formula.child)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


class PositiveQuery:
    """An ∃FO+ query: a head over a positive formula.

    >>> body = FOr([FAtom(Atom("R", (Var("x"),))), FAtom(Atom("S", (Var("x"),)))])
    >>> q = PositiveQuery("Q", (Var("x"),), body)
    >>> q.body.is_positive()
    True
    """

    def __init__(self, name: str, head: Sequence[Var], body: Formula):
        self.name = name or "Q"
        self.head = tuple(head)
        self.body = body
        if not body.is_positive():
            raise QueryError(
                "PositiveQuery body must be positive (no NOT/FORALL); "
                "use FOQuery for full first-order logic"
            )

    @property
    def arity(self) -> int:
        return len(self.head)

    def parameters(self) -> set[str]:
        """Names of unbound ``$param`` placeholders in the body."""
        return formula_parameters(self.body)

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(str(v) for v in self.head)})"
        return f"{head} := {self.body}"


class FOQuery:
    """A full first-order query: a head over an arbitrary formula.

    The paper proves BEP/UEP/LEP/QSP undecidable for this class
    (Table 1); the library evaluates FO queries naively and offers
    syntactic specialization only.
    """

    def __init__(self, name: str, head: Sequence[Var], body: Formula):
        self.name = name or "Q"
        self.head = tuple(head)
        self.body = body

    @property
    def arity(self) -> int:
        return len(self.head)

    def is_positive(self) -> bool:
        return self.body.is_positive()

    def parameters(self) -> set[str]:
        """Names of unbound ``$param`` placeholders in the body."""
        return formula_parameters(self.body)

    def __str__(self) -> str:
        head = f"{self.name}({', '.join(str(v) for v in self.head)})"
        return f"{head} := {self.body}"


def conjunction(children: Iterable[Formula]) -> Formula:
    """Build a (flattened) conjunction, collapsing singletons."""
    flat: list[Formula] = []
    for child in children:
        if isinstance(child, FAnd):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return FAnd(flat)


def disjunction(children: Iterable[Formula]) -> Formula:
    """Build a (flattened) disjunction, collapsing singletons."""
    flat: list[Formula] = []
    for child in children:
        if isinstance(child, FOr):
            flat.extend(child.children)
        else:
            flat.append(child)
    if len(flat) == 1:
        return flat[0]
    return FOr(flat)


def cq_to_formula(q: CQ) -> Formula:
    """The formula tree of a flat CQ (bound variables quantified)."""
    parts: list[Formula] = [FAtom(a) for a in q.atoms]
    parts += [FEq(e) for e in q.equalities]
    if not parts:
        raise QueryError(f"cannot convert empty-bodied CQ {q} to a formula")
    body = conjunction(parts)
    bound = sorted(q.bound_variables(), key=lambda v: v.name)
    if bound:
        body = FExists(bound, body)
    return body
