"""Tableau representation of CQs and homomorphism machinery.

A CQ ``Q`` is classically represented by a tableau ``(T_Q, u)``: the
relation atoms as rows over variables/constants, plus the head summary
``u`` (paper, proof of Lemma 3.2).  This module provides:

* :func:`resolved_tableau` — the tableau with every term replaced by its
  eq-class representative, or by the pinning constant when the class is
  equated with a constant.  This "resolved" form makes equality atoms
  implicit, which simplifies the chase, homomorphism search and
  A-instance enumeration.
* :func:`find_homomorphism` — backtracking search for a homomorphism
  between tableaux fixing constants (and any prescribed variables); the
  engine behind classical containment and core minimization.
* :func:`tableau_to_cq` — rebuild a normalized CQ from a resolved
  tableau (constants are pulled back out of atoms into equality atoms to
  respect the paper's normal form).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from .._util import FreshNames
from ..errors import QueryError
from .ast import CQ, Atom, Equality
from .terms import Const, Term, Var, is_const, is_var
from .varclasses import VariableAnalysis, analyze_variables


@dataclass(frozen=True)
class Row:
    """One tableau row: a relation name and a term tuple."""

    relation: str
    terms: tuple[Term, ...]

    def __str__(self) -> str:
        return f"{self.relation}({', '.join(str(t) for t in self.terms)})"


@dataclass
class Tableau:
    """A resolved tableau ``(T_Q, u)``.

    ``rows`` contain representative variables and constants only; the
    equality atoms of the source query are fully absorbed (same-class
    variables collapsed, pinned classes replaced by their constant).
    ``summary`` is the resolved head.  ``rep_of`` maps each original
    variable to its resolved term, so answers can be translated back.
    """

    rows: tuple[Row, ...]
    summary: tuple[Term, ...]
    rep_of: dict[Var, Term]
    name: str = "Q"

    def variables(self) -> set[Var]:
        result: set[Var] = set()
        for row in self.rows:
            result.update(t for t in row.terms if is_var(t))
        result.update(t for t in self.summary if is_var(t))
        return result

    def constants(self) -> set[Const]:
        result: set[Const] = set()
        for row in self.rows:
            result.update(t for t in row.terms if is_const(t))
        result.update(t for t in self.summary if is_const(t))
        return result

    def __str__(self) -> str:
        rows = ", ".join(str(r) for r in self.rows)
        summary = ", ".join(str(t) for t in self.summary)
        return f"({{{rows}}}, ({summary}))"


def resolved_tableau(q: CQ, analysis: VariableAnalysis | None = None) -> Tableau:
    """Build the resolved tableau of a normalized CQ.

    Raises :class:`QueryError` when the query is classically
    unsatisfiable (a class pinned to two constants): such a query has no
    tableau instance; callers check ``analysis.classically_satisfiable``
    first (the library treats those queries as trivially empty).
    """
    if analysis is None:
        analysis = analyze_variables(q)
    if not analysis.classically_satisfiable:
        raise QueryError(
            f"{q.name} is classically unsatisfiable; it has no tableau"
        )

    def resolve(term: Term) -> Term:
        if is_const(term):
            return term
        constant = analysis.constant_of(term)
        if constant is not None:
            return constant
        return analysis.eq.find(term)

    rows = tuple(
        Row(atom.relation, tuple(resolve(t) for t in atom.terms))
        for atom in q.atoms
    )
    summary = tuple(resolve(v) for v in q.head)
    rep_of = {v: resolve(v) for v in q.variables()}
    return Tableau(rows=rows, summary=summary, rep_of=rep_of, name=q.name)


def tableau_to_cq(tableau: Tableau, name: str | None = None) -> CQ:
    """Rebuild a normalized CQ from a resolved tableau.

    Constants inside rows become fresh pinned variables; constants in
    the summary likewise (a head position equal to a constant needs a
    variable with an equality atom).  Inverse of :func:`resolved_tableau`
    up to A-equivalence and variable naming.
    """
    taken = {v.name for v in tableau.variables()}
    fresh = FreshNames(taken)
    pin_var: dict[Const, Var] = {}
    equalities: list[Equality] = []

    def unresolve(term: Term) -> Var:
        if is_var(term):
            return term
        if term not in pin_var:
            var = Var(fresh.fresh("c"))
            pin_var[term] = var
            equalities.append(Equality(var, term))
        return pin_var[term]

    atoms = [
        Atom(row.relation, tuple(unresolve(t) for t in row.terms))
        for row in tableau.rows
    ]
    head = tuple(unresolve(t) for t in tableau.summary)
    return CQ(name or tableau.name, head, atoms, equalities)


def find_homomorphism(
    source_rows: Sequence[Row],
    target_rows: Sequence[Row],
    fixed: Mapping[Term, Term] | None = None,
) -> dict[Term, Term] | None:
    """Find a homomorphism mapping every source row onto some target row.

    Constants map to themselves; variables map to any term, subject to
    ``fixed`` (pre-assigned images, e.g. head variables for retractions).
    Returns the mapping or ``None``.  Backtracking with a most-
    constrained-first row order.
    """
    assignment: dict[Term, Term] = dict(fixed or {})
    for term, image in list(assignment.items()):
        if is_const(term) and term != image:
            return None

    targets_by_relation: dict[str, list[Row]] = {}
    for row in target_rows:
        targets_by_relation.setdefault(row.relation, []).append(row)

    # Order source rows: fewest candidate targets first, then most
    # already-bound variables first (cheap fail-fast heuristic).
    ordered = sorted(
        source_rows,
        key=lambda r: len(targets_by_relation.get(r.relation, ())),
    )

    def extend(index: int) -> bool:
        if index == len(ordered):
            return True
        row = ordered[index]
        for candidate in targets_by_relation.get(row.relation, ()):
            trail: list[Term] = []
            ok = True
            for term, image in zip(row.terms, candidate.terms):
                if is_const(term):
                    if term != image:
                        ok = False
                        break
                    continue
                bound = assignment.get(term)
                if bound is None:
                    assignment[term] = image
                    trail.append(term)
                elif bound != image:
                    ok = False
                    break
            if ok and extend(index + 1):
                return True
            for term in trail:
                del assignment[term]
        return False

    if extend(0):
        return dict(assignment)
    return None


def core_tableau(tableau: Tableau) -> Tableau:
    """The core of a tableau: fold away redundant rows.

    Repeatedly looks for a retraction — a homomorphism from the full row
    set into a proper subset that fixes the summary terms — and keeps
    the image.  The result is the classical core, unique up to
    isomorphism; since classical equivalence implies A-equivalence for
    every access schema A, core minimization is always sound for the
    bounded-evaluability pipeline (DESIGN.md, S10).
    """
    rows = list(tableau.rows)
    fixed = {t: t for t in tableau.summary if is_var(t)}
    changed = True
    while changed:
        changed = False
        for i in range(len(rows)):
            without = rows[:i] + rows[i + 1:]
            hom = find_homomorphism(rows, without, fixed)
            if hom is not None:
                # Apply the retraction image: fold rows through hom.
                folded = []
                seen = set()
                for row in rows:
                    image = Row(row.relation,
                                tuple(hom.get(t, t) for t in row.terms))
                    if image not in seen:
                        seen.add(image)
                        folded.append(image)
                rows = folded
                changed = True
                break
    rep_of = dict(tableau.rep_of)
    return Tableau(rows=tuple(rows), summary=tableau.summary,
                   rep_of=rep_of, name=tableau.name)


def classically_contained(q1: CQ, q2: CQ) -> bool:
    """Classical containment ``Q1 ⊆ Q2`` by the Homomorphism Theorem [13].

    There must be a homomorphism from ``T_Q2`` into ``T_Q1`` mapping the
    summary of ``Q2`` onto the summary of ``Q1``.  Classically
    unsatisfiable queries are contained in everything.
    """
    analysis1 = analyze_variables(q1)
    if not analysis1.classically_satisfiable:
        return True
    analysis2 = analyze_variables(q2)
    if not analysis2.classically_satisfiable:
        return False  # q1 is satisfiable here, q2 is empty.
    t1 = resolved_tableau(q1, analysis1)
    t2 = resolved_tableau(q2, analysis2)
    if len(t1.summary) != len(t2.summary):
        return False
    fixed: dict[Term, Term] = {}
    for term2, term1 in zip(t2.summary, t1.summary):
        if is_const(term2):
            if term2 != term1:
                return False
        elif term2 in fixed:
            if fixed[term2] != term1:
                return False
        else:
            fixed[term2] = term1
    return find_homomorphism(t2.rows, t1.rows, fixed) is not None


def classically_equivalent(q1: CQ, q2: CQ) -> bool:
    """Classical equivalence: mutual containment."""
    return classically_contained(q1, q2) and classically_contained(q2, q1)
