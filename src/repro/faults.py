"""Deterministic fault injection for chaos tests and benchmarks.

A :class:`FaultPlan` is a *seeded, counted* schedule: each
:class:`Fault` names a hook **site** (a string compiled into the
production code at the few places where failures genuinely originate),
the **hit ordinal** at which it fires (``at=N`` → the N-th time that
site is reached, 1-based), a **kind**, and an optional argument.
Because firing is keyed on deterministic hit counts — never wall clock
or randomness at trigger time — the same plan against the same workload
kills the same worker at the same RPC every run, which is what lets the
chaos suite assert *bit-identical* answers under injected failures.

Sites compiled into the tree (grep for ``fault_hook(``):

``rpc_send``
    procshard coordinator, just before a request is written to a peer
    pipe.  Kinds: ``kill_peer`` (SIGKILL the peer process so the
    exchange fails and respawn/recovery paths run), ``delay`` (sleep
    ``arg`` seconds, modelling a slow link).
``rpc_recv``
    procshard coordinator, just before blocking on a peer reply.
    Kinds: ``drop_reply`` (consume and discard the real reply, then
    report a timeout — deterministic, no waiting), ``delay``.
``wal_ship``
    procshard replica catch-up, on the WAL chunk about to ship.
    Kind: ``torn_tail`` (truncate the chunk ``arg`` bytes short,
    exercising the replica's partial-frame re-ship protocol).
``wal_append``
    DiskBackend, mid-append.  Kind: ``torn_tail`` (write only a prefix
    of the frame and simulate a crash, so recovery must truncate).

The module-global plan is installed/cleared explicitly (tests use
``try/finally`` or the fixture in ``tests/test_faults.py``); production
code pays one global read + ``None`` check per hook when no plan is
active.  This module imports nothing from the storage layer — the
dependency points the other way, like ``repro.obs``.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Iterable, Optional

__all__ = [
    "Fault",
    "FaultPlan",
    "install_fault_plan",
    "active_fault_plan",
    "clear_fault_plan",
    "fault_hook",
]


@dataclass(frozen=True)
class Fault:
    """One scheduled failure: at the ``at``-th hit of ``site`` (1-based),
    inject ``kind``.  ``arg`` is kind-specific: seconds for ``delay``,
    bytes to truncate for ``torn_tail``, unused otherwise."""

    site: str
    at: int
    kind: str
    arg: float = 0.0

    def __post_init__(self) -> None:
        if self.at < 1:
            raise ValueError(f"fault ordinal must be >= 1, got {self.at}")


@dataclass
class FaultPlan:
    """A seeded schedule of faults plus thread-safe per-site hit counts.

    ``seed`` does not drive *when* faults fire (ordinals do); it seeds
    any randomness the injected behaviours themselves need and labels
    the run, so a chaos failure reproduces from the seed alone.
    """

    faults: tuple[Fault, ...]
    seed: int = 0
    _lock: threading.Lock = field(default_factory=threading.Lock,
                                  repr=False, compare=False)
    _hits: dict = field(default_factory=dict, repr=False, compare=False)
    #: (site, ordinal, kind) triples that actually fired, in order —
    #: chaos tests assert the plan was exercised, not just installed.
    fired: list = field(default_factory=list, repr=False, compare=False)

    def __init__(self, faults: Iterable[Fault], seed: int = 0):
        self.faults = tuple(faults)
        self.seed = seed
        self._lock = threading.Lock()
        self._hits = {}
        self.fired = []
        self._by_site: dict[str, dict[int, Fault]] = {}
        for fault in self.faults:
            slot = self._by_site.setdefault(fault.site, {})
            if fault.at in slot:
                raise ValueError(
                    f"duplicate fault at {fault.site!r} hit #{fault.at}")
            slot[fault.at] = fault

    def hit(self, site: str) -> Optional[Fault]:
        """Record one hit of ``site``; return the fault due now, if any."""
        scheduled = self._by_site.get(site)
        with self._lock:
            count = self._hits.get(site, 0) + 1
            self._hits[site] = count
            if scheduled is None:
                return None
            fault = scheduled.get(count)
            if fault is not None:
                self.fired.append((site, count, fault.kind))
            return fault

    def hits(self, site: str) -> int:
        with self._lock:
            return self._hits.get(site, 0)


_PLAN: Optional[FaultPlan] = None


def install_fault_plan(plan: FaultPlan) -> None:
    """Install ``plan`` as the process-global active plan."""
    global _PLAN
    _PLAN = plan


def active_fault_plan() -> Optional[FaultPlan]:
    return _PLAN


def clear_fault_plan() -> None:
    global _PLAN
    _PLAN = None


def fault_hook(site: str) -> Optional[Fault]:
    """The hook production code calls: one global read when idle; with
    a plan installed, count the hit and return the fault due now (the
    call site interprets the kind — this module never imports the
    layers it breaks)."""
    plan = _PLAN
    if plan is None:
        return None
    return plan.hit(site)
