"""Command-line front end: analyze queries against an access schema.

Usage (after installing the package)::

    python -m repro.cli analyze --db DIR "Q(x) :- R(x, y), y = 1"
    python -m repro.cli run     --db DIR "Q(x) :- R(x, y), y = 1"
    python -m repro.cli discover --db DIR [--max-bound N]

``--db DIR`` points at a directory written by
``repro.storage.io.save_database`` (CSV files plus ``schema.json``).
``analyze`` reports coverage / bounded evaluability / envelopes /
specialization advice; ``run`` additionally executes the bounded plan
(or the baseline when none exists) and prints access accounting;
``discover`` mines an access schema from the data and prints it.
"""

from __future__ import annotations

import argparse
import sys

from .core import (analyze_coverage, is_boundedly_evaluable, lower_envelope,
                   specialize_minimally, upper_envelope)
from .engine import ScanStats, evaluate, execute_plan, static_bounds
from .query import CQ, parse_query
from .schema.discovery import DiscoveryOptions, discover_access_schema
from .storage.io import load_database


def _load(args):
    db = load_database(args.db)
    if db.access_schema is None or not len(db.access_schema):
        print("warning: no access constraints in schema.json",
              file=sys.stderr)
    return db


def cmd_analyze(args) -> int:
    db = _load(args)
    query = parse_query(args.query)
    access = db.access_schema
    decision = is_boundedly_evaluable(query, access)
    print(f"BEP: {decision.explain()}")
    if decision.is_yes:
        plan = decision.witness["plan"]
        cost = static_bounds(plan, db_size=db.size())
        print(f"plan: {len(plan)} ops, fetch bound {cost.fetch_bound}, "
              f"output bound {cost.output_bound}")
        if args.verbose:
            print(plan.explain())
        return 0
    if isinstance(query, CQ):
        coverage = analyze_coverage(query, access)
        print(coverage.explain())
        upper = upper_envelope(query, access)
        print(f"upper envelope: {upper.explain()}")
        lower = lower_envelope(query, access, k=args.k)
        print(f"lower envelope ({args.k}-expansion): {lower.explain()}")
        qsp = specialize_minimally(query, access)
        if qsp.is_yes:
            names = ", ".join(v.name for v in qsp.witness)
            print(f"specialization: instantiate {{{names}}} to make the "
                  "query boundedly evaluable")
        else:
            print(f"specialization: {qsp.explain()}")
    return 1


def cmd_run(args) -> int:
    db = _load(args)
    query = parse_query(args.query)
    decision = is_boundedly_evaluable(query, db.access_schema)
    if decision.is_yes:
        result = execute_plan(decision.witness["plan"], db)
        print(f"bounded plan: fetched {result.stats.tuples_fetched} of "
              f"{db.size()} tuples "
              f"({result.stats.index_lookups} index lookups)")
        answers = result.answers
    else:
        print(f"not boundedly evaluable ({decision.reason}); "
              "falling back to a full scan")
        stats = ScanStats()
        answers = evaluate(query, db, stats)
        print(f"baseline: scanned {stats.tuples_scanned} tuples")
    for row in sorted(answers, key=repr)[:args.limit]:
        print("  ", row)
    if len(answers) > args.limit:
        print(f"   ... {len(answers) - args.limit} more")
    print(f"{len(answers)} answer(s)")
    return 0


def cmd_discover(args) -> int:
    db = _load(args)
    options = DiscoveryOptions(max_bound=args.max_bound)
    access = discover_access_schema(db, options)
    for constraint in access:
        print(constraint)
    print(f"-- {len(access)} constraints (max bound {args.max_bound})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="bounded evaluability analyzer")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="decide bounded evaluability")
    analyze.add_argument("--db", required=True)
    analyze.add_argument("--k", type=int, default=2,
                         help="lower-envelope expansion budget")
    analyze.add_argument("--verbose", action="store_true")
    analyze.add_argument("query")
    analyze.set_defaults(func=cmd_analyze)

    run = sub.add_parser("run", help="execute a query (bounded if possible)")
    run.add_argument("--db", required=True)
    run.add_argument("--limit", type=int, default=20)
    run.add_argument("query")
    run.set_defaults(func=cmd_run)

    discover = sub.add_parser("discover",
                              help="mine access constraints from data")
    discover.add_argument("--db", required=True)
    discover.add_argument("--max-bound", type=int, default=1024)
    discover.set_defaults(func=cmd_discover)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
