"""Command-line front end: analyze queries against an access schema.

Usage (after ``pip install -e .`` the ``repro`` entry point is on PATH;
``python -m repro.cli`` always works)::

    repro analyze  --db DIR "Q(x) :- R(x, y), y = 1"
    repro explain  --db DIR "Q(x) :- R(x, y), y = 1"
    repro run      --db DIR [--backend sharded --shards S] "Q(x) :- ..."
    repro discover --db DIR [--max-bound N]
    repro batch    --db DIR [--workers K] [--backend sharded] requests.json
    repro bench-service --db DIR [--requests N] [--write-fraction F] "Q(x) :- ..."
    repro stats    --db DIR [--backend disk --data-dir D]
    repro serve    --db DIR [--port P] [--workers K] [--budget B]

``run``, ``batch`` and ``bench-service`` also take the observability
flags (see README, "Observability"): ``--trace PATH`` records per-stage
span trees (compile → bep_decision → optimize → bind → execute → fetch,
plus the disk engine's wal_append/wal_fsync/snapshot) as JSON lines and
prints them; ``--metrics-out PATH`` writes a Prometheus-style text
exposition of the run's counters, gauges and latency histograms.
``stats`` prints the storage-level snapshot for a database directory.

``run``, ``batch`` and ``bench-service`` accept ``--backend
{memory,sharded,disk,procshard}`` (plus ``--shards S`` /
``--shard-threads T`` for the sharded engine, ``--data-dir DIR`` /
``--fsync`` for the durable one, and ``--shard-workers N`` /
``--replicas R`` for the process-sharded one) to re-home the loaded
instance onto a different storage engine; answers are identical on
every backend.  ``--backend disk`` recovers whatever the data
directory already holds (latest snapshot + WAL replay) before loading.
``--backend procshard`` runs each shard as a worker *process* speaking
the encoded fetch protocol, and — with ``--replicas R --data-dir DIR``
— load-balances bounded fetches across WAL-shipped read replicas.

``--db DIR`` points at a directory written by
``repro.storage.io.save_database`` (CSV files plus ``schema.json``).
``analyze`` reports coverage / bounded evaluability / envelopes /
specialization advice; ``explain`` prints the full compilation pipeline
(logical plan, fired optimizer rules, physical plan, cost estimate);
``run`` additionally executes the bounded plan
(or the baseline when none exists) and prints access accounting;
``discover`` mines an access schema from the data and prints it;
``batch`` serves a JSON file of requests through a persistent
:class:`~repro.service.BoundedQueryService`; ``bench-service`` measures
cold vs. warm service latency for one query — with ``--write-fraction
F`` it interleaves row rewrites into the warm loop, exercising the
fetch cache's incremental maintenance under mixed traffic (EXP-14
measures the same thing reproducibly); ``serve`` runs the resilient
HTTP serving tier (admission control, deadlines, graceful shutdown)
until interrupted.

The batch file format::

    {
      "templates": {"by_day": "Q(d) :- Accident(a, d, t), t = $date"},
      "requests": [
        {"template": "by_day", "params": {"date": "1/5/2005"}},
        {"query": "Q(x) :- Accident(x, d, t), d = 'Soho'"}
      ]
    }
"""

from __future__ import annotations

import argparse
import contextlib
import json
import pathlib
import sys
import time

from .core import (analyze_coverage, is_boundedly_evaluable, lower_envelope,
                   specialize_minimally, upper_envelope)
from .engine import (ScanStats, evaluate, execute_plan, optimize,
                     static_bounds)
from .errors import ReproError, StorageError
from .obs import (MetricsRegistry, RequestMetrics, Tracer,
                  attach_database_collector, attach_storage_collector,
                  render_exposition, span)
from .query import CQ, parse_query
from .schema.discovery import DiscoveryOptions, discover_access_schema
from .service import BatchRequest, BoundedQueryService, ServiceResult
from .storage.backend import BACKENDS, make_backend
from .storage.io import load_database
from .storage.statistics import TableStatistics


def _load(args):
    backend_name = getattr(args, "backend", "memory")
    factory = None
    if backend_name != "memory":
        # Load straight onto the target engine: rows and indexes are
        # built once, not built in memory and re-homed.  ``workers``
        # means pool threads for the sharded engine and shard worker
        # *processes* for procshard (see make_backend).
        workers = (getattr(args, "shard_workers", 0)
                   if backend_name == "procshard"
                   else getattr(args, "shard_threads", 0))

        def factory(schema):
            return make_backend(backend_name, schema,
                                shards=getattr(args, "shards", 8),
                                workers=workers,
                                replicas=getattr(args, "replicas", 0),
                                data_dir=getattr(args, "data_dir", None),
                                fsync=getattr(args, "fsync", False),
                                rpc_timeout_s=getattr(args, "rpc_timeout",
                                                      None))
    db = load_database(args.db, backend_factory=factory)
    if db.access_schema is None or not len(db.access_schema):
        print("warning: no access constraints in schema.json",
              file=sys.stderr)
    return db


def _add_obs_flags(parser) -> None:
    parser.add_argument("--trace", default=None, metavar="PATH",
                        help="record per-stage trace trees, write them as "
                             "JSON lines to PATH and print the tree(s)")
    parser.add_argument("--metrics-out", dest="metrics_out", default=None,
                        metavar="PATH",
                        help="write a Prometheus-style text exposition of "
                             "the run's metrics to PATH")


@contextlib.contextmanager
def _maybe_trace(args):
    """Activate a tracer when ``--trace`` was given; afterwards dump
    the JSON-lines file and print the span tree(s)."""
    if not getattr(args, "trace", None):
        yield None
        return
    tracer = Tracer()
    with tracer:
        yield tracer
    count = tracer.write_jsonl(args.trace)
    print(f"trace: {count} root span(s) -> {args.trace}")
    print(tracer.render())


def _maybe_write_metrics(args, registry: MetricsRegistry | None) -> None:
    if registry is None or not getattr(args, "metrics_out", None):
        return
    text = render_exposition(registry)
    pathlib.Path(args.metrics_out).write_text(text)
    families = sum(1 for line in text.splitlines()
                   if line.startswith("# TYPE "))
    print(f"metrics: {families} families -> {args.metrics_out}")


def _registry_for(args, db) -> MetricsRegistry | None:
    """A registry when ``--metrics-out`` was given (with the storage
    and instance collectors attached), else ``None``."""
    if not getattr(args, "metrics_out", None):
        return None
    registry = MetricsRegistry()
    attach_storage_collector(registry, db.backend)
    attach_database_collector(registry, db)
    return registry


def _add_backend_flags(parser) -> None:
    parser.add_argument("--backend", choices=BACKENDS, default="memory",
                        help="storage engine to serve reads from "
                             "(default: memory)")
    parser.add_argument("--shards", type=int, default=8,
                        help="shard count for --backend sharded")
    parser.add_argument("--shard-threads", dest="shard_threads", type=int,
                        default=0,
                        help="thread-pool size for --backend sharded "
                             "(0 = sequential; fan-out only kicks in "
                             "above the per-shard key threshold)")
    parser.add_argument("--shard-workers", dest="shard_workers", type=int,
                        default=4,
                        help="shard worker processes for "
                             "--backend procshard (default: 4)")
    parser.add_argument("--replicas", type=int, default=0,
                        help="WAL-shipped read replica processes for "
                             "--backend procshard (requires --data-dir)")
    parser.add_argument("--data-dir", dest="data_dir", default=None,
                        help="durable data directory for --backend disk "
                             "or procshard (recovered on open: latest "
                             "snapshot + WAL)")
    parser.add_argument("--fsync", action="store_true",
                        help="fsync the WAL after every write batch "
                             "(--backend disk; power-loss durability)")
    parser.add_argument("--rpc-timeout", dest="rpc_timeout", type=float,
                        default=None, metavar="SECONDS",
                        help="per-RPC reply timeout for --backend "
                             "procshard (default: "
                             "ProcessShardedBackend.RPC_TIMEOUT_S); a "
                             "worker that misses it is retired and "
                             "respawned")


def cmd_analyze(args) -> int:
    db = _load(args)
    query = parse_query(args.query)
    access = db.access_schema
    decision = is_boundedly_evaluable(query, access)
    print(f"BEP: {decision.explain()}")
    if decision.is_yes:
        plan = decision.witness["plan"]
        cost = static_bounds(plan, db_size=db.size())
        print(f"plan: {len(plan)} ops, fetch bound {cost.fetch_bound}, "
              f"output bound {cost.output_bound}")
        if args.verbose:
            print(plan.explain())
        return 0
    if isinstance(query, CQ):
        coverage = analyze_coverage(query, access)
        print(coverage.explain())
        upper = upper_envelope(query, access)
        print(f"upper envelope: {upper.explain()}")
        lower = lower_envelope(query, access, k=args.k)
        print(f"lower envelope ({args.k}-expansion): {lower.explain()}")
        qsp = specialize_minimally(query, access)
        if qsp.is_yes:
            names = ", ".join(v.name for v in qsp.witness)
            print(f"specialization: instantiate {{{names}}} to make the "
                  "query boundedly evaluable")
        else:
            print(f"specialization: {qsp.explain()}")
    return 1


def cmd_explain(args) -> int:
    """Show the whole compilation pipeline for one query: the certified
    logical plan, which optimizer rules fired, the physical plan the
    executor will run, and the static cost estimate."""
    db = _load(args)
    query = parse_query(args.query)
    decision = is_boundedly_evaluable(query, db.access_schema)
    print(f"BEP: {decision.explain()}")
    if not decision.is_yes:
        print("no bounded plan to explain; `repro analyze` diagnoses "
              "uncovered queries")
        return 1
    plan = decision.witness["plan"]
    print()
    print(f"logical {plan.explain()}")
    physical = optimize(plan, TableStatistics.from_database(db))
    print()
    print(physical.trace.explain())
    fired = physical.trace.fired_rules()
    print(f"fired rules: {', '.join(fired) if fired else '(none)'}")
    print()
    print(physical.explain())
    print()
    cost = static_bounds(plan, db_size=db.size())
    print(f"cost estimate: output <= {cost.output_bound} rows, "
          f"fetched <= {cost.fetch_bound} tuples, "
          f"index lookups <= {cost.lookup_bound}")
    return 0


def cmd_run(args) -> int:
    db = _load(args)
    print(f"storage: {db.backend.describe()}")
    registry = _registry_for(args, db)
    started = time.perf_counter()
    with _maybe_trace(args):
        # The "request" root scopes the pipeline only (compile ->
        # decision -> execute); reporting happens outside it, so its
        # children account for (within tolerance) all of its time.
        with span("request"):
            query = parse_query(args.query)
            decision = is_boundedly_evaluable(query, db.access_schema)
            if decision.is_yes:
                result = execute_plan(decision.witness["plan"], db)
                answers, stats, scan = result.answers, result.stats, None
            else:
                scan = ScanStats()
                with span("execute"):
                    answers = evaluate(query, db, scan)
                stats = None
        elapsed = time.perf_counter() - started
    if stats is not None:
        print(f"bounded plan: fetched {stats.tuples_fetched} of "
              f"{db.size()} tuples "
              f"({stats.index_lookups} index lookups)")
    else:
        print(f"not boundedly evaluable ({decision.reason}); "
              "falling back to a full scan")
        print(f"baseline: scanned {scan.tuples_scanned} tuples")
    for row in sorted(answers, key=repr)[:args.limit]:
        print("  ", row)
    if len(answers) > args.limit:
        print(f"   ... {len(answers) - args.limit} more")
    print(f"{len(answers)} answer(s)")
    if registry is not None:
        RequestMetrics(registry).observe(ServiceResult(
            answers=answers, bounded=decision.is_yes, plan_cached=False,
            latency_s=elapsed, reason=decision.reason, stats=stats,
            scan_stats=scan))
        _maybe_write_metrics(args, registry)
    return 0


def _load_requests(path) -> tuple[dict[str, str], list[BatchRequest]]:
    path = pathlib.Path(path)
    if not path.exists():
        raise StorageError(f"no such request file: {path}")
    try:
        spec = json.loads(path.read_text())
    except json.JSONDecodeError as error:
        raise StorageError(f"request file {path} is not valid JSON: "
                           f"{error}") from error
    templates = spec.get("templates", {})
    requests = []
    for index, raw in enumerate(spec.get("requests", ())):
        try:
            requests.append(BatchRequest(
                query=raw.get("query"), template=raw.get("template"),
                params=raw.get("params"), label=raw.get("label")))
        except (AttributeError, ValueError) as error:
            raise StorageError(
                f"request #{index} in {path} is malformed ({error}); "
                'each request needs exactly one of "query" or '
                '"template"') from error
    return templates, requests


def cmd_batch(args) -> int:
    db = _load(args)
    registry = MetricsRegistry() if args.metrics_out else None
    service = BoundedQueryService(
        db, plan_cache_size=args.plan_cache,
        fetch_cache_size=args.fetch_cache, registry=registry)
    templates, requests = _load_requests(args.requests)
    for name, text in templates.items():
        template = service.register_template(name, text)
        if not template.bounded and args.verbose:
            print(f"note: {name} falls back to scanning "
                  f"({template.compiled.reason})", file=sys.stderr)
    if not requests:
        print("no requests in file", file=sys.stderr)
        return 1
    with _maybe_trace(args):
        report = service.execute_batch(requests, max_workers=args.workers)
    for outcome in report.outcomes:
        name = outcome.request.describe()
        if not outcome.ok:
            print(f"  {name}: ERROR {outcome.error}")
            continue
        result = outcome.result
        mode = "bounded" if result.bounded else "scan"
        print(f"  {name}: {len(result.answers)} answer(s) [{mode}, "
              f"{result.latency_ms:.2f}ms]")
    print(report.summary())
    print(service.stats())
    _maybe_write_metrics(args, registry)
    return 1 if report.errors else 0


def cmd_bench_service(args) -> int:
    import random

    db = _load(args)
    query = args.query
    registry = MetricsRegistry() if args.metrics_out else None

    cold_service = BoundedQueryService(db)
    cold = cold_service.execute(query)
    cold_ms = cold.latency_ms

    write_fraction = max(0.0, min(1.0, args.write_fraction))
    churn_relation = churn_rows = None
    if write_fraction > 0:
        # Interleaved writes rewrite (delete + reinsert) random rows of
        # the largest relation: content is unchanged, but every rewrite
        # bumps the write generation — exactly the traffic incremental
        # cache maintenance absorbs in place.
        churn_relation = max(db.summary().items(), key=lambda kv: kv[1])[0]
        churn_rows = db.relation_tuples(churn_relation)

    rng = random.Random(0)
    writes = 0
    service = BoundedQueryService(db, registry=registry)
    with _maybe_trace(args):
        service.execute(query)  # prime the caches
        warm_ms = []
        for _ in range(max(1, args.requests)):
            if churn_rows and rng.random() < write_fraction:
                row = rng.choice(churn_rows)
                db.delete(churn_relation, row)
                db.insert(churn_relation, row)
                writes += 1
            warm_ms.append(service.execute(query).latency_ms)
    warm_ms.sort()
    p50 = warm_ms[len(warm_ms) // 2]
    p95 = warm_ms[min(len(warm_ms) - 1, int(len(warm_ms) * 0.95))]
    mode = "bounded" if cold.bounded else "scan fallback"
    print(f"query: {query}")
    print(f"storage: {db.backend.describe()}")
    print(f"mode: {mode}; {len(cold.answers)} answer(s)")
    print(f"cold (parse + analyze + plan + execute): {cold_ms:.2f}ms")
    print(f"warm x{len(warm_ms)} (plan cache + fetch cache): "
          f"p50 {p50:.3f}ms  p95 {p95:.3f}ms  "
          f"speedup {cold_ms / max(p50, 1e-6):.0f}x")
    if writes:
        cache = service.fetch_cache
        print(f"writes interleaved: {writes} rewrites of {churn_relation} "
              f"({write_fraction:.0%} of requests); maintenance: "
              f"{cache.maintained_deltas} deltas applied in place, "
              f"{cache.maintenance_fallbacks} fallbacks")
    print(service.stats())
    _maybe_write_metrics(args, registry)
    return 0


def cmd_stats(args) -> int:
    """Print a storage-level metrics snapshot for one database
    directory: instance gauges (``repro_db_rows``, per-relation sizes
    as text) plus whatever the chosen engine's internal counters report
    (the disk engine: WAL/fsync/snapshot/recovery tallies)."""
    db = _load(args)
    print(f"storage: {db.backend.describe()}")
    for name, size in db.summary().items():
        print(f"  {name}: {size} rows (generation "
              f"{db.generation(name)})")
    registry = MetricsRegistry()
    if db.access_schema is not None and len(db.access_schema):
        # A service wired to the registry contributes the request and
        # admission families (zeros here — no traffic has run — but the
        # exposition shape matches what a live serving tier exports,
        # and the service constructor attaches the storage and
        # database collectors too).
        service = BoundedQueryService(db, registry=registry)
        print(service.stats())
    else:
        attach_storage_collector(registry, db.backend)
        attach_database_collector(registry, db)
    text = render_exposition(registry)
    if args.metrics_out:
        pathlib.Path(args.metrics_out).write_text(text)
        print(f"metrics -> {args.metrics_out}")
    else:
        print(text, end="")
    return 0


def cmd_serve(args) -> int:
    """Run the resilient serving tier (see :mod:`repro.serve.server`)
    over one database until SIGTERM/SIGINT."""
    import asyncio

    from .serve import ReproServer, ServerConfig, run_forever

    db = _load(args)
    config = ServerConfig(
        host=args.host, port=args.port, workers=args.workers,
        queue_depth=args.queue_depth, default_budget=args.budget,
        default_timeout_ms=args.timeout_ms)
    server = ReproServer(db, config)
    budget = ("unlimited" if config.default_budget is None
              else config.default_budget)
    print(f"serving {args.db} on http://{config.host}:{config.port} "
          f"({config.workers} workers, queue depth "
          f"{config.queue_depth}, budget {budget})")
    try:
        asyncio.run(run_forever(server))
    except KeyboardInterrupt:
        pass
    stats = server.tenants["default"].service.stats()
    print(stats)
    return 0


def cmd_discover(args) -> int:
    db = _load(args)
    options = DiscoveryOptions(max_bound=args.max_bound)
    access = discover_access_schema(db, options)
    for constraint in access:
        print(constraint)
    print(f"-- {len(access)} constraints (max bound {args.max_bound})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="bounded evaluability analyzer")
    sub = parser.add_subparsers(dest="command", required=True)

    analyze = sub.add_parser("analyze", help="decide bounded evaluability")
    analyze.add_argument("--db", required=True)
    analyze.add_argument("--k", type=int, default=2,
                         help="lower-envelope expansion budget")
    analyze.add_argument("--verbose", action="store_true")
    analyze.add_argument("query")
    analyze.set_defaults(func=cmd_analyze)

    explain = sub.add_parser(
        "explain", help="show logical plan, optimizer rules, physical "
                        "plan and cost estimate")
    explain.add_argument("--db", required=True)
    explain.add_argument("query")
    explain.set_defaults(func=cmd_explain)

    run = sub.add_parser("run", help="execute a query (bounded if possible)")
    run.add_argument("--db", required=True)
    run.add_argument("--limit", type=int, default=20)
    _add_backend_flags(run)
    _add_obs_flags(run)
    run.add_argument("query")
    run.set_defaults(func=cmd_run)

    stats = sub.add_parser(
        "stats", help="storage-level metrics snapshot for a database")
    stats.add_argument("--db", required=True)
    _add_backend_flags(stats)
    stats.add_argument("--metrics-out", dest="metrics_out", default=None,
                       metavar="PATH",
                       help="write the exposition to PATH instead of "
                            "stdout")
    stats.set_defaults(func=cmd_stats)

    serve = sub.add_parser(
        "serve", help="run the HTTP serving tier over a database")
    serve.add_argument("--db", required=True)
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8080)
    serve.add_argument("--workers", type=int, default=4,
                       help="executor threads running queries")
    serve.add_argument("--queue-depth", dest="queue_depth", type=int,
                       default=16,
                       help="admitted requests allowed to wait beyond "
                            "the workers; the rest are shed with 429")
    serve.add_argument("--budget", type=int, default=None,
                       help="fetch-bound budget for the default tenant; "
                            "certified bounds above it are rejected "
                            "with 429 before execution")
    serve.add_argument("--timeout-ms", dest="timeout_ms", type=float,
                       default=0.0,
                       help="deadline applied to requests that carry "
                            "none (0 = no deadline)")
    _add_backend_flags(serve)
    serve.set_defaults(func=cmd_serve)

    discover = sub.add_parser("discover",
                              help="mine access constraints from data")
    discover.add_argument("--db", required=True)
    discover.add_argument("--max-bound", type=int, default=1024)
    discover.set_defaults(func=cmd_discover)

    batch = sub.add_parser(
        "batch", help="serve a JSON file of requests through the service")
    batch.add_argument("--db", required=True)
    batch.add_argument("--workers", type=int, default=4)
    batch.add_argument("--plan-cache", type=int, default=256)
    batch.add_argument("--fetch-cache", type=int, default=4096)
    batch.add_argument("--verbose", action="store_true")
    _add_backend_flags(batch)
    _add_obs_flags(batch)
    batch.add_argument("requests", help="JSON file of templates + requests")
    batch.set_defaults(func=cmd_batch)

    bench = sub.add_parser(
        "bench-service", help="cold vs warm service latency for one query")
    bench.add_argument("--db", required=True)
    bench.add_argument("--requests", type=int, default=100,
                       help="warm repetitions to measure")
    bench.add_argument("--write-fraction", dest="write_fraction",
                       type=float, default=0.0,
                       help="fraction of warm requests preceded by a row "
                            "rewrite of the largest relation (0..1), "
                            "exercising incremental cache maintenance "
                            "under mixed traffic")
    _add_backend_flags(bench)
    _add_obs_flags(bench)
    bench.add_argument("query")
    bench.set_defaults(func=cmd_bench_service)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
