"""Admission control for the serving tier.

Two independent gates run before a query executes, and both produce a
429 with ``Retry-After`` rather than queueing work the tier cannot
absorb:

* **Capacity** — :class:`AdmissionController` caps in-flight requests
  at (executor workers + a bounded wait queue).  Past that, the tier
  *sheds*: admitting more work would only grow latency for everyone
  (the queue is the system, per the usual overload argument), so the
  honest answer is "come back later".

* **Budget** — the paper's own admission signal.  A boundedly evaluable
  query carries a cost certificate whose ``fetch_bound`` is computable
  from Q and A alone, *before* touching data.  :func:`budget_decision`
  compares that bound against the tenant's budget and rejects
  over-budget (or uncertified) work up front — zero data cost for a
  refusal, which is exactly what makes certificate-gated admission
  viable where effort-based admission is not.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..engine.cost import static_bounds
from ..service.service import BoundedQueryService


@dataclass
class Tenant:
    """One tenant's slice of the serving tier: a service compiled
    against the tenant's access schema plus a fetch-bound budget
    (``None`` = unlimited; then uncertified queries fall back to scan
    instead of being rejected).  Templates live on the service itself."""

    name: str
    service: BoundedQueryService
    budget: int | None = None


@dataclass(frozen=True)
class AdmissionDecision:
    """The outcome of the budget gate for one compiled query."""

    admitted: bool
    reason: str = ""
    bound: int | None = None


def budget_decision(entry, tenant: Tenant, db_size: int) -> AdmissionDecision:
    """Apply the certificate gate to one compiled query.

    * no budget → admit (unbounded queries will use the scan fallback);
    * budget set but no certificate → reject: the tier cannot price the
      query, and a finite budget means unpriced work is refused;
    * certificate's fetch bound over budget → reject, quoting the bound
      so the caller can see how far off they are.
    """
    if tenant.budget is None:
        return AdmissionDecision(admitted=True)
    if not entry.bounded:
        return AdmissionDecision(
            admitted=False,
            reason=f"no cost certificate ({entry.reason}); tenant "
                   f"{tenant.name!r} has a finite budget, so uncertified "
                   "queries are refused")
    bound = static_bounds(entry.plan, db_size=db_size).fetch_bound
    if bound > tenant.budget:
        return AdmissionDecision(
            admitted=False, bound=bound,
            reason=f"certified fetch bound {bound} exceeds tenant "
                   f"{tenant.name!r} budget {tenant.budget}")
    return AdmissionDecision(admitted=True, bound=bound)


class AdmissionController:
    """A counting gate over in-flight requests.

    ``max_inflight`` should be (executor workers + acceptable queue
    depth): requests past the workers wait in the executor's queue, and
    requests past the whole gate are shed with 429.  The gate itself is
    two integer ops under a lock — negligible against any query.
    """

    def __init__(self, max_inflight: int):
        if max_inflight < 1:
            raise ValueError(
                f"max_inflight must be >= 1, got {max_inflight}")
        self.max_inflight = max_inflight
        self._lock = threading.Lock()
        self._inflight = 0
        self.admitted_total = 0
        self.shed_total = 0

    def try_enter(self) -> bool:
        """Claim a slot; ``False`` means shed (no slot was claimed)."""
        with self._lock:
            if self._inflight >= self.max_inflight:
                self.shed_total += 1
                return False
            self._inflight += 1
            self.admitted_total += 1
            return True

    def leave(self) -> None:
        with self._lock:
            if self._inflight <= 0:
                raise RuntimeError("leave() without a matching try_enter()")
            self._inflight -= 1

    @property
    def inflight(self) -> int:
        with self._lock:
            return self._inflight
