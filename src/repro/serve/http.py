"""A minimal HTTP/1.1 layer over asyncio streams — stdlib only.

The serving tier needs exactly four things from HTTP: parse a request
(line, headers, Content-Length body), render a response, keep-alive so
closed-loop load clients can reuse connections, and hard size limits so
a malformed or hostile client cannot balloon coordinator memory.  A
full framework buys nothing here and would break the repo's
no-dependencies rule, so this module implements just that surface.

Deliberately unsupported: chunked transfer encoding (both directions —
every response carries Content-Length), HTTP/1.0 keep-alive
negotiation, multi-line headers, and TLS.  A request using them gets a
clean 400, not undefined behaviour.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field

#: Hard caps, applied while reading — a request that exceeds one is
#: answered 400/413 and the connection is closed.
MAX_REQUEST_LINE = 8192
MAX_HEADERS = 100
MAX_BODY_BYTES = 8 * 1024 * 1024

_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    """A protocol-level problem with one request; the handler converts
    it to a response with ``status`` and closes the connection."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed request.  Header names are lower-cased."""

    method: str
    path: str
    headers: dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        return self.headers.get("connection", "").lower() != "close"

    def json(self):
        """The body parsed as JSON (an object), or a 400."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body)
        except ValueError as error:
            raise HttpError(400, f"request body is not valid JSON: "
                                 f"{error}") from error
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def read_request(reader: asyncio.StreamReader) -> Request | None:
    """Parse one request off the stream; ``None`` on a clean EOF
    (client closed between requests — the keep-alive end condition)."""
    try:
        line = await reader.readline()
    except (ValueError, ConnectionError):
        raise HttpError(400, "request line too long") from None
    if not line:
        return None
    if len(line) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = line.decode("latin-1").strip().split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line: {line[:80]!r}")
    method, path, _version = parts
    headers: dict[str, str] = {}
    while True:
        try:
            raw = await reader.readline()
        except (ValueError, ConnectionError):
            raise HttpError(400, "header line too long") from None
        if raw in (b"\r\n", b"\n", b""):
            break
        if len(headers) >= MAX_HEADERS:
            raise HttpError(400, "too many headers")
        name, sep, value = raw.decode("latin-1").partition(":")
        if not sep:
            raise HttpError(400, f"malformed header: {raw[:80]!r}")
        headers[name.strip().lower()] = value.strip()
    if "transfer-encoding" in headers:
        raise HttpError(400, "chunked transfer encoding is not supported")
    body = b""
    length_text = headers.get("content-length")
    if length_text is not None:
        try:
            length = int(length_text)
        except ValueError:
            raise HttpError(400, f"bad Content-Length: "
                                 f"{length_text!r}") from None
        if length < 0:
            raise HttpError(400, f"bad Content-Length: {length}")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body of {length} bytes exceeds the "
                                 f"{MAX_BODY_BYTES}-byte limit")
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as error:
                raise HttpError(
                    400, f"body truncated at {len(error.partial)} of "
                         f"{length} bytes") from error
    return Request(method=method, path=path, headers=headers, body=body)


def render_response(status: int, body: bytes,
                    content_type: str = "application/json",
                    extra_headers: tuple = (),
                    keep_alive: bool = True) -> bytes:
    reason = _REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
    return head + body


def json_response(status: int, payload,
                  extra_headers: tuple = (),
                  keep_alive: bool = True) -> bytes:
    body = (json.dumps(payload, separators=(",", ":"),
                       sort_keys=True) + "\n").encode("utf-8")
    return render_response(status, body, extra_headers=extra_headers,
                           keep_alive=keep_alive)
