"""The resilient serving tier: HTTP front-end, certificate-gated
admission control, deadline propagation and housekeeping over
:class:`~repro.service.service.BoundedQueryService`.  See
:mod:`repro.serve.server` for the architecture overview."""

from .admission import (AdmissionController, AdmissionDecision, Tenant,
                        budget_decision)
from .housekeeping import Housekeeper
from .http import HttpError, Request, json_response, read_request
from .server import DEFAULT_TENANT, ReproServer, ServerConfig, run_forever

__all__ = [
    "AdmissionController",
    "AdmissionDecision",
    "Tenant",
    "budget_decision",
    "Housekeeper",
    "HttpError",
    "Request",
    "json_response",
    "read_request",
    "DEFAULT_TENANT",
    "ReproServer",
    "ServerConfig",
    "run_forever",
]
