"""The resilient serving tier: an asyncio HTTP front-end over
:class:`~repro.service.service.BoundedQueryService`.

Architecture, in one paragraph: a single asyncio event loop accepts
connections and parses requests (:mod:`repro.serve.http`); query
execution — the only CPU- and storage-heavy work — runs on a bounded
thread pool; an :class:`~repro.serve.admission.AdmissionController`
caps in-flight work at (workers + queue depth) — the gate fires on the
dispatching side (:meth:`ReproServer.submit`), *before* the executor,
so overload sheds with 429 + ``Retry-After`` instead of queueing
unboundedly; per-request deadlines propagate ambiently
(:mod:`repro.deadline`) through the executor, the fetch boundary and
the procshard RPC layer; and one klipper-style housekeeping loop
(:mod:`repro.serve.housekeeping`) owns all periodic maintenance.

Multi-tenancy: every tenant shares the one :class:`Database` (and its
attached indexes) but gets its *own* service compiled against its own
access schema (``attach=False``) and its own fetch-bound budget — the
certificate gate (:func:`~repro.serve.admission.budget_decision`) then
refuses over-budget work before it touches data.  Only the default
tenant's service is wired to the metrics registry (instrument names
are registry-global); per-tenant detail is served as JSON on
``/stats``.

Routes::

    GET  /healthz    liveness
    GET  /metrics    Prometheus exposition
    GET  /stats      per-tenant stats + admission + housekeeping JSON
    POST /tenants    {"name", "budget", "constraints": [[rel,[x],[y],N],..]}
    POST /templates  {"tenant"?, "name", "text"}
    POST /query      {"tenant"?, "query"|"template"+"params", "timeout_ms"?}
"""

from __future__ import annotations

import asyncio
import signal
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass

from ..deadline import Deadline
from ..errors import DeadlineExceeded, ReproError
from ..obs.export import render_exposition
from ..obs.metrics import MetricsRegistry
from ..schema.access import AccessConstraint, AccessSchema
from ..service.service import BoundedQueryService
from ..storage.database import Database
from .admission import AdmissionController, Tenant, budget_decision
from .housekeeping import Housekeeper
from .http import (HttpError, Request, json_response, read_request,
                   render_response)

DEFAULT_TENANT = "default"


def _completed(response: bytes) -> "Future[bytes]":
    """An already-resolved future — shed and parse-error responses
    never touch the thread pool."""
    future: "Future[bytes]" = Future()
    future.set_result(response)
    return future


@dataclass
class ServerConfig:
    """Tuning knobs for one :class:`ReproServer`."""

    host: str = "127.0.0.1"
    port: int = 8080
    #: Executor threads actually running queries.
    workers: int = 4
    #: Requests allowed to wait for a thread beyond the running ones;
    #: anything past workers + queue_depth is shed with 429.
    queue_depth: int = 16
    #: Fetch-bound budget for the default tenant (None = unlimited).
    default_budget: int | None = None
    #: Deadline applied when a request names none (0 = no deadline).
    default_timeout_ms: float = 0.0
    #: Suggested client back-off on a 429, seconds.
    retry_after_s: int = 1
    #: Housekeeping cadences.
    cache_sweep_interval_s: float = 5.0
    stats_flush_interval_s: float = 10.0
    peer_health_interval_s: float = 2.0


def _attach_server_collector(registry: MetricsRegistry,
                             server: "ReproServer") -> None:
    inflight = registry.gauge("repro_serve_inflight",
                              "Requests currently admitted")
    admitted = registry.counter("repro_serve_admitted_total",
                                "Requests past the capacity gate")
    runs = registry.counter("repro_housekeeping_runs_total",
                            "Housekeeping handler runs")
    errors = registry.counter("repro_housekeeping_errors_total",
                              "Housekeeping handler errors")

    def collect() -> None:
        inflight.set(server.admission.inflight)
        admitted.set_total(server.admission.admitted_total)
        report = server.housekeeper.report()
        runs.set_total(sum(entry["runs"] for entry in report.values()))
        errors.set_total(sum(entry["errors"] for entry in report.values()))

    registry.register_collector(collect)


class ReproServer:
    """The serving tier over one database instance.

    Construct, then either drive it from tests via :meth:`handle`
    (request in, response bytes out — no sockets needed) or serve for
    real with :func:`run_forever`.
    """

    def __init__(self, db: Database, config: ServerConfig | None = None,
                 registry: MetricsRegistry | None = None):
        self.db = db
        self.config = config or ServerConfig()
        self.registry = registry if registry is not None else MetricsRegistry()
        # The default tenant serves the database's attached access
        # schema; it is the ONE service wired to the registry (names
        # are registry-global, see attach_admission_collector).
        service = BoundedQueryService(db, registry=self.registry)
        self.tenants: dict[str, Tenant] = {
            DEFAULT_TENANT: Tenant(name=DEFAULT_TENANT, service=service,
                                   budget=self.config.default_budget)}
        self.admission = AdmissionController(
            self.config.workers + self.config.queue_depth)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.workers,
            thread_name_prefix="repro-serve")
        self.housekeeper = Housekeeper()
        self.housekeeper.register(
            "cache_sweep", self.config.cache_sweep_interval_s,
            self._sweep_caches)
        self.housekeeper.register(
            "stats_flush", self.config.stats_flush_interval_s,
            self._flush_stats)
        self.housekeeper.register(
            "peer_health", self.config.peer_health_interval_s,
            self._check_peers)
        self._last_stats: dict = {}
        _attach_server_collector(self.registry, self)

    # -- housekeeping handlers ---------------------------------------------

    def _sweep_caches(self) -> int:
        return sum(tenant.service.sweep_caches()
                   for tenant in list(self.tenants.values()))

    def _flush_stats(self) -> dict:
        self._last_stats = self.stats_payload()
        return self._last_stats

    def _check_peers(self) -> dict:
        health_check = getattr(self.db.backend, "health_check", None)
        if health_check is None:
            return {}
        return health_check()

    # -- request handling ---------------------------------------------------

    def handle(self, request: Request) -> bytes:
        """Route one parsed request to response bytes, entirely on the
        calling thread (the sync test surface)."""
        return self._guard(self._route, request)

    def submit(self, request: Request) -> "Future[bytes]":
        """Admission-aware dispatch: the capacity gate runs on the
        *calling* thread, so queued-but-unstarted work counts against
        capacity and overload sheds immediately — it cannot hide in
        the executor queue.  Only admitted query work ever reaches the
        thread pool.  The async loop and closed-loop load generators
        both come through here."""
        if (request.method, request.path) != ("POST", "/query"):
            return self._executor.submit(self.handle, request)
        try:
            payload = request.json()
            tenant = self._tenant(payload)
        except HttpError as error:
            return _completed(json_response(
                error.status, {"error": error.message}, keep_alive=False))
        if not self.admission.try_enter():
            tenant.service.record_shed()
            return _completed(
                self._refuse("admission queue full, request shed"))
        future = self._executor.submit(
            self._guard, self._execute_admitted, tenant, payload)
        future.add_done_callback(lambda _f: self.admission.leave())
        return future

    def _guard(self, fn, *args) -> bytes:
        try:
            return fn(*args)
        except HttpError as error:
            return json_response(error.status, {"error": error.message},
                                 keep_alive=False)
        except ReproError as error:
            return json_response(400, {"error": str(error)})
        except Exception as error:  # noqa: BLE001 - last-resort 500
            return json_response(
                500, {"error": f"{type(error).__name__}: {error}"})

    def _route(self, request: Request) -> bytes:
        route = (request.method, request.path)
        if route == ("GET", "/healthz"):
            return json_response(200, {"status": "ok"})
        if route == ("GET", "/metrics"):
            text = render_exposition(self.registry)
            return render_response(
                200, text.encode("utf-8"),
                content_type="text/plain; version=0.0.4")
        if route == ("GET", "/stats"):
            return json_response(200, self.stats_payload())
        if route == ("POST", "/tenants"):
            return self._handle_tenants(request)
        if route == ("POST", "/templates"):
            return self._handle_templates(request)
        if request.path == "/query":
            if request.method != "POST":
                return json_response(
                    405, {"error": "use POST for /query"})
            return self._handle_query(request)
        return json_response(
            404, {"error": f"no route for {request.method} "
                           f"{request.path}"})

    def _refuse(self, message: str, extra: dict | None = None) -> bytes:
        body = {"error": message,
                "retry_after_s": self.config.retry_after_s}
        if extra:
            body.update(extra)
        return json_response(
            429, body,
            extra_headers=(("Retry-After",
                            str(self.config.retry_after_s)),))

    def _tenant(self, payload: dict) -> Tenant:
        name = payload.get("tenant", DEFAULT_TENANT)
        tenant = self.tenants.get(name)
        if tenant is None:
            raise HttpError(404, f"unknown tenant {name!r}; registered: "
                                 f"{', '.join(sorted(self.tenants))}")
        return tenant

    def _handle_tenants(self, request: Request) -> bytes:
        payload = request.json()
        name = payload.get("name")
        if not isinstance(name, str) or not name:
            raise HttpError(400, 'tenant registration needs a "name"')
        if name in self.tenants:
            raise HttpError(400, f"tenant {name!r} is already registered")
        budget = payload.get("budget")
        if budget is not None and (not isinstance(budget, int)
                                   or budget < 0):
            raise HttpError(400, f'"budget" must be a non-negative '
                                 f'integer or null, got {budget!r}')
        specs = payload.get("constraints")
        if not isinstance(specs, list) or not specs:
            raise HttpError(
                400, 'tenant registration needs "constraints": a non-'
                     'empty list of [relation, [x...], [y...], limit]')
        constraints = []
        for spec in specs:
            if (not isinstance(spec, list) or len(spec) != 4
                    or not isinstance(spec[1], list)
                    or not isinstance(spec[2], list)):
                raise HttpError(
                    400, f"bad constraint spec {spec!r}; expected "
                         "[relation, [x...], [y...], limit]")
            relation, x, y, limit = spec
            constraints.append(AccessConstraint(
                relation, tuple(x), tuple(y), limit))
        # attach=False: compile against the tenant's schema while the
        # shared database keeps its wider attached indexes.
        schema = AccessSchema(self.db.schema, tuple(constraints))
        service = BoundedQueryService(self.db, access_schema=schema,
                                     attach=False, registry=None)
        self.tenants[name] = Tenant(name=name, service=service,
                                    budget=budget)
        return json_response(200, {"tenant": name, "budget": budget,
                                   "constraints": len(constraints)})

    def _handle_templates(self, request: Request) -> bytes:
        payload = request.json()
        tenant = self._tenant(payload)
        name, text = payload.get("name"), payload.get("text")
        if not isinstance(name, str) or not isinstance(text, str):
            raise HttpError(400, 'template registration needs "name" '
                                 'and "text" strings')
        template = tenant.service.register_template(
            name, text, replace=bool(payload.get("replace", False)))
        return json_response(200, {
            "tenant": tenant.name, "template": name,
            "parameters": sorted(template.parameters),
            "bounded": template.compiled.bounded})

    def _handle_query(self, request: Request) -> bytes:
        payload = request.json()
        tenant = self._tenant(payload)
        if not self.admission.try_enter():
            tenant.service.record_shed()
            return self._refuse("admission queue full, request shed")
        try:
            return self._execute_admitted(tenant, payload)
        finally:
            self.admission.leave()

    def _execute_admitted(self, tenant: Tenant, payload: dict) -> bytes:
        query_text = payload.get("query")
        template_name = payload.get("template")
        params = payload.get("params") or {}
        if not isinstance(params, dict):
            raise HttpError(400, '"params" must be an object')
        if (query_text is None) == (template_name is None):
            raise HttpError(
                400, 'a query request carries exactly one of "query" '
                     '(text) or "template" (a registered name)')
        if template_name is not None:
            entry = tenant.service.template(template_name).compiled
        else:
            entry = tenant.service.compile(query_text)
        decision = budget_decision(entry, tenant, self.db.size())
        if not decision.admitted:
            tenant.service.record_rejected()
            return self._refuse(decision.reason,
                                {"bound": decision.bound})
        timeout_ms = payload.get("timeout_ms",
                                 self.config.default_timeout_ms)
        if not isinstance(timeout_ms, (int, float)) or timeout_ms < 0:
            raise HttpError(400, f'"timeout_ms" must be a non-negative '
                                 f'number, got {timeout_ms!r}')
        deadline = Deadline.after(timeout_ms / 1e3) if timeout_ms else None
        try:
            if template_name is not None:
                result = tenant.service.execute_template(
                    template_name, params, deadline=deadline)
            else:
                result = tenant.service.execute(query_text, params,
                                                deadline=deadline)
        except DeadlineExceeded as error:
            return json_response(504, {"error": str(error),
                                       "timeout_ms": timeout_ms})
        answers = sorted(result.answers, key=repr)
        body = {
            "answers": [list(answer) for answer in answers],
            "count": len(answers),
            "bounded": result.bounded,
            "plan_cached": result.plan_cached,
            "latency_ms": round(result.latency_ms, 3),
        }
        if decision.bound is not None:
            body["certified_fetch_bound"] = decision.bound
        if not result.bounded:
            body["fallback_reason"] = result.reason
        return json_response(200, body)

    # -- stats --------------------------------------------------------------

    def stats_payload(self) -> dict:
        tenants = {}
        for name, tenant in list(self.tenants.items()):
            stats = tenant.service.stats()
            tenants[name] = {
                "budget": tenant.budget,
                "requests": stats.requests,
                "bounded_requests": stats.bounded_requests,
                "fallback_requests": stats.fallback_requests,
                "shed_requests": stats.shed_requests,
                "rejected_requests": stats.rejected_requests,
                "deadline_exceeded_requests":
                    stats.deadline_exceeded_requests,
                "templates": stats.templates,
                "plan_cache_hits": stats.plan_cache.hits,
                "fetch_cache_hits": stats.fetch_cache.hits,
            }
        return {
            "tenants": tenants,
            "admission": {
                "inflight": self.admission.inflight,
                "max_inflight": self.admission.max_inflight,
                "admitted_total": self.admission.admitted_total,
                "shed_total": self.admission.shed_total,
            },
            "housekeeping": self.housekeeper.report(),
        }

    # -- the async loop ------------------------------------------------------

    async def _serve_client(self, reader: asyncio.StreamReader,
                            writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                try:
                    request = await read_request(reader)
                except HttpError as error:
                    writer.write(json_response(
                        error.status, {"error": error.message},
                        keep_alive=False))
                    await writer.drain()
                    break
                if request is None:
                    break
                # Heavy work (compile + execution) runs on the thread
                # pool; the admission gate fires here on the loop, so
                # overload sheds instead of queueing unboundedly.
                response = await asyncio.wrap_future(self.submit(request))
                writer.write(response)
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def start(self) -> asyncio.base_events.Server:
        return await asyncio.start_server(
            self._serve_client, self.config.host, self.config.port)

    def close(self) -> None:
        self._executor.shutdown(wait=True, cancel_futures=True)


async def run_forever(server: ReproServer, *,
                      ready: "asyncio.Event | None" = None) -> None:
    """Serve until SIGTERM/SIGINT, then drain gracefully: stop
    accepting, stop housekeeping, shut the executor down."""
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-main thread / platform without signal support
    listener = await server.start()
    housekeeping = asyncio.ensure_future(server.housekeeper.run(stop))
    if ready is not None:
        ready.set()
    try:
        await stop.wait()
    finally:
        stop.set()
        listener.close()
        await listener.wait_closed()
        await housekeeping
        server.close()
