"""The serving tier's single housekeeping loop.

One long-lived loop owns *all* periodic maintenance — fetch-cache
sweeps, stats flushes, storage peer health checks — instead of one
timer thread per concern.  Handlers register with a name and an
interval; the loop wakes for the earliest due handler, runs it (in the
server's executor, so a slow sweep never blocks the event loop), and
records per-handler run/error tallies.  One loop means one place to
observe, one thing to shut down, and no thundering herd of timers.

A handler that raises is logged in its error tally and *stays
scheduled* — housekeeping must survive a flapping dependency (a
storage backend mid-recovery, say) rather than silently dying on the
first exception.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass, field
from typing import Callable


@dataclass
class _Handler:
    name: str
    interval_s: float
    callback: Callable[[], object]
    next_due: float
    runs: int = 0
    errors: int = 0
    last_error: str = ""
    last_result: object = field(default=None, repr=False)


class Housekeeper:
    """Registered periodic handlers driven by one async loop."""

    #: Upper bound on one sleep, so a freshly registered handler is
    #: noticed promptly even when everything else is far from due.
    MAX_SLEEP_S = 1.0

    def __init__(self, clock: Callable[[], float] = time.monotonic):
        self._clock = clock
        self._handlers: dict[str, _Handler] = {}

    def register(self, name: str, interval_s: float,
                 callback: Callable[[], object]) -> None:
        if interval_s <= 0:
            raise ValueError(
                f"handler {name!r}: interval must be > 0, got {interval_s}")
        if name in self._handlers:
            raise ValueError(f"handler {name!r} is already registered")
        self._handlers[name] = _Handler(
            name=name, interval_s=interval_s, callback=callback,
            next_due=self._clock() + interval_s)

    def due_handlers(self, now: float | None = None) -> list[_Handler]:
        now = self._clock() if now is None else now
        return [handler for handler in self._handlers.values()
                if handler.next_due <= now]

    def run_due(self, now: float | None = None) -> int:
        """Run every due handler synchronously (the test/CLI surface;
        the server drives the same logic through :meth:`run`).  Returns
        the number of handlers run."""
        due = self.due_handlers(now)
        for handler in due:
            self._run_one(handler)
        return len(due)

    def _run_one(self, handler: _Handler) -> None:
        try:
            handler.last_result = handler.callback()
        except Exception as error:  # noqa: BLE001 - must survive anything
            handler.errors += 1
            handler.last_error = f"{type(error).__name__}: {error}"
        else:
            handler.runs += 1
        handler.next_due = self._clock() + handler.interval_s

    async def run(self, stop: asyncio.Event) -> None:
        """The loop: sleep until the earliest due handler (capped at
        :data:`MAX_SLEEP_S`), run due handlers off-loop, repeat until
        ``stop`` is set."""
        loop = asyncio.get_running_loop()
        while not stop.is_set():
            now = self._clock()
            due = self.due_handlers(now)
            for handler in due:
                await loop.run_in_executor(None, self._run_one, handler)
            next_due = min(
                (handler.next_due for handler in self._handlers.values()),
                default=now + self.MAX_SLEEP_S)
            delay = min(max(0.0, next_due - self._clock()),
                        self.MAX_SLEEP_S)
            try:
                await asyncio.wait_for(stop.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass

    def report(self) -> dict[str, dict]:
        """Per-handler tallies for ``/stats``."""
        return {
            handler.name: {
                "interval_s": handler.interval_s,
                "runs": handler.runs,
                "errors": handler.errors,
                "last_error": handler.last_error,
            }
            for handler in self._handlers.values()
        }
