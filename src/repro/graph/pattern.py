"""Graph pattern queries.

A pattern is a small labelled graph to be matched in a big data graph
via subgraph isomorphism (injective homomorphism).  Pattern nodes may be

* labelled variables ("some person"),
* *designated constants* — a concrete node id, like the "me" of
  Facebook Graph Search ("find me all my friends in NYC who like
  cycling", the paper's Section 1 example).

Designated constants are the graph analogue of instantiated parameters
(Section 5): they are what typically makes a pattern boundedly
evaluable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Iterable

from ..errors import QueryError


@dataclass(frozen=True)
class PatternNode:
    """One pattern node: a variable name, an optional required label and
    an optional designated constant node id."""

    name: str
    label: str | None = None
    constant: Hashable | None = None

    def __str__(self) -> str:
        parts = [self.name]
        if self.label is not None:
            parts.append(f":{self.label}")
        if self.constant is not None:
            parts.append(f"={self.constant!r}")
        return "".join(parts)


@dataclass(frozen=True)
class PatternEdge:
    """A required edge ``src --edge_label--> dst`` between pattern nodes."""

    src: str
    edge_label: str
    dst: str

    def __str__(self) -> str:
        return f"{self.src} -{self.edge_label}-> {self.dst}"


class Pattern:
    """A graph pattern with an output list (the nodes to report).

    >>> p = Pattern("friends",
    ...             [PatternNode("me", "person", constant=0),
    ...              PatternNode("f", "person")],
    ...             [PatternEdge("me", "friend", "f")],
    ...             output=("f",))
    >>> len(p.nodes)
    2
    """

    def __init__(self, name: str, nodes: Iterable[PatternNode],
                 edges: Iterable[PatternEdge],
                 output: Iterable[str] | None = None):
        self.name = name or "P"
        self.nodes: tuple[PatternNode, ...] = tuple(nodes)
        self.edges: tuple[PatternEdge, ...] = tuple(edges)
        names = [n.name for n in self.nodes]
        if len(set(names)) != len(names):
            raise QueryError(f"duplicate pattern node names in {self.name}")
        self._by_name = {n.name: n for n in self.nodes}
        for edge in self.edges:
            for endpoint in (edge.src, edge.dst):
                if endpoint not in self._by_name:
                    raise QueryError(
                        f"edge {edge} references unknown node {endpoint!r}")
        self.output: tuple[str, ...] = tuple(
            output if output is not None else names)
        for out in self.output:
            if out not in self._by_name:
                raise QueryError(f"output {out!r} is not a pattern node")

    def node(self, name: str) -> PatternNode:
        return self._by_name[name]

    def constants(self) -> list[PatternNode]:
        return [n for n in self.nodes if n.constant is not None]

    def edges_of(self, name: str) -> list[PatternEdge]:
        return [e for e in self.edges if name in (e.src, e.dst)]

    def size(self) -> int:
        return len(self.nodes) + len(self.edges)

    def __str__(self) -> str:
        nodes = ", ".join(str(n) for n in self.nodes)
        edges = ", ".join(str(e) for e in self.edges)
        return f"{self.name}[{nodes} | {edges}]"
