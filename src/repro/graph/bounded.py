"""Bounded graph-pattern matching (the graph analogue of Section 3).

A pattern is *covered* by a graph access schema when a bounded fetch
plan exists:

* every pattern node is reachable from a designated constant or a
  count-bounded label through degree-bounded edges (the analogue of the
  ``cov`` fixpoint), and
* every pattern edge is checkable through an adjacency index in at
  least one direction (the analogue of condition (c)).

``analyze_pattern`` computes the plan and its static candidate bound —
a product of label/degree bounds, independent of the graph size;
``bounded_match`` executes it, touching the graph only through index
lookups and counting every fetched node.  Agreement with the brute
matcher is property-tested (DESIGN.md invariant 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..errors import PlanError
from .access import GraphAccessSchema
from .graph import Graph
from .pattern import Pattern, PatternEdge


@dataclass(frozen=True)
class PlanStep:
    """One step of a bounded pattern plan.

    kinds: ``seed-const`` (bind a designated node), ``seed-label``
    (label-index fetch), ``expand`` (adjacency fetch covering a new
    node), ``verify`` (adjacency membership check for a residual edge).
    """

    kind: str
    node: str | None = None
    edge: PatternEdge | None = None
    direction: str | None = None
    bound: int = 1

    def __str__(self) -> str:
        if self.kind == "seed-const":
            return f"seed {self.node} from its designated constant"
        if self.kind == "seed-label":
            return f"seed {self.node} from its label index (<= {self.bound})"
        if self.kind == "expand":
            return (f"expand {self.edge} [{self.direction}] "
                    f"(<= {self.bound} per binding)")
        return f"verify {self.edge} [{self.direction}]"


@dataclass
class PatternCoverage:
    """Result of analysing one pattern against a graph access schema."""

    pattern: Pattern
    access: GraphAccessSchema
    steps: list[PlanStep]
    covered: set[str]
    uncovered: list[str]
    unverified_edges: list[PatternEdge]

    @property
    def is_covered(self) -> bool:
        return not self.uncovered and not self.unverified_edges

    def candidate_bound(self) -> int:
        """Static bound on bindings examined: the product of seed and
        expansion bounds (graph-size independent)."""
        bound = 1
        for step in self.steps:
            if step.kind in ("seed-label", "expand"):
                bound *= step.bound
        return bound

    def explain(self) -> str:
        lines = [f"pattern coverage of {self.pattern}"]
        lines += [f"  {step}" for step in self.steps]
        if self.is_covered:
            lines.append(f"  => covered; candidate bound "
                         f"{self.candidate_bound()}")
        else:
            if self.uncovered:
                lines.append(f"  => uncovered nodes: {self.uncovered}")
            if self.unverified_edges:
                lines.append(
                    "  => unverifiable edges: "
                    + ", ".join(str(e) for e in self.unverified_edges))
        return "\n".join(lines)


def analyze_pattern(pattern: Pattern,
                    access: GraphAccessSchema) -> PatternCoverage:
    """Compute a bounded fetch plan for a pattern, if one exists."""
    steps: list[PlanStep] = []
    covered: set[str] = set()
    expanded_edges: set[PatternEdge] = set()

    for node in pattern.constants():
        steps.append(PlanStep("seed-const", node=node.name))
        covered.add(node.name)

    def try_expand() -> bool:
        for edge in pattern.edges:
            src_node, dst_node = pattern.node(edge.src), pattern.node(edge.dst)
            if edge.src in covered and edge.dst not in covered:
                bound = access.degree_bound(src_node.label, edge.edge_label,
                                            "out")
                if bound is not None:
                    steps.append(PlanStep("expand", edge=edge,
                                          direction="out", bound=bound))
                    covered.add(edge.dst)
                    expanded_edges.add(edge)
                    return True
            if edge.dst in covered and edge.src not in covered:
                bound = access.degree_bound(dst_node.label, edge.edge_label,
                                            "in")
                if bound is not None:
                    steps.append(PlanStep("expand", edge=edge,
                                          direction="in", bound=bound))
                    covered.add(edge.src)
                    expanded_edges.add(edge)
                    return True
        return False

    def try_label_seed() -> bool:
        for node in pattern.nodes:
            if node.name in covered or node.label is None:
                continue
            bound = access.label_bound(node.label)
            if bound is not None:
                steps.append(PlanStep("seed-label", node=node.name,
                                      bound=bound))
                covered.add(node.name)
                return True
        return False

    progress = True
    while progress:
        progress = try_expand()
        if not progress:
            progress = try_label_seed()

    uncovered = [n.name for n in pattern.nodes if n.name not in covered]

    unverified: list[PatternEdge] = []
    for edge in pattern.edges:
        if edge in expanded_edges:
            continue  # The expansion fetch already pins this edge.
        if edge.src not in covered or edge.dst not in covered:
            unverified.append(edge)
            continue
        src_label = pattern.node(edge.src).label
        dst_label = pattern.node(edge.dst).label
        out_ok = access.degree_bound(src_label, edge.edge_label,
                                     "out") is not None
        in_ok = access.degree_bound(dst_label, edge.edge_label,
                                    "in") is not None
        if out_ok:
            steps.append(PlanStep("verify", edge=edge, direction="out",
                                  bound=access.degree_bound(
                                      src_label, edge.edge_label, "out")))
        elif in_ok:
            steps.append(PlanStep("verify", edge=edge, direction="in",
                                  bound=access.degree_bound(
                                      dst_label, edge.edge_label, "in")))
        else:
            unverified.append(edge)

    return PatternCoverage(pattern=pattern, access=access, steps=steps,
                           covered=covered, uncovered=uncovered,
                           unverified_edges=unverified)


@dataclass
class GraphAccessStats:
    """What bounded matching touched (the graph analogue of |D_Q|)."""

    index_lookups: int = 0
    nodes_fetched: int = 0
    bindings_peak: int = 0


def bounded_match(pattern: Pattern, graph: Graph,
                  access: GraphAccessSchema,
                  coverage: PatternCoverage | None = None,
                  injective: bool = True,
                  stats: GraphAccessStats | None = None) -> list[tuple]:
    """Execute the bounded plan of a covered pattern.

    Touches the graph only through the label and adjacency indexes;
    raises :class:`PlanError` when the pattern is not covered.
    """
    if coverage is None:
        coverage = analyze_pattern(pattern, access)
    if not coverage.is_covered:
        raise PlanError(f"pattern {pattern.name} is not covered: "
                        f"{coverage.explain()}")
    stats = stats if stats is not None else GraphAccessStats()

    bindings: list[dict[str, Hashable]] = [{}]
    for step in coverage.steps:
        if step.kind == "seed-const":
            node = pattern.node(step.node)
            if (not graph.has_node(node.constant)
                    or (node.label is not None
                        and graph.label_of(node.constant) != node.label)):
                return []
            for binding in bindings:
                binding[node.name] = node.constant
        elif step.kind == "seed-label":
            node = pattern.node(step.node)
            pool = graph.nodes_by_label(node.label)
            stats.index_lookups += 1
            stats.nodes_fetched += len(pool)
            bindings = [dict(b, **{node.name: candidate})
                        for b in bindings for candidate in pool]
        elif step.kind == "expand":
            edge = step.edge
            new_bindings = []
            for binding in bindings:
                if step.direction == "out":
                    anchor, fresh = edge.src, edge.dst
                    neighbors = graph.out_neighbors(binding[anchor],
                                                    edge.edge_label)
                else:
                    anchor, fresh = edge.dst, edge.src
                    neighbors = graph.in_neighbors(binding[anchor],
                                                   edge.edge_label)
                stats.index_lookups += 1
                stats.nodes_fetched += len(neighbors)
                wanted_label = pattern.node(fresh).label
                wanted_const = pattern.node(fresh).constant
                for candidate in neighbors:
                    if (wanted_label is not None
                            and graph.label_of(candidate) != wanted_label):
                        continue
                    if wanted_const is not None and candidate != wanted_const:
                        continue
                    new_bindings.append(dict(binding, **{fresh: candidate}))
            bindings = new_bindings
        else:  # verify
            edge = step.edge
            kept = []
            for binding in bindings:
                if step.direction == "out":
                    neighbors = graph.out_neighbors(binding[edge.src],
                                                    edge.edge_label)
                    hit = binding[edge.dst] in neighbors
                else:
                    neighbors = graph.in_neighbors(binding[edge.dst],
                                                   edge.edge_label)
                    hit = binding[edge.src] in neighbors
                stats.index_lookups += 1
                stats.nodes_fetched += len(neighbors)
                if hit:
                    kept.append(binding)
            bindings = kept
        stats.bindings_peak = max(stats.bindings_peak, len(bindings))
        if not bindings:
            return []

    results: set[tuple] = set()
    for binding in bindings:
        if injective and len(set(binding.values())) != len(binding):
            continue
        results.add(tuple(binding[name] for name in pattern.output))
    return sorted(results, key=repr)
