"""Baseline subgraph-isomorphism matcher (the expensive comparator).

A standard backtracking matcher in the VF2 spirit: pattern nodes are
matched in a connectivity-aware order; candidates for the first node of
each connected component come from a *full label scan* (or a scan of
all nodes when unlabelled).  Work is measured in candidate nodes
examined — the quantity bounded matching beats by orders of magnitude
on large graphs (Example 1.1: "4 orders of magnitude on average").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from .graph import Graph
from .pattern import Pattern, PatternEdge, PatternNode


@dataclass
class MatchStats:
    """Work accounting for a matcher run."""

    candidates_examined: int = 0
    edges_checked: int = 0
    nodes_scanned: int = 0


def _match_order(pattern: Pattern) -> list[PatternNode]:
    """Constants first, then connectivity-first expansion."""
    ordered: list[PatternNode] = []
    placed: set[str] = set()
    remaining = list(pattern.nodes)

    def adjacency(node: PatternNode) -> int:
        return sum(1 for e in pattern.edges_of(node.name)
                   if (e.src in placed) != (e.dst in placed)
                   or (e.src in placed and e.dst in placed))

    remaining.sort(key=lambda n: (n.constant is None, n.label is None,
                                  n.name))
    while remaining:
        connected = [n for n in remaining
                     if any(e.src in placed or e.dst in placed
                            for e in pattern.edges_of(n.name))]
        pool = connected or remaining
        best = min(pool, key=lambda n: (n.constant is None,
                                        n.label is None, n.name))
        remaining.remove(best)
        ordered.append(best)
        placed.add(best.name)
    return ordered


def subgraph_match(pattern: Pattern, graph: Graph,
                   stats: MatchStats | None = None,
                   injective: bool = True,
                   limit: int | None = None,
                   strategy: str = "walk") -> list[tuple]:
    """All matches of ``pattern`` in ``graph`` by brute backtracking.

    Returns output tuples (graph node ids in ``pattern.output`` order),
    deduplicated.  ``injective=True`` requires distinct pattern nodes to
    map to distinct graph nodes (subgraph isomorphism); ``False`` gives
    homomorphism semantics.

    ``strategy`` picks the candidate generator:

    * ``"walk"`` — edge-aware: once a neighbor is matched, candidates
      come from adjacency lists (a competent hand-tuned matcher);
    * ``"scan"`` — conventional: every pattern node draws candidates
      from a full label scan, the generic-subgraph-isomorphism behaviour
      the paper's 4-orders-of-magnitude comparison is made against.
    """
    stats = stats if stats is not None else MatchStats()
    order = _match_order(pattern)
    edge_index = {name: [] for name in (n.name for n in pattern.nodes)}
    placed_before: dict[str, list[PatternEdge]] = {}
    seen: set[str] = set()
    for node in order:
        placed_before[node.name] = [
            e for e in pattern.edges_of(node.name)
            if (e.src in seen or e.src == node.name)
            and (e.dst in seen or e.dst == node.name)
        ]
        seen.add(node.name)

    assignment: dict[str, Hashable] = {}
    used: set[Hashable] = set()
    results: set[tuple] = set()

    def candidates(node: PatternNode) -> list[Hashable]:
        if strategy == "walk":
            if node.constant is not None:
                return ([node.constant] if graph.has_node(node.constant)
                        else [])
            # Prefer walking an edge from an already-matched neighbor.
            for edge in pattern.edges_of(node.name):
                if edge.src == node.name and edge.dst in assignment:
                    return graph.in_neighbors(assignment[edge.dst],
                                              edge.edge_label)
                if edge.dst == node.name and edge.src in assignment:
                    return graph.out_neighbors(assignment[edge.src],
                                               edge.edge_label)
        # Conventional path: a label scan (or a full node scan).
        if node.label is not None:
            pool = graph.nodes_by_label(node.label)
        else:
            pool = list(graph.nodes())
        stats.nodes_scanned += len(pool)
        return pool

    def consistent(node: PatternNode, target: Hashable) -> bool:
        if node.label is not None and graph.label_of(target) != node.label:
            return False
        if node.constant is not None and target != node.constant:
            return False
        if injective and target in used:
            return False
        for edge in placed_before[node.name]:
            src = target if edge.src == node.name else assignment[edge.src]
            dst = target if edge.dst == node.name else assignment[edge.dst]
            stats.edges_checked += 1
            if not graph.has_edge(src, edge.edge_label, dst):
                return False
        return True

    def extend(index: int) -> bool:
        if index == len(order):
            results.add(tuple(assignment[name] for name in pattern.output))
            return limit is not None and len(results) >= limit
        node = order[index]
        for target in candidates(node):
            stats.candidates_examined += 1
            if not consistent(node, target):
                continue
            assignment[node.name] = target
            used.add(target)
            if extend(index + 1):
                return True
            del assignment[node.name]
            used.discard(target)
        return False

    extend(0)
    return sorted(results, key=repr)
