"""Graph access constraints: label counts and degree bounds.

The graph analogue of the relational access schema (Example 1.1 / [11]):

* :class:`LabelCountConstraint` — at most ``N`` nodes carry a label,
  and the label index retrieves them: the analogue of ``R(∅ -> Y, N)``.
* :class:`DegreeConstraint` — every node (optionally restricted to a
  node label) has at most ``N`` ``edge_label``-neighbors in the given
  direction, retrievable through the adjacency index: the analogue of
  ``R(X -> Y, N)``.

A :class:`GraphAccessSchema` bundles constraints and checks ``G |= A``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from ..errors import SchemaError
from .graph import Graph


@dataclass(frozen=True)
class LabelCountConstraint:
    """At most ``bound`` nodes carry ``label`` (with a label index)."""

    label: str
    bound: int

    def __post_init__(self):
        if self.bound < 1:
            raise SchemaError("label-count bound must be >= 1")

    def satisfied_by(self, graph: Graph) -> bool:
        return graph.label_count(self.label) <= self.bound

    def __str__(self) -> str:
        return f"count({self.label}) <= {self.bound}"


@dataclass(frozen=True)
class DegreeConstraint:
    """Each ``node_label`` node has at most ``bound`` ``edge_label``
    neighbors in ``direction`` ('out' or 'in'); ``node_label=None``
    applies to every node."""

    edge_label: str
    bound: int
    direction: str = "out"
    node_label: str | None = None

    def __post_init__(self):
        if self.direction not in ("out", "in"):
            raise SchemaError(f"direction must be 'out' or 'in', got "
                              f"{self.direction!r}")
        if self.bound < 1:
            raise SchemaError("degree bound must be >= 1")

    def applies_to(self, graph: Graph, node) -> bool:
        return (self.node_label is None
                or graph.label_of(node) == self.node_label)

    def degree(self, graph: Graph, node) -> int:
        if self.direction == "out":
            return graph.out_degree(node, self.edge_label)
        return graph.in_degree(node, self.edge_label)

    def neighbors(self, graph: Graph, node) -> list:
        if self.direction == "out":
            return graph.out_neighbors(node, self.edge_label)
        return graph.in_neighbors(node, self.edge_label)

    def satisfied_by(self, graph: Graph) -> bool:
        return all(self.degree(graph, node) <= self.bound
                   for node in graph.nodes()
                   if self.applies_to(graph, node))

    def __str__(self) -> str:
        scope = self.node_label or "*"
        return (f"deg_{self.direction}({scope}, {self.edge_label}) "
                f"<= {self.bound}")


class GraphAccessSchema:
    """A set of graph access constraints."""

    def __init__(self, constraints: Iterable = ()):
        self.label_counts: list[LabelCountConstraint] = []
        self.degrees: list[DegreeConstraint] = []
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint) -> None:
        if isinstance(constraint, LabelCountConstraint):
            self.label_counts.append(constraint)
        elif isinstance(constraint, DegreeConstraint):
            self.degrees.append(constraint)
        else:
            raise SchemaError(f"unknown graph constraint {constraint!r}")

    def label_bound(self, label: str) -> int | None:
        bounds = [c.bound for c in self.label_counts if c.label == label]
        return min(bounds, default=None)

    def degree_constraints(self, node_label: str | None, edge_label: str,
                           direction: str) -> list[DegreeConstraint]:
        """Constraints usable to expand from a node with ``node_label``
        over ``edge_label`` in ``direction`` (generic constraints apply
        to every label)."""
        return [
            c for c in self.degrees
            if c.edge_label == edge_label and c.direction == direction
            and (c.node_label is None or c.node_label == node_label)
        ]

    def degree_bound(self, node_label: str | None, edge_label: str,
                     direction: str) -> int | None:
        bounds = [c.bound for c in self.degree_constraints(
            node_label, edge_label, direction)]
        return min(bounds, default=None)

    def satisfied_by(self, graph: Graph) -> bool:
        return (all(c.satisfied_by(graph) for c in self.label_counts)
                and all(c.satisfied_by(graph) for c in self.degrees))

    def __iter__(self) -> Iterator:
        yield from self.label_counts
        yield from self.degrees

    def __len__(self) -> int:
        return len(self.label_counts) + len(self.degrees)

    def __str__(self) -> str:
        return "{" + "; ".join(str(c) for c in self) + "}"


def discover_graph_access_schema(graph: Graph, max_label_count: int = 64,
                                 max_degree: int = 512) -> GraphAccessSchema:
    """Discover label-count and degree constraints from a graph,
    mirroring relational constraint discovery (Example 1.1)."""
    schema = GraphAccessSchema()
    for label in graph.node_labels():
        count = graph.label_count(label)
        if count <= max_label_count:
            schema.add(LabelCountConstraint(label, count))
    for direction in ("out", "in"):
        for edge_label in graph.edge_labels():
            per_label: dict[str, int] = {}
            for node in graph.nodes():
                degree = (graph.out_degree(node, edge_label)
                          if direction == "out"
                          else graph.in_degree(node, edge_label))
                label = graph.label_of(node)
                per_label[label] = max(per_label.get(label, 0), degree)
            for label, degree in per_label.items():
                if 0 < degree <= max_degree:
                    schema.add(DegreeConstraint(edge_label, degree,
                                                direction, label))
    return schema
