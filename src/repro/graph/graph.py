"""A labelled directed graph store with adjacency and label indexes.

The substrate for the graph-pattern half of Example 1.1 ("60% of graph
pattern queries via subgraph isomorphism are boundedly evaluable under
simple access constraints", citing [11]).  Nodes carry one label; edges
carry one edge-label.  The store maintains

* a label index (label -> node ids) backing label-count access
  constraints, and
* adjacency indexes per edge label (both directions) backing degree
  access constraints,

so bounded pattern matching can touch the graph exclusively through
index lookups, mirroring the relational ``fetch``.
"""

from __future__ import annotations

from typing import Hashable, Iterator

from ..errors import SchemaError


class Graph:
    """A directed graph with node labels and edge labels.

    >>> g = Graph()
    >>> g.add_node(1, "person")
    >>> g.add_node(2, "city")
    >>> g.add_edge(1, "lives_in", 2)
    >>> g.out_neighbors(1, "lives_in")
    [2]
    """

    def __init__(self):
        self._labels: dict[Hashable, str] = {}
        self._by_label: dict[str, list[Hashable]] = {}
        self._out: dict[tuple[Hashable, str], list[Hashable]] = {}
        self._in: dict[tuple[Hashable, str], list[Hashable]] = {}
        self._edges: set[tuple[Hashable, str, Hashable]] = set()

    # -- construction -----------------------------------------------------------

    def add_node(self, node: Hashable, label: str) -> None:
        existing = self._labels.get(node)
        if existing is not None:
            if existing != label:
                raise SchemaError(
                    f"node {node!r} already has label {existing!r}")
            return
        self._labels[node] = label
        self._by_label.setdefault(label, []).append(node)

    def add_edge(self, src: Hashable, edge_label: str, dst: Hashable) -> None:
        if src not in self._labels or dst not in self._labels:
            raise SchemaError(
                f"edge ({src!r}, {edge_label!r}, {dst!r}) references an "
                "unknown node; add nodes first")
        key = (src, edge_label, dst)
        if key in self._edges:
            return
        self._edges.add(key)
        self._out.setdefault((src, edge_label), []).append(dst)
        self._in.setdefault((dst, edge_label), []).append(src)

    # -- reading ---------------------------------------------------------------

    def has_node(self, node: Hashable) -> bool:
        return node in self._labels

    def label_of(self, node: Hashable) -> str:
        return self._labels[node]

    def nodes(self) -> Iterator[Hashable]:
        return iter(self._labels)

    def nodes_by_label(self, label: str) -> list[Hashable]:
        """Index lookup: all nodes with a label (label-count constraint)."""
        return list(self._by_label.get(label, ()))

    def label_count(self, label: str) -> int:
        return len(self._by_label.get(label, ()))

    def out_neighbors(self, node: Hashable, edge_label: str) -> list[Hashable]:
        """Adjacency index lookup (degree constraint, out direction)."""
        return list(self._out.get((node, edge_label), ()))

    def in_neighbors(self, node: Hashable, edge_label: str) -> list[Hashable]:
        """Adjacency index lookup (degree constraint, in direction)."""
        return list(self._in.get((node, edge_label), ()))

    def out_degree(self, node: Hashable, edge_label: str) -> int:
        return len(self._out.get((node, edge_label), ()))

    def in_degree(self, node: Hashable, edge_label: str) -> int:
        return len(self._in.get((node, edge_label), ()))

    def has_edge(self, src: Hashable, edge_label: str, dst: Hashable) -> bool:
        return (src, edge_label, dst) in self._edges

    def edges(self) -> Iterator[tuple[Hashable, str, Hashable]]:
        return iter(self._edges)

    def num_nodes(self) -> int:
        return len(self._labels)

    def num_edges(self) -> int:
        return len(self._edges)

    def edge_labels(self) -> set[str]:
        return {label for _, label, _ in self._edges}

    def node_labels(self) -> set[str]:
        return set(self._by_label)

    def __str__(self) -> str:
        return (f"Graph({self.num_nodes()} nodes, {self.num_edges()} edges, "
                f"labels={sorted(self._by_label)})")
