"""Graph substrate: labelled graphs, graph access constraints, bounded
pattern matching and the brute-force baseline (Example 1.1 / [11])."""

from .access import (DegreeConstraint, GraphAccessSchema,
                     LabelCountConstraint, discover_graph_access_schema)
from .bounded import (GraphAccessStats, PatternCoverage, PlanStep,
                      analyze_pattern, bounded_match)
from .graph import Graph
from .matcher import MatchStats, subgraph_match
from .pattern import Pattern, PatternEdge, PatternNode

__all__ = [
    "Graph",
    "Pattern", "PatternNode", "PatternEdge",
    "LabelCountConstraint", "DegreeConstraint", "GraphAccessSchema",
    "discover_graph_access_schema",
    "analyze_pattern", "bounded_match", "PatternCoverage", "PlanStep",
    "GraphAccessStats",
    "subgraph_match", "MatchStats",
]
