"""``python -m repro.obs`` — the exposition validator CLI.

Lives here (rather than running ``repro.obs.export`` directly) so the
module executed is not one the package ``__init__`` already imported,
which would trip runpy's double-import warning.
"""

from .export import main

raise SystemExit(main())
