"""End-to-end observability: metrics, per-query tracing, exporters.

The paper's headline claim — work proportional to ``|D_Q|``, not
``|D|`` — is only demonstrable if the runtime can show *where* a
query's time and accesses go.  This package is that surface:

* :mod:`~repro.obs.metrics` — a thread-safe registry of counters,
  gauges and fixed-bucket latency histograms (p50/p95/p99 without
  keeping unbounded per-request lists);
* :mod:`~repro.obs.trace` — structured per-query tracing: ``span``
  context managers produce a trace tree over the pipeline stages
  ``compile → bep_decision → optimize → bind → execute → fetch →
  wal_append/wal_fsync/snapshot``.  Disabled by default via a shared
  no-op span, so the un-traced hot path pays one global read per stage;
* :mod:`~repro.obs.export` — Prometheus-style text exposition and a
  JSON-lines trace dump (plus a parser/validator CI smoke-checks with);
* :mod:`~repro.obs.instruments` — the pre-built instrument bundles the
  service, the CLI and the benchmark harness share, so metric *names*
  are defined once (see README, "Observability").

The package imports nothing from the rest of ``repro`` — every layer
(parser, core, engine, storage, service, CLI) may instrument itself
without creating an import cycle.
"""

from .export import (parse_exposition, render_exposition,
                     validate_exposition)
from .instruments import (RequestMetrics, attach_cache_collector,
                          attach_database_collector,
                          attach_storage_collector)
from .metrics import (Counter, Gauge, Histogram, LATENCY_BUCKETS,
                      MetricsRegistry)
from .trace import NULL_SPAN, Span, Tracer, annotate, current_tracer, span

__all__ = [
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "LATENCY_BUCKETS",
    "Tracer", "Span", "span", "annotate", "current_tracer", "NULL_SPAN",
    "render_exposition", "parse_exposition", "validate_exposition",
    "RequestMetrics", "attach_cache_collector", "attach_storage_collector",
    "attach_database_collector",
]
