"""Exporters: Prometheus-style text exposition, plus its validator.

:func:`render_exposition` walks a
:class:`~repro.obs.metrics.MetricsRegistry` and emits the Prometheus
text format (``# HELP`` / ``# TYPE`` headers, ``name{labels} value``
samples, histogram ``_bucket``/``_sum``/``_count`` expansion).

:func:`parse_exposition` / :func:`validate_exposition` read it back —
that is what the CI metrics-smoke step and the integration tests use
to prove the exposition actually parses and carries the required
metric names, instead of eyeballing text.

Run as a module for the CI check::

    python -m repro.obs.export --check metrics.prom \
        --require repro_requests_total,repro_request_latency_seconds
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Iterable

from .metrics import Histogram, MetricsRegistry

_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape(value: str) -> str:
    return "".join(_ESCAPES.get(ch, ch) for ch in str(value))


def _format_value(value) -> str:
    if isinstance(value, float):
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _labels_text(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(f'{key}="{_escape(value)}"'
                    for key, value in sorted(labels.items()))
    return "{" + body + "}"


def render_exposition(registry: MetricsRegistry) -> str:
    """The registry as Prometheus text exposition (format 0.0.4)."""
    lines: list[str] = []
    for instrument in registry.instruments():
        name = instrument.name
        if instrument.help:
            lines.append(f"# HELP {name} {_escape(instrument.help)}")
        lines.append(f"# TYPE {name} {instrument.kind}")
        if isinstance(instrument, Histogram):
            for bound, cumulative in instrument.bucket_counts():
                le = _format_value(float(bound))
                lines.append(f'{name}_bucket{{le="{le}"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(instrument.sum)}")
            lines.append(f"{name}_count {instrument.count}")
            continue
        for labels, value in instrument.samples():
            lines.append(
                f"{name}{_labels_text(labels)} {_format_value(value)}")
    return "\n".join(lines) + "\n"


def parse_exposition(text: str) -> dict[str, dict]:
    """Parse exposition text into ``{family: {"type": kind,
    "samples": {sample_key: value}}}``.

    ``sample_key`` is the sample name plus its literal label block
    (e.g. ``latency_seconds_bucket{le="0.01"}``).  Histogram samples
    are grouped under their family name.  Raises ``ValueError`` on any
    malformed line — the validator leans on that.
    """
    families: dict[str, dict] = {}

    def family_for(sample_name: str) -> dict:
        for suffix in ("_bucket", "_sum", "_count"):
            base = sample_name[:-len(suffix)] \
                if sample_name.endswith(suffix) else None
            if base and families.get(base, {}).get("type") == "histogram":
                return families[base]
        return families.setdefault(sample_name,
                                   {"type": "untyped", "samples": {}})

    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                raise ValueError(f"line {lineno}: malformed TYPE: {raw!r}")
            _, _, name, kind = parts
            family = families.setdefault(name,
                                         {"type": kind, "samples": {}})
            family["type"] = kind
            continue
        if line.startswith("#"):
            continue
        if "{" in line:
            name = line[:line.index("{")]
            close = line.rindex("}")
            if close < line.index("{"):
                raise ValueError(f"line {lineno}: unbalanced labels: "
                                 f"{raw!r}")
            key = line[:close + 1]
            value_text = line[close + 1:].strip()
        else:
            parts = line.split()
            if len(parts) != 2:
                raise ValueError(
                    f"line {lineno}: expected 'name value': {raw!r}")
            name, value_text = parts
            key = name
        try:
            value = float(value_text)
        except ValueError as error:
            raise ValueError(f"line {lineno}: bad sample value "
                             f"{value_text!r}") from error
        family_for(name)["samples"][key] = value
    return families


def validate_exposition(text: str,
                        required: Iterable[str] = ()) -> list[str]:
    """Problems with an exposition document: parse errors, required
    families missing, or histogram families with no samples.  Empty
    list = valid."""
    try:
        families = parse_exposition(text)
    except ValueError as error:
        return [f"exposition does not parse: {error}"]
    problems = []
    for name in required:
        family = families.get(name)
        if family is None:
            problems.append(f"required metric {name!r} is missing")
        elif not family["samples"]:
            problems.append(f"required metric {name!r} has no samples")
    return problems


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.export",
        description="validate a Prometheus-style exposition file")
    parser.add_argument("--check", required=True,
                        help="exposition file to validate")
    parser.add_argument("--require", default="",
                        help="comma-separated metric families that must "
                             "be present with samples")
    args = parser.parse_args(argv)
    try:
        with open(args.check) as handle:
            text = handle.read()
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    required = [name for name in args.require.split(",") if name]
    problems = validate_exposition(text, required)
    for problem in problems:
        print(f"INVALID: {problem}", file=sys.stderr)
    if problems:
        return 1
    families = parse_exposition(text)
    samples = sum(len(family["samples"]) for family in families.values())
    print(f"ok: {len(families)} metric families, {samples} samples"
          + (f", {len(required)} required present" if required else ""))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
