"""The pre-built instrument bundles the rest of the repo shares.

Metric *names* are defined once, here (and cataloged in README,
"Observability") — the service, the CLI and the benchmark harness all
pull the same bundle so an exposition from any of them lines up.

Everything in this module is duck-typed on purpose: ``repro.obs``
imports nothing from the rest of the package, so the collectors take
"anything with a ``counters()``" / "anything with ``plan_cache`` and
``fetch_cache``" rather than the concrete service/storage classes.
"""

from __future__ import annotations

from .metrics import MetricsRegistry


class RequestMetrics:
    """The per-request instruments :class:`~repro.service.service.
    BoundedQueryService` updates on its hot path.

    All instruments are resolved once at construction; ``observe`` then
    touches them directly — no registry lookups per request.
    """

    def __init__(self, registry: MetricsRegistry):
        self.registry = registry
        self.requests = registry.counter(
            "repro_requests_total", "Requests served")
        self.bounded = registry.counter(
            "repro_bounded_requests_total",
            "Requests served by a certified bounded plan")
        self.fallback = registry.counter(
            "repro_fallback_requests_total",
            "Requests served by the scan fallback")
        self.plan_cached = registry.counter(
            "repro_plan_cached_requests_total",
            "Requests whose static pipeline was already compiled")
        self.latency = registry.histogram(
            "repro_request_latency_seconds",
            "End-to-end request latency")
        self.fetch_calls = registry.counter(
            "repro_fetch_calls_total",
            "Vectorized storage crossings by bounded plans")
        self.index_lookups = registry.counter(
            "repro_index_lookups_total",
            "Per-X index lookups by bounded plans")
        self.tuples_fetched = registry.counter(
            "repro_tuples_fetched_total",
            "Tuples read from storage (the empirical |D_Q|)")
        self.tuples_from_cache = registry.counter(
            "repro_tuples_from_cache_total",
            "Tuples served from the fetch cache")
        self.scan_tuples = registry.counter(
            "repro_scan_tuples_total",
            "Tuples scanned by fallback evaluation (the |D| price)")
        self.executor_ops = registry.counter(
            "repro_executor_ops_total",
            "Physical operator batches executed", label_names=("op",))

    def observe(self, result) -> None:
        """Fold one ``ServiceResult``-shaped outcome into the bundle."""
        self.requests.inc()
        self.latency.observe(result.latency_s)
        if result.plan_cached:
            self.plan_cached.inc()
        if result.bounded:
            self.bounded.inc()
        else:
            self.fallback.inc()
        stats = result.stats
        if stats is not None:
            self.fetch_calls.inc(stats.fetch_calls)
            self.index_lookups.inc(stats.index_lookups)
            self.tuples_fetched.inc(stats.tuples_fetched)
            self.tuples_from_cache.inc(stats.tuples_from_cache)
            for op, count in getattr(stats, "op_counts", {}).items():
                self.executor_ops.labels(op=op).inc(count)
        scan = result.scan_stats
        if scan is not None:
            self.scan_tuples.inc(scan.tuples_scanned)


def _cache_instruments(registry: MetricsRegistry, which: str):
    prefix = f"repro_{which}_cache"
    return (
        registry.counter(f"{prefix}_hits_total", f"{which} cache hits"),
        registry.counter(f"{prefix}_misses_total",
                         f"{which} cache misses"),
        registry.counter(f"{prefix}_evictions_total",
                         f"{which} cache evictions"),
        registry.gauge(f"{prefix}_size", f"{which} cache live entries"),
        registry.gauge(f"{prefix}_hit_rate",
                       f"{which} cache lifetime hit rate"),
    )


def attach_cache_collector(registry: MetricsRegistry, service) -> None:
    """Mirror a service's plan/fetch cache counters at snapshot time.

    ``service`` needs ``plan_cache.info()`` and ``fetch_cache.info()``
    returning :class:`~repro.service.plancache.CacheInfo`-shaped
    objects.  The caches keep their own tallies; this collector copies
    them into the registry only when an export reads it, so cache
    operations never touch the registry.
    """
    plan = _cache_instruments(registry, "plan")
    fetch = _cache_instruments(registry, "fetch")
    answer = _cache_instruments(registry, "answer")
    # Fetch-cache hits split by entry family: encoded column views
    # (the columnar path, no re-encoding on a warm hit) vs legacy row
    # lists — the ratio shows how much traffic runs columnar.
    encoded_hits = registry.counter(
        "repro_fetch_cache_encoded_hits_total",
        "fetch cache hits served as encoded column views")
    legacy_hits = registry.counter(
        "repro_fetch_cache_legacy_hits_total",
        "fetch cache hits served as decoded row lists")
    # Incremental-maintenance outcomes: deltas applied in place vs
    # deltas that fell back to invalidation.  A healthy write-heavy
    # workload shows maintained ≫ fallbacks; fallbacks climbing means
    # wipes (clear/reattach/recovery) or stream gaps are eating the
    # cache's warmth.
    maintained_deltas = registry.counter(
        "repro_fetch_cache_maintained_deltas_total",
        "write deltas applied to cached fetch entries in place")
    maintained_entries = registry.counter(
        "repro_fetch_cache_maintained_entries_total",
        "cached fetch entries updated in place by deltas")
    fallbacks = registry.counter(
        "repro_fetch_cache_maintenance_fallbacks_total",
        "write deltas that fell back to invalidation")
    invalidations = registry.counter(
        "repro_fetch_cache_maintenance_invalidations_total",
        "cached fetch entries dropped by maintenance fallbacks")
    answer_maintained = registry.counter(
        "repro_answer_cache_maintained_entries_total",
        "cached answer sets validated past an unobservable write")
    answer_invalidations = registry.counter(
        "repro_answer_cache_maintenance_invalidations_total",
        "cached answer sets dropped by write maintenance")

    def collect() -> None:
        for instruments, info in ((plan, service.plan_cache.info()),
                                  (fetch, service.fetch_cache.info())):
            hits, misses, evictions, size, rate = instruments
            hits.set_total(info.hits)
            misses.set_total(info.misses)
            evictions.set_total(info.evictions)
            size.set(info.size)
            rate.set(round(info.hit_rate, 6))
        fetch_cache = service.fetch_cache
        encoded_hits.set_total(getattr(fetch_cache, "encoded_hits", 0))
        legacy_hits.set_total(getattr(fetch_cache, "legacy_hits", 0))
        maintained_deltas.set_total(
            getattr(fetch_cache, "maintained_deltas", 0))
        maintained_entries.set_total(
            getattr(fetch_cache, "maintained_entries", 0))
        fallbacks.set_total(
            getattr(fetch_cache, "maintenance_fallbacks", 0))
        invalidations.set_total(
            getattr(fetch_cache, "maintenance_invalidations", 0))
        answer_cache = getattr(service, "answer_cache", None)
        if answer_cache is not None:
            info = answer_cache.info()
            hits, misses, evictions, size, rate = answer
            hits.set_total(info.hits)
            misses.set_total(info.misses)
            evictions.set_total(info.evictions)
            size.set(info.size)
            rate.set(round(info.hit_rate, 6))
            answer_maintained.set_total(answer_cache.maintained_entries)
            answer_invalidations.set_total(
                answer_cache.maintenance_invalidations)

    registry.register_collector(collect)


def attach_admission_collector(registry: MetricsRegistry, service) -> None:
    """Mirror a service's admission-control outcomes at snapshot time.

    ``service.stats()`` must carry ``shed_requests`` (admission queue
    full → 429), ``rejected_requests`` (certified cost bound over the
    tenant budget → 429, before execution) and
    ``deadline_exceeded_requests`` (aborted mid-flight → 504).  One
    collector per service; the serving tier attaches it for every
    tenant against the same registry only when tenants get distinct
    services *and* registries — the shared-registry arrangement
    aggregates through a single wrapper instead.
    """
    shed = registry.counter(
        "repro_shed_requests_total",
        "Requests shed because the admission queue was full")
    rejected = registry.counter(
        "repro_rejected_requests_total",
        "Requests rejected because the certified bound exceeded the "
        "tenant budget")
    deadline_exceeded = registry.counter(
        "repro_deadline_exceeded_requests_total",
        "Requests aborted by an expired deadline")

    def collect() -> None:
        stats = service.stats()
        shed.set_total(stats.shed_requests)
        rejected.set_total(stats.rejected_requests)
        deadline_exceeded.set_total(stats.deadline_exceeded_requests)

    registry.register_collector(collect)


def attach_storage_collector(registry: MetricsRegistry, backend) -> None:
    """Mirror a storage backend's internal counters at snapshot time.

    ``backend.counters()`` returns a flat ``name -> number`` dict (the
    :class:`~repro.storage.backend.StorageBackend` default is empty;
    ``DiskBackend`` reports WAL/fsync/snapshot/recovery tallies;
    ``ProcessShardedBackend`` adds RPC and replication tallies).  Keys
    become ``repro_storage_<key>``; instruments are created lazily on
    first sight of each key so the collector works for any backend.

    Backends may additionally expose point-in-time levels via a
    ``gauges()`` dict (``dictionary_bytes``, live worker counts, ...)
    — mirrored the same way — and engine-owned histograms via
    ``histograms()`` (e.g. RPC round trips), which are *adopted* into
    the registry as-is so the engine keeps its lock-cheap hot path.
    """
    cache: dict[str, object] = {}
    for histogram in getattr(backend, "histograms", lambda: [])():
        registry.register_instrument(histogram)

    def collect() -> None:
        for key, value in backend.counters().items():
            counter = cache.get(key)
            if counter is None:
                counter = registry.counter(f"repro_storage_{key}")
                cache[key] = counter
            counter.set_total(round(value, 6)
                              if isinstance(value, float) else value)
        for key, value in getattr(backend, "gauges", dict)().items():
            gauge = cache.get("gauge:" + key)
            if gauge is None:
                gauge = registry.gauge(f"repro_storage_{key}")
                cache["gauge:" + key] = gauge
            gauge.set(value)

    registry.register_collector(collect)


def attach_database_collector(registry: MetricsRegistry, db) -> None:
    """Mirror instance-level sizes (``|D|``, relation count) at
    snapshot time.  ``db`` needs ``size()`` and ``summary()``."""
    rows = registry.gauge("repro_db_rows", "Total tuples in the instance")
    relations = registry.gauge("repro_db_relations",
                               "Relations in the schema")

    def collect() -> None:
        summary = db.summary()
        rows.set(sum(summary.values()))
        relations.set(len(summary))

    registry.register_collector(collect)
