"""Structured per-query tracing with a near-free disabled path.

Instrumented code wraps each pipeline stage in ``with span("name"):``.
When no :class:`Tracer` is active — the default — ``span()`` returns
one shared no-op context manager, so the cost per stage is a global
read, a function call and two no-op methods; nothing is allocated and
nothing is recorded.  That is what keeps tracing off the warm hot path
(the EXP-8 <2% regression gate).

When a tracer *is* active (``with Tracer() as t:``), spans nest via a
per-thread stack: the first span a thread opens becomes a **root**,
inner spans become its children, and a finished root is appended to
the tracer.  Concurrent batch workers therefore each contribute their
own root trees — activation is process-wide, nesting is per-thread.

The stage vocabulary used across the repo (see README,
"Observability")::

    request                 one served query (service or CLI)
      compile               parse + normalize (repro.query.parser)
      bep_decision          the coverage/boundedness verdict (repro.core.bep)
      optimize              logical -> physical (repro.engine.optimizer)
      bind                  per-request constant substitution (service)
        specialize          plan -> per-op closures + constant codes
                            (repro.engine.optimizer.specialize; also
                            fires under execute on first direct runs)
      execute               physical-plan execution (repro.engine.executor)
        fetch               one vectorized storage crossing
        decode              final batch codes -> Python values
    encode                  bulk row encoding at index (re)build
                            (repro.storage.backend)
    wal_append / wal_fsync / snapshot / recover   (repro.storage.disk)
"""

from __future__ import annotations

import json
import threading
import time
from typing import Iterator

from .metrics import merge_counts


class Span:
    """One finished (or in-flight) stage of a trace tree."""

    __slots__ = ("name", "start_s", "end_s", "attrs", "children")

    def __init__(self, name: str, start_s: float):
        self.name = name
        self.start_s = start_s
        self.end_s = start_s
        self.attrs: dict = {}
        self.children: list[Span] = []

    @property
    def duration_s(self) -> float:
        return self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1e3

    def walk(self) -> Iterator["Span"]:
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.walk()

    def find(self, name: str) -> "Span | None":
        """The first descendant (or self) with ``name``."""
        for node in self.walk():
            if node.name == name:
                return node
        return None

    def to_dict(self, epoch_s: float | None = None) -> dict:
        """A JSON-ready tree; times become ms offsets from
        ``epoch_s`` (default: this span's own start)."""
        epoch = self.start_s if epoch_s is None else epoch_s
        node: dict = {
            "name": self.name,
            "start_ms": round((self.start_s - epoch) * 1e3, 4),
            "duration_ms": round(self.duration_ms, 4),
        }
        if self.attrs:
            node["attrs"] = self.attrs
        if self.children:
            node["children"] = [child.to_dict(epoch)
                                for child in self.children]
        return node

    def render(self, indent: int = 0) -> str:
        """A human-readable tree (the CLI's ``--trace`` summary)."""
        attrs = ""
        if self.attrs:
            attrs = "  " + " ".join(f"{k}={v}"
                                    for k, v in sorted(self.attrs.items()))
        lines = [f"{'  ' * indent}{self.name:<14} "
                 f"{self.duration_ms:9.3f}ms{attrs}"]
        for child in self.children:
            lines.append(child.render(indent + 1))
        return "\n".join(lines)


class _NullSpan:
    """The shared disabled-path context manager: does nothing."""

    __slots__ = ()

    def __enter__(self):
        return self

    def __exit__(self, *exc):
        return False


NULL_SPAN = _NullSpan()

#: Process-wide active tracer (None = tracing disabled).
_active: "Tracer | None" = None
_activation_lock = threading.Lock()
_tls = threading.local()


def current_tracer() -> "Tracer | None":
    return _active


class _SpanContext:
    """The enabled-path context manager: push on enter, pop + record
    on exit.  Exceptions propagate; the span still closes (its
    ``error`` attr marks the failure) so trees stay well-formed."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict):
        self._tracer = tracer
        span_ = Span(name, time.perf_counter())
        if attrs:
            span_.attrs.update(attrs)
        self._span = span_

    def __enter__(self) -> Span:
        stack = getattr(_tls, "stack", None)
        if stack is None:
            stack = _tls.stack = []
        stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb):
        span_ = self._span
        span_.end_s = time.perf_counter()
        if exc_type is not None:
            span_.attrs["error"] = exc_type.__name__
        stack = _tls.stack
        stack.pop()
        if stack:
            stack[-1].children.append(span_)
        else:
            self._tracer._record_root(span_)
        return False


def span(name: str, **attrs):
    """The instrumentation entry point: a context manager recording
    one stage when a tracer is active, :data:`NULL_SPAN` otherwise."""
    tracer = _active
    if tracer is None:
        return NULL_SPAN
    return _SpanContext(tracer, name, attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost open span, if any."""
    if _active is None:
        return
    stack = getattr(_tls, "stack", None)
    if stack:
        stack[-1].attrs.update(attrs)


class Tracer:
    """Collects finished root spans while active.

    >>> with Tracer() as tracer:
    ...     with span("request"):
    ...         with span("compile"):
    ...             pass
    >>> [root.name for root in tracer.roots]
    ['request']
    >>> [child.name for child in tracer.roots[0].children]
    ['compile']
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._roots: list[Span] = []
        self.epoch_s: float | None = None

    # -- activation --------------------------------------------------------

    def __enter__(self) -> "Tracer":
        global _active
        with _activation_lock:
            if _active is not None:
                raise RuntimeError(
                    "another Tracer is already active; tracing is "
                    "process-wide — finish it first")
            self.epoch_s = time.perf_counter()
            _active = self
        return self

    def __exit__(self, *exc):
        global _active
        with _activation_lock:
            if _active is self:
                _active = None
        return False

    # -- recording ---------------------------------------------------------

    def _record_root(self, root: Span) -> None:
        with self._lock:
            self._roots.append(root)

    @property
    def roots(self) -> list[Span]:
        with self._lock:
            return list(self._roots)

    def find(self, name: str) -> Span | None:
        for root in self.roots:
            found = root.find(name)
            if found is not None:
                return found
        return None

    def stage_totals(self) -> dict[str, float]:
        """Total seconds per stage name across every recorded tree."""
        totals: dict[str, float] = {}
        for root in self.roots:
            merge_counts(totals,
                         ((node.name, node.duration_s)
                          for node in root.walk()))
        return totals

    # -- export ------------------------------------------------------------

    def to_dicts(self) -> list[dict]:
        epoch = self.epoch_s
        return [root.to_dict(epoch) for root in self.roots]

    def write_jsonl(self, path) -> int:
        """One JSON object per root span tree; returns the root count."""
        trees = self.to_dicts()
        with open(path, "w") as out:
            for tree in trees:
                out.write(json.dumps(tree, sort_keys=True,
                                     default=str) + "\n")
        return len(trees)

    def render(self, limit: int = 20) -> str:
        roots = self.roots
        lines = [root.render() for root in roots[:limit]]
        if len(roots) > limit:
            lines.append(f"... {len(roots) - limit} more root span(s)")
        return "\n".join(lines)
