"""A thread-safe metrics registry: counters, gauges, histograms.

One :class:`MetricsRegistry` holds named instruments; callers get (or
re-get — registration is idempotent) an instrument once and update it
on the hot path without touching the registry again.  The registry is
what exporters walk (:func:`repro.obs.export.render_exposition`) and
what the benchmark harness embeds into ``BENCH_*.json``.

Instruments:

* :class:`Counter` — monotonic; optional label support via
  :meth:`Counter.labels` for low-cardinality breakdowns (e.g. the
  executor's per-op batch counts);
* :class:`Gauge` — last-write-wins point-in-time values (cache sizes);
* :class:`Histogram` — fixed upper-bound buckets with an exact running
  sum/count, so p50/p95/p99 come from bucket interpolation instead of
  an unbounded list of raw latencies (what
  :class:`~repro.service.batch.BatchReport` used to keep).

Collectors registered with :meth:`MetricsRegistry.register_collector`
run at snapshot time; they pull numbers that live elsewhere (cache
info structs, storage-engine counters) into instruments just before an
export reads them, so the owning code never pays per-operation
registry work.

Naming follows the Prometheus conventions the trajectory gate's
classifier already understands: ``*_total`` for counters, a
``seconds`` token for durations, a ``rate`` token for ratios.
"""

from __future__ import annotations

import bisect
import re
import threading
from typing import Callable, Iterable, Mapping, Sequence

#: Default latency buckets (seconds): 50us .. 10s, log-ish spaced.
#: The top bucket is +inf, implicitly.
LATENCY_BUCKETS: tuple[float, ...] = (
    0.00005, 0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _check_name(name: str) -> str:
    if not _NAME_RE.match(name):
        raise ValueError(
            f"invalid metric name {name!r}; use [a-zA-Z_:][a-zA-Z0-9_:]*")
    return name


class Counter:
    """A monotonically increasing count.

    >>> c = Counter("requests_total")
    >>> c.inc(); c.inc(2); c.value
    3
    """

    kind = "counter"

    def __init__(self, name: str, help_: str = "",
                 label_names: Sequence[str] = ()):
        self.name = _check_name(name)
        self.help = help_
        for label in label_names:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.label_names = tuple(label_names)
        self._lock = threading.Lock()
        self._value = 0
        # label-values tuple -> child Counter (only when label_names).
        self._children: dict[tuple, Counter] = {}

    def inc(self, amount: int | float = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up; use a Gauge")
        with self._lock:
            self._value += amount

    def set_total(self, value: int | float) -> None:
        """Overwrite the running total — for *collectors* mirroring a
        monotonic count kept elsewhere (e.g. a storage engine's
        internal tallies), never for hot-path code."""
        with self._lock:
            self._value = value

    @property
    def value(self):
        with self._lock:
            return self._value

    def labels(self, **labels: str) -> "Counter":
        """The child counter for one label-value combination."""
        if set(labels) != set(self.label_names):
            raise ValueError(
                f"{self.name} expects labels {self.label_names}, "
                f"got {tuple(sorted(labels))}")
        key = tuple(str(labels[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Counter(self.name, self.help)
                self._children[key] = child
            return child

    def samples(self) -> list[tuple[dict, int | float]]:
        """``(labels, value)`` pairs — one unlabeled pair, or one per
        observed label combination."""
        with self._lock:
            if not self.label_names:
                return [({}, self._value)]
            return [(dict(zip(self.label_names, key)), child.value)
                    for key, child in sorted(self._children.items())]


class Gauge:
    """A point-in-time value: set, add, or subtract."""

    kind = "gauge"

    def __init__(self, name: str, help_: str = ""):
        self.name = _check_name(name)
        self.help = help_
        self.label_names: tuple[str, ...] = ()
        self._lock = threading.Lock()
        self._value: int | float = 0

    def set(self, value: int | float) -> None:
        with self._lock:
            self._value = value

    def add(self, amount: int | float) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self):
        with self._lock:
            return self._value

    def samples(self) -> list[tuple[dict, int | float]]:
        return [({}, self.value)]


class Histogram:
    """Fixed-bucket distribution with exact sum/count.

    Buckets are cumulative upper bounds (Prometheus ``le`` semantics);
    an implicit +inf bucket catches the tail.  Quantiles interpolate
    linearly inside the containing bucket — a bounded-memory estimate,
    documented as such wherever it replaces exact nearest-rank math.

    >>> h = Histogram("latency_seconds", buckets=(0.1, 1.0))
    >>> for v in (0.05, 0.05, 0.5, 2.0): h.observe(v)
    >>> h.count, round(h.sum, 2)
    (4, 2.6)
    """

    kind = "histogram"

    def __init__(self, name: str, help_: str = "",
                 buckets: Sequence[float] = LATENCY_BUCKETS):
        self.name = _check_name(name)
        self.help = help_
        self.label_names: tuple[str, ...] = ()
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("a histogram needs at least one bucket bound")
        self.bounds = bounds
        self._lock = threading.Lock()
        self._counts = [0] * (len(bounds) + 1)  # +1: the +inf bucket
        self._sum = 0.0
        self._count = 0

    def observe(self, value: float) -> None:
        position = bisect.bisect_left(self.bounds, value)
        with self._lock:
            self._counts[position] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    @property
    def mean(self) -> float:
        with self._lock:
            return self._sum / self._count if self._count else 0.0

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, ending at +inf."""
        with self._lock:
            counts = list(self._counts)
        out = []
        running = 0
        for bound, count in zip(self.bounds, counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def quantile(self, q: float) -> float:
        """The estimated q-quantile (q in [0, 1]), interpolated within
        the containing bucket; 0.0 when empty.  Values beyond the last
        finite bound clamp to it (the +inf bucket has no width)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        with self._lock:
            counts = list(self._counts)
            total = self._count
        if not total:
            return 0.0
        target = q * total
        running = 0.0
        lower = 0.0
        for bound, count in zip(self.bounds, counts):
            if running + count >= target and count:
                fraction = (target - running) / count
                return lower + (bound - lower) * max(0.0, fraction)
            running += count
            lower = bound
        return self.bounds[-1]

    @property
    def p50(self) -> float:
        return self.quantile(0.50)

    @property
    def p95(self) -> float:
        return self.quantile(0.95)

    @property
    def p99(self) -> float:
        return self.quantile(0.99)


class MetricsRegistry:
    """A named set of instruments plus snapshot-time collectors.

    Registration is idempotent by name; re-registering with a
    different instrument kind (or different labels/buckets) is a
    programming error and raises.

    >>> registry = MetricsRegistry()
    >>> registry.counter("requests_total").inc()
    >>> registry.counter("requests_total").value
    1
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._instruments: dict[str, Counter | Gauge | Histogram] = {}
        self._collectors: list[Callable[[], None]] = []

    def _register(self, name: str, factory, kind: str, check):
        with self._lock:
            instrument = self._instruments.get(name)
            if instrument is None:
                instrument = factory()
                self._instruments[name] = instrument
                return instrument
        if instrument.kind != kind or not check(instrument):
            raise ValueError(
                f"metric {name!r} is already registered as a "
                f"{instrument.kind} with a different shape")
        return instrument

    def counter(self, name: str, help_: str = "",
                label_names: Sequence[str] = ()) -> Counter:
        return self._register(
            name, lambda: Counter(name, help_, label_names), "counter",
            lambda i: i.label_names == tuple(label_names))

    def gauge(self, name: str, help_: str = "") -> Gauge:
        return self._register(name, lambda: Gauge(name, help_), "gauge",
                              lambda i: True)

    def histogram(self, name: str, help_: str = "",
                  buckets: Sequence[float] = LATENCY_BUCKETS) -> Histogram:
        return self._register(
            name, lambda: Histogram(name, help_, buckets), "histogram",
            lambda i: i.bounds == tuple(sorted(float(b) for b in buckets)))

    def register_instrument(self, instrument):
        """Adopt an externally built instrument under its own name —
        how engine-owned instruments (e.g. a storage backend's RPC
        round-trip histogram) join an exposition without the registry
        owning their hot path.  Idempotent for the same object;
        adopting a *different* instrument under a taken name raises."""
        with self._lock:
            existing = self._instruments.get(instrument.name)
            if existing is None:
                self._instruments[instrument.name] = instrument
                return instrument
        if existing is not instrument:
            raise ValueError(
                f"metric {instrument.name!r} is already registered "
                "with a different instrument object")
        return existing

    def register_collector(self, collect: Callable[[], None]) -> None:
        """``collect`` runs before every snapshot; it should push
        externally owned numbers into instruments (``Gauge.set`` /
        ``Counter.set_total``)."""
        with self._lock:
            self._collectors.append(collect)

    def instruments(self) -> list:
        """A snapshot of every instrument, collectors run first,
        sorted by name — the exporters' input."""
        with self._lock:
            collectors = list(self._collectors)
        for collect in collectors:
            collect()
        with self._lock:
            return [self._instruments[name]
                    for name in sorted(self._instruments)]

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        with self._lock:
            return self._instruments.get(name)

    def as_flat_dict(self, prefix: str = "") -> dict[str, float]:
        """Every sample as one flat ``name -> number`` mapping (labels
        folded into the key) — what the benchmark harness embeds in
        ``BENCH_*.json`` for the trajectory gate to diff.  Histograms
        contribute ``<name>_count`` and ``<name>_sum`` only: bucket
        shapes are an implementation detail, not a trajectory."""
        flat: dict[str, float] = {}
        for instrument in self.instruments():
            name = prefix + instrument.name
            if isinstance(instrument, Histogram):
                flat[name + "_count"] = instrument.count
                flat[name + "_sum"] = round(instrument.sum, 6)
                continue
            for labels, value in instrument.samples():
                key = name
                if labels:
                    key += "." + ",".join(
                        f"{k}={v}" for k, v in sorted(labels.items()))
                flat[key] = value
        return flat


def merge_counts(target: dict, source: Mapping | Iterable) -> dict:
    """Fold ``source``'s numeric values into ``target`` by key — the
    helper per-request stat dicts merge with."""
    items = source.items() if isinstance(source, Mapping) else source
    for key, value in items:
        target[key] = target.get(key, 0) + value
    return target
