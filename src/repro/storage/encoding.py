"""Dictionary encoding: the value <-> integer-code bijection columns ride on.

The columnar data plane never moves Python values through operators —
it moves small integer *codes*.  :class:`ValueDictionary` is the
interning table that makes that sound: an append-only bijection from
hashable values to dense ints, so

* ``code(a) == code(b)  <=>  a == b`` (one dictionary per backend —
  join keys cross relations, so codes must be comparable across every
  relation and shard of one database), and
* decoding is a plain list index, lock-free under the GIL.

Encoding happens **once, at insert/attach time**, inside the storage
backend (see :class:`~repro.storage.indexes.AccessIndex`); executors
only ever *decode* the final result batch.  Python equality quirks
(``1 == True == 1.0`` share one code; two distinct ``NaN`` objects get
two codes) mirror exactly how ``dict``/``set`` keys behave, so decoded
answers are ``==``-identical to the tuple-at-a-time reference.

This module also hosts the integer-column primitives shared by storage
and engine (``array('q')`` construction, memoryview freezing, typed
concatenation) — it sits below both layers, so neither import
direction cycles.
"""

from __future__ import annotations

import sys
import threading
from array import array
from typing import Hashable, Iterable, Sequence

#: The machine layout of every encoded column: signed 64-bit ints.
COLUMN_TYPECODE = "q"


def int_column(values: Iterable[int] = ()) -> array:
    """A fresh signed-64 integer column."""
    return array(COLUMN_TYPECODE, values)


def readonly_view(column: array) -> memoryview:
    """Freeze a column: a zero-copy readonly ``memoryview`` over it.

    Cache layers hand these out instead of the backing arrays so no
    consumer can mutate a shared entry in place (writes raise).
    """
    return memoryview(column).toreadonly()


def extend_column(out: array, column) -> None:
    """Append ``column`` onto the array ``out``.

    Arrays take the C ``memcpy``-style fast path; readonly memoryviews
    (cache entries) are blitted via ``frombytes`` on the raw buffer;
    anything else (plain lists of codes) falls back to iteration.
    """
    if type(column) is memoryview:
        out.frombytes(column.cast("B"))
    else:
        out.extend(column)


class ValueDictionary:
    """Append-only interning table from hashable values to dense codes.

    >>> d = ValueDictionary()
    >>> d.encode("x"), d.encode("y"), d.encode("x")
    (0, 1, 0)
    >>> d.decode(1)
    'y'
    >>> len(d)
    2

    Thread-safety: lookups of already-interned values and all decodes
    are lock-free (the GIL orders list appends before the dict publish
    below); only the first encode of a *new* value takes the lock.
    Codes are never reassigned or removed — deletion of rows does not
    shrink the dictionary (values are interned, not refcounted), which
    keeps every outstanding cache entry and specialized plan valid for
    the lifetime of the backend.
    """

    __slots__ = ("_codes", "_values", "_lock")

    def __init__(self) -> None:
        self._codes: dict[Hashable, int] = {}
        self._values: list[Hashable] = []
        self._lock = threading.Lock()

    def encode(self, value: Hashable) -> int:
        """The code for ``value``, interning it on first sight."""
        code = self._codes.get(value)
        if code is not None:
            return code
        with self._lock:
            code = self._codes.get(value)
            if code is None:
                code = len(self._values)
                # Publish the value *before* the code becomes visible,
                # so a lock-free decode of a just-returned code always
                # finds it.
                self._values.append(value)
                self._codes[value] = code
        return code

    def encode_row(self, row: Sequence[Hashable]) -> tuple[int, ...]:
        """Encode one stored row positionally."""
        codes = self._codes
        try:
            return tuple(codes[value] for value in row)
        except KeyError:
            return tuple(self.encode(value) for value in row)

    def decode(self, code: int) -> Hashable:
        return self._values[code]

    def decode_rows(self, cols: Sequence, length: int) -> set[tuple]:
        """Decode row-aligned code columns into a set of value tuples —
        the one place the columnar executor rematerializes Python
        values (the final answer)."""
        if not cols:
            return {()} if length else set()
        values = self._values
        return set(zip(*([values[code] for code in col] for col in cols)))

    def values_from(self, start: int) -> list:
        """The interned values with codes ``start..len-1`` — the *delta*
        a coordinator ships to workers/replicas that already know the
        first ``start`` codes.  Codes are assigned densely in insertion
        order, so the slice alone reconstructs the mapping remotely."""
        return self._values[start:]

    def footprint_bytes(self) -> int:
        """An estimate of the resident size of the interning table:
        container overhead plus the values themselves (interned once,
        shared by ``_codes`` keys and ``_values`` slots).  Surfaced as
        the ``repro_storage_dictionary_bytes`` gauge."""
        values = self._values
        total = sys.getsizeof(self._codes) + sys.getsizeof(values)
        total += sum(sys.getsizeof(value) for value in values)
        # each dict entry also interns an int code object
        total += 28 * len(values)
        return total

    def __len__(self) -> int:
        return len(self._values)

    def __contains__(self, value: Hashable) -> bool:
        return value in self._codes
