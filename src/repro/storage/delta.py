"""Per-write deltas: what a write changed, at index-group granularity.

Bounded fetch results are X-key-indexed sets of distinct ``X∪Y``
projections, so the unit of change a read-side cache cares about is not
"row inserted/deleted" but "projection appeared/disappeared under this
X-key of this constraint's index".  The indexes already know the
difference — :meth:`~repro.storage.indexes.AccessIndex.add` and
``remove`` refcount witness rows per projection — so backends can emit
*exact* group-level deltas at no extra bookkeeping cost: a projection
shared by several stored rows changes nothing until its last witness
goes.

One :class:`WriteDelta` describes one effective write batch (one
generation bump) of one relation.  Backends emit it *inside* the lock
that serializes the relation's generation bumps, immediately after the
bump, so listeners observe a gap-free, ordered stream::

    old_generation == (previous delta's new_generation)

A listener that has applied every delta since generation ``g`` holds
content identical to a fresh fetch at the current generation — that is
the invariant :class:`~repro.service.fetchcache.FetchCache` maintains
its entries by.  Deltas that cannot be described exactly (a full
``clear``, recovery, a schema reattach) are emitted with
``maintainable=False``, telling listeners to fall back to invalidation.

>>> delta = WriteDelta.wipe("R", 3, 4)
>>> delta.maintainable, delta.new_generation
(False, 4)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..schema.access import AccessConstraint

#: One projection-level change: the X-value tuple, the full ``X∪Y``
#: value row (what legacy fetch results hold), the encoded-mirror key
#: (a bare int code for scalar-X constraints, a code tuple otherwise —
#: the columnar cache's key convention), and the ``X∪Y`` dictionary
#: codes (what encoded cache entries hold).
Change = tuple[tuple, tuple, object, tuple]


@dataclass
class ConstraintDelta:
    """The projection-level changes one write batch made to one
    attached constraint's index groups."""

    added: list[Change] = field(default_factory=list)
    removed: list[Change] = field(default_factory=list)


@dataclass
class WriteDelta:
    """One effective write batch of one relation, as seen by its
    indexes, bracketed by the generations it moved between.

    ``constraints`` maps each *attached*
    :class:`~repro.schema.access.AccessConstraint` to its
    :class:`ConstraintDelta`.  ``AccessConstraint`` is a frozen
    dataclass, so a structurally equal requested constraint addresses
    the same dict slot — listeners key their entries by requested
    constraints and still receive the attached-keyed deltas.

    ``maintainable=False`` means the write cannot be described as
    projection changes (``clear``, recovery, schema reattach): listeners
    must drop what they hold for ``relation`` and resynchronize at
    ``new_generation``.
    """

    relation: str
    old_generation: int
    new_generation: int
    constraints: dict[AccessConstraint, ConstraintDelta] = \
        field(default_factory=dict)
    maintainable: bool = True

    @classmethod
    def wipe(cls, relation: str, old_generation: int,
             new_generation: int) -> "WriteDelta":
        """A non-maintainable delta: everything a listener holds for
        ``relation`` is suspect; invalidate and resume at
        ``new_generation``."""
        return cls(relation=relation, old_generation=old_generation,
                   new_generation=new_generation, maintainable=False)


#: The listener signature backends call (synchronously, under the
#: write lock) for every emitted delta.
WriteListener = Callable[[WriteDelta], None]


class DeltaRecorder:
    """Accumulates one write batch's projection changes.

    Backends create one per observed write batch and feed it every
    ``(index, row, coded_row)`` whose :meth:`AccessIndex.add`/``remove``
    reported a projection-level effect; :meth:`finish` seals the
    recording into a :class:`WriteDelta` once the generation bump is
    known.
    """

    __slots__ = ("relation", "_constraints")

    def __init__(self, relation: str):
        self.relation = relation
        self._constraints: dict[AccessConstraint, ConstraintDelta] = {}

    @staticmethod
    def _change(index, row: Sequence, coded_row: Sequence[int]) -> Change:
        x_positions = index.x_positions
        y_positions = index.y_positions
        x_value = tuple(row[i] for i in x_positions)
        row_value = x_value + tuple(row[i] for i in y_positions)
        key_code = (coded_row[x_positions[0]] if index.scalar_key
                    else tuple(coded_row[i] for i in x_positions))
        row_codes = (tuple(coded_row[i] for i in x_positions)
                     + tuple(coded_row[i] for i in y_positions))
        return (x_value, row_value, key_code, row_codes)

    def _delta(self, index) -> ConstraintDelta:
        delta = self._constraints.get(index.constraint)
        if delta is None:
            delta = self._constraints[index.constraint] = ConstraintDelta()
        return delta

    def added(self, index, row: Sequence,
              coded_row: Sequence[int]) -> None:
        """A new distinct projection appeared under ``row``'s X-key."""
        self._delta(index).added.append(self._change(index, row, coded_row))

    def removed(self, index, row: Sequence,
                coded_row: Sequence[int]) -> None:
        """``row`` was the last witness of its projection."""
        self._delta(index).removed.append(
            self._change(index, row, coded_row))

    def finish(self, old_generation: int,
               new_generation: int) -> WriteDelta:
        return WriteDelta(relation=self.relation,
                          old_generation=old_generation,
                          new_generation=new_generation,
                          constraints=self._constraints)
