"""Storage engines: instances, backends, indexes and statistics."""

from .backend import (BACKENDS, MemoryBackend, ShardedBackend,
                      StorageBackend, make_backend)
from .database import Database
from .disk import DiskBackend, disk_backend_factory
from .indexes import AccessIndex
from .statistics import (distinct_count, is_key, max_group_cardinality,
                         selectivity_profile)

__all__ = [
    "Database", "AccessIndex",
    "StorageBackend", "MemoryBackend", "ShardedBackend", "DiskBackend",
    "disk_backend_factory",
    "make_backend", "BACKENDS",
    "max_group_cardinality", "distinct_count", "is_key",
    "selectivity_profile",
]
