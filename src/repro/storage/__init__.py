"""In-memory storage: instances, indexes and statistics."""

from .database import Database
from .indexes import AccessIndex
from .statistics import (distinct_count, is_key, max_group_cardinality,
                         selectivity_profile)

__all__ = [
    "Database", "AccessIndex",
    "max_group_cardinality", "distinct_count", "is_key",
    "selectivity_profile",
]
