"""Cardinality statistics over database instances.

The paper's access constraints "are discovered by simple aggregate
queries on D0" (Example 1.1).  This module implements those aggregates:
for a relation and an ``(X, Y)`` attribute pair it computes the maximum
number of distinct ``Y``-projections per ``X``-projection — exactly the
``N`` of a candidate constraint ``R(X -> Y, N)`` — plus distinct counts
used by the discovery heuristics.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from .database import Database


@dataclass(frozen=True)
class TableStatistics:
    """A cheap snapshot of instance-level cardinalities.

    The optimizer's join-ordering rule consumes this: ``db_size``
    evaluates non-constant cardinality functions, ``relation_sizes``
    cap fetch-output estimates (a fetch can never return more distinct
    projections than the relation holds).  Statistics only steer
    physical choices — a stale snapshot can cost speed, never answers.
    """

    db_size: int = 0
    relation_sizes: dict[str, int] = field(default_factory=dict)

    @classmethod
    def from_database(cls, db: Database) -> "TableStatistics":
        sizes = {name: db.relation_size(name)
                 for name in db.schema.relation_names()}
        return cls(db_size=sum(sizes.values()), relation_sizes=sizes)

    def relation_size(self, relation_name: str) -> int | None:
        return self.relation_sizes.get(relation_name)


def max_group_cardinality(db: Database, relation_name: str,
                          x: Sequence[str], y: Sequence[str]) -> int:
    """``max_a |D_Y(X = a)|`` over the instance; 0 for an empty relation.

    With ``X`` empty this is simply the number of distinct Y-projections.
    """
    relation = db.schema.relation(relation_name)
    x_positions = relation.positions(x)
    y_positions = relation.positions(y)
    groups: dict[tuple, set] = {}
    for row in db.relation_tuples(relation_name):
        x_value = tuple(row[i] for i in x_positions)
        y_value = tuple(row[i] for i in y_positions)
        groups.setdefault(x_value, set()).add(y_value)
    if not groups:
        return 0
    return max(len(values) for values in groups.values())


def distinct_count(db: Database, relation_name: str,
                   attributes: Sequence[str]) -> int:
    """Number of distinct projections on ``attributes``."""
    relation = db.schema.relation(relation_name)
    positions = relation.positions(attributes)
    return len({
        tuple(row[i] for i in positions)
        for row in db.relation_tuples(relation_name)
    })


def is_key(db: Database, relation_name: str, attributes: Sequence[str]) -> bool:
    """True when ``attributes`` functionally determine the whole tuple."""
    relation = db.schema.relation(relation_name)
    rest = [a for a in relation.attributes if a not in attributes]
    if not rest:
        return True
    return max_group_cardinality(db, relation_name, attributes, rest) <= 1


def selectivity_profile(db: Database, relation_name: str) -> dict[str, int]:
    """Distinct-value count per single attribute; a discovery heuristic input."""
    relation = db.schema.relation(relation_name)
    return {
        attribute: distinct_count(db, relation_name, (attribute,))
        for attribute in relation.attributes
    }
