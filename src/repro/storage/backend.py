"""The pluggable storage-engine boundary.

A covered query touches a bounded fragment ``D_Q`` through the indexes
an access schema promises — *how* those indexes and rows are laid out
is the storage engine's business, not the engine's.  This module pins
that boundary down as :class:`StorageBackend`, a narrow batched access
protocol:

* ``fetch_many(constraint, x_values)`` — the vectorized form of the
  paper's ``fetch`` primitive: one call answers a whole batch of
  distinct X-values, so executors never loop single lookups across the
  storage boundary;
* ``scan(relation)`` — the full-scan path bounded plans avoid (kept
  separate so benchmarks can tell the two apart);
* ``insert_rows`` / ``delete_rows`` — set-semantics bulk writes whose
  per-relation ``generation`` bumps *after* the index updates, the
  ordering read-side caches rely on;
* ``generation(relation)`` — the write epoch keying those caches.

Two engines ship:

* :class:`MemoryBackend` — one dict of rows plus one
  :class:`~repro.storage.indexes.AccessIndex` per constraint (the
  original ``Database`` internals, extracted);
* :class:`ShardedBackend` — rows hash-partitioned across ``S`` shards
  and every constraint's index groups partitioned by the constraint's
  X-key, so a ``fetch_many`` batch fans out per shard (optionally over
  a thread pool) and each shard lock covers only its slice.

:class:`~repro.storage.database.Database` is a thin facade over a
backend; everything above storage (executor, caches, service, CLI)
talks to the facade, which forwards through this protocol.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from typing import Hashable, Iterable, Iterator, Sequence

from ..errors import ExecutionError, StorageError
from ..obs.trace import span
from ..schema.access import AccessConstraint, AccessSchema
from ..schema.relation import Schema
from .delta import DeltaRecorder, WriteDelta, WriteListener
from .encoding import ValueDictionary, int_column
from .indexes import AccessIndex

Row = tuple

#: A memoized constraint resolution: the requested constraint itself
#: (kept alive so ``id``-keyed memos can never alias a recreated
#: object), the attached constraint whose index answers it, the key
#: permutation from the requested X-order into the attached index's
#: X-order (or None for identity), the projection from the attached
#: index's X∪Y row layout into the requested constraint's X∪Y columns
#: (or None for identity), and whether that projection can collapse
#: rows (wider attached Y) and therefore needs deduplication.
_Resolution = tuple[AccessConstraint, AccessConstraint,
                    "tuple[int, ...] | None",
                    "tuple[int, ...] | None", bool]


class StorageBackend(ABC):
    """The batched access-method contract every storage engine honours.

    Implementations own the rows, the per-constraint indexes and the
    per-relation write generations; they guarantee

    * set semantics (``insert_rows``/``delete_rows`` report *effective*
      changes only),
    * ``fetch_many`` results identical to looking each X-value up in a
      freshly built per-constraint index, and
    * generation bumps strictly *after* the corresponding index
      updates, so a reader observing epoch ``g`` can cache what it
      fetched under ``g`` without ever pinning pre-write rows under a
      post-write epoch.
    """

    #: Resolution-memo bound; overflow clears the memo (see _resolve).
    _MAX_RESOLUTIONS = 4096

    def __init__(self, schema: Schema):
        self.schema = schema
        self.access_schema: AccessSchema | None = None
        #: One dictionary per backend — NOT per relation: hash-join keys
        #: compare columns from *different* relations, so code equality
        #: must mean value equality database-wide.  Append-only; rows
        #: are encoded once, when they first reach an index.
        self.dictionary = ValueDictionary()
        self._generations: dict[str, int] = {
            name: 0 for name in schema.relation_names()}
        # id(requested constraint) -> resolution against the attached
        # schema; values keep the requested object alive (see
        # _Resolution).
        self._resolutions: dict[int, _Resolution] = {}
        # Write listeners (see add_write_listener).  Mutated rarely;
        # emission iterates a snapshot, so registration during a
        # concurrent write is safe (the registrant simply misses the
        # in-flight delta and starts at the next one).
        self._write_listeners: list[WriteListener] = []

    # -- the protocol ------------------------------------------------------

    @abstractmethod
    def attach_access_schema(self, access_schema: AccessSchema) -> None:
        """(Re)build one index per constraint from the stored rows."""

    @abstractmethod
    def insert_rows(self, relation_name: str,
                    rows: Iterable[Row]) -> int:
        """Insert rows (set semantics); returns the number actually
        added.  Bumps the relation's generation once if any were."""

    @abstractmethod
    def delete_rows(self, relation_name: str,
                    rows: Iterable[Row]) -> int:
        """Delete rows; returns the number actually removed.  Index
        entries go first, the generation bump last."""

    @abstractmethod
    def clear(self) -> None:
        """Remove every row (generations bump; they never reset)."""

    @abstractmethod
    def scan(self, relation_name: str) -> list[Row]:
        """Every row of one relation — the path bounded plans avoid."""

    @abstractmethod
    def fetch_many(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[list[Row]]:
        """Index lookups for a batch of X-values, aligned with the
        input: ``result[i]`` is the distinct ``X∪Y`` projections for
        ``x_values[i]``, in the *requested* constraint's column order.
        """

    def fetch_flat(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[Row]:
        """The concatenation of :meth:`fetch_many`'s per-X lists, in
        any order.  Executors with no per-X consumer (no fetch cache)
        use this; engines should override it with an alignment-free
        fast path."""
        return [row
                for rows in self.fetch_many(constraint, x_values)
                for row in rows]

    # -- the encoded fetch surface (columnar executor) ---------------------

    def _decoded_keys(self, constraint: AccessConstraint,
                      keys: Sequence) -> list[Row]:
        """Code keys back to X-value tuples — bare int codes for
        scalar-X constraints, code tuples otherwise (the columnar
        executor's key convention)."""
        decode = self.dictionary.decode
        if len(constraint.x) == 1:
            return [(decode(key),) for key in keys]
        return [tuple(decode(code) for code in key) for key in keys]

    def fetch_many_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> list[tuple[tuple, int]]:
        """Index lookups for a batch of *code* keys, aligned with the
        input: ``result[i]`` is ``(columns, length)`` where ``columns``
        is one freshly built ``array('q')`` of dictionary codes per
        requested ``X∪Y`` attribute.

        This default round-trips through the value-level
        :meth:`fetch_many` so any conforming engine works unmodified;
        the shipped engines override it with index-native encoded
        lookups that never build row tuples at all.
        """
        encode = self.dictionary.encode
        width = len(constraint.x) + len(constraint.y)
        entries = []
        for rows in self.fetch_many(constraint,
                                    self._decoded_keys(constraint, keys)):
            cols = tuple(int_column(encode(row[i]) for row in rows)
                         for i in range(width))
            entries.append((cols, len(rows)))
        return entries

    def fetch_flat_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> tuple[list, int]:
        """The alignment-free form of :meth:`fetch_many_encoded`:
        ``(columns, total_rows)`` concatenated over the key batch, in
        any order."""
        encode = self.dictionary.encode
        rows = self.fetch_flat(constraint,
                               self._decoded_keys(constraint, keys))
        width = len(constraint.x) + len(constraint.y)
        cols = [int_column(encode(row[i]) for row in rows)
                for i in range(width)]
        return cols, len(rows)

    @abstractmethod
    def relation_size(self, relation_name: str) -> int:
        ...

    @abstractmethod
    def contains(self, relation_name: str, row: Row) -> bool:
        ...

    @abstractmethod
    def constraint_groups(self, constraint: AccessConstraint
                          ) -> Iterator[tuple[Row, int]]:
        """``(x_value, distinct-Y count)`` pairs for an attached
        constraint — what cardinality validation consumes."""

    @abstractmethod
    def indexes_for(self, relation_name: str) -> list[AccessIndex]:
        """The live index objects over one relation (all shards for a
        sharded engine) — a white-box hook for tests and diagnostics."""

    @abstractmethod
    def describe(self) -> str:
        """A short human-readable engine summary (CLI/bench reporting)."""

    def close(self) -> None:
        """Release engine resources (worker pools, file handles).
        Default: nothing to release."""

    def counters(self) -> dict:
        """The engine's internal tallies as a flat ``name -> number``
        dict (``wal_records_total``-style keys).  Every engine reports
        its dictionary size (the interned-value count the columnar
        plane rides on); engines with more interesting internals (the
        disk engine's WAL, fsync, snapshot and recovery counts) extend
        this; the service and the observability collectors surface
        whatever appears."""
        return {"dictionary_size": len(self.dictionary)}

    def gauges(self) -> dict:
        """Point-in-time *levels* (as opposed to the monotone tallies
        of :meth:`counters`): a flat ``name -> number`` dict surfaced
        as ``repro_storage_<name>`` gauges.  Every engine reports the
        resident footprint of its value dictionary."""
        return {"dictionary_bytes": self.dictionary.footprint_bytes()}

    def histograms(self) -> list:
        """Engine-owned :class:`~repro.obs.metrics.Histogram`
        instruments (already named ``repro_storage_...``) for the
        collector to adopt into the registry.  Default: none."""
        return []

    # -- shared bookkeeping ------------------------------------------------

    def generation(self, relation_name: str) -> int:
        return self._generations[relation_name]

    def write_epoch(self) -> int:
        return sum(self._generations.values())

    # -- the write-delta maintenance hook ----------------------------------

    def add_write_listener(self, listener: WriteListener) -> None:
        """Subscribe to :class:`~repro.storage.delta.WriteDelta`
        notifications — the incremental-maintenance hook read-side
        caches attach to.

        The listener is called synchronously for every effective write,
        inside the lock that serializes the relation's generation
        bumps, immediately after the bump — so the delta stream is
        ordered and gap-free per relation (each delta's
        ``old_generation`` equals the previous one's
        ``new_generation``).  Listeners must be quick and must never
        call back into the backend.

        Delta *collection* is skipped entirely while no listener is
        registered, so unobserved backends pay nothing.

        >>> from repro.schema.relation import Schema
        >>> backend = MemoryBackend(Schema.from_dict({"R": ("A", "B")}))
        >>> seen = []
        >>> backend.add_write_listener(seen.append)
        >>> backend.insert_rows("R", [(1, 2)])
        1
        >>> [(d.relation, d.old_generation, d.new_generation)
        ...  for d in seen]
        [('R', 0, 1)]
        >>> backend.remove_write_listener(seen.append)
        """
        self._write_listeners.append(listener)

    def remove_write_listener(self, listener: WriteListener) -> None:
        """Unsubscribe a listener registered with
        :meth:`add_write_listener` (a no-op if it is not registered)."""
        try:
            self._write_listeners.remove(listener)
        except ValueError:
            pass

    def _recorder(self, relation_name: str) -> DeltaRecorder | None:
        """A fresh per-batch recorder, or None when nobody listens
        (the common case — write paths then skip delta bookkeeping)."""
        if not self._write_listeners:
            return None
        return DeltaRecorder(relation_name)

    def _notify(self, delta: WriteDelta) -> None:
        """Deliver one delta to every listener (callers hold the lock
        that orders the relation's generation bumps)."""
        for listener in tuple(self._write_listeners):
            listener(delta)

    def _notify_wipes(self) -> None:
        """Emit a non-maintainable delta for every relation — what
        ``clear``, recovery and schema reattach tell listeners (callers
        hold the write lock; generations must already be final)."""
        if not self._write_listeners:
            return
        for name, generation in self._generations.items():
            self._notify(WriteDelta.wipe(name, generation, generation))

    # -- constraint resolution (shared by engines) -------------------------

    def _resolve(self, constraint: AccessConstraint) -> _Resolution:
        """Map a requested constraint onto an attached one.

        Analysis code re-creates constraints structurally rather than
        sharing the attached objects, and may request a *narrower* Y
        than some attached index stores.  The resolution precomputes
        the key permutation and row projection that insulate callers
        from the attached index's layout.
        """
        resolution = self._resolutions.get(id(constraint))
        if resolution is not None:
            return resolution
        attached = self._match(constraint)
        key_perm: tuple[int, ...] | None = None
        if attached.x != constraint.x:
            positions = {name: i for i, name in enumerate(constraint.x)}
            key_perm = tuple(positions[name] for name in attached.x)
        row_proj: tuple[int, ...] | None = None
        attached_layout = attached.x + attached.y
        requested_layout = constraint.x + constraint.y
        if attached_layout != requested_layout:
            positions = {name: i for i, name in enumerate(attached_layout)}
            row_proj = tuple(positions[name] for name in requested_layout)
        needs_dedup = constraint.xy_set != attached.xy_set
        resolution = (constraint, attached, key_perm, row_proj, needs_dedup)
        # The memo pins requested constraint objects alive (that is
        # what makes id-keying sound), so it must not grow without
        # bound in a long-running service: wholesale-clear on overflow
        # — it is a pure cache, rebuilt per constraint in one pass.
        if len(self._resolutions) >= self._MAX_RESOLUTIONS:
            self._resolutions.clear()
        self._resolutions[id(constraint)] = resolution
        return resolution

    def _match(self, constraint: AccessConstraint) -> AccessConstraint:
        attached = self.access_schema
        if attached is not None:
            for candidate in attached:
                if candidate is constraint:
                    return candidate
            for candidate in attached:
                if (candidate.relation_name == constraint.relation_name
                        and candidate.x_set == constraint.x_set
                        and constraint.y_set <= candidate.xy_set):
                    return candidate
        raise ExecutionError(
            f"no index available for constraint {constraint}; attach an "
            "access schema containing it before executing bounded plans")

    def _reset_resolutions(self) -> None:
        self._resolutions.clear()

    def _resolved_indexes(self, constraint: AccessConstraint):
        """Resolve ``constraint`` and look up its live index entry in
        the engine's ``_indexes`` map (every engine defines one, keyed
        by ``id(attached constraint)``).

        Resilient against a racing ``attach_access_schema``: a
        resolution memoized against the *old* schema (or stored just
        after the reset) points at discarded indexes — drop it and
        resolve again until the memo and the index map agree.  The
        loop terminates: once an attach completes, either the fresh
        resolution finds its entry or ``_match`` raises the intended
        ``ExecutionError``.
        """
        while True:
            resolution = self._resolve(constraint)
            entry = self._indexes.get(id(resolution[1]))
            if entry is not None:
                return resolution, entry
            self._resolutions.pop(id(constraint), None)

    @staticmethod
    def _project(rows: list[Row], row_proj: tuple[int, ...] | None,
                 needs_dedup: bool) -> list[Row]:
        if row_proj is None:
            return rows
        projected = [tuple(row[i] for i in row_proj) for row in rows]
        if needs_dedup:
            projected = list(dict.fromkeys(projected))
        return projected

    @staticmethod
    def _permute_keys(x_values: Sequence[Row],
                      key_perm: tuple[int, ...] | None) -> Sequence[Row]:
        """``x_values`` must already be tuples (the facade and the
        executor guarantee it); the common no-permutation case is a
        pass-through, not a copy."""
        if key_perm is None:
            return x_values
        return [tuple(x[i] for i in key_perm) for x in x_values]


class MemoryBackend(StorageBackend):
    """The original single-store engine: one dict of rows per relation
    plus one :class:`AccessIndex` per attached constraint.

    A single lock serializes structural mutation and lookup snapshots;
    it is held only for the dict operations themselves, never across
    user code.
    """

    def __init__(self, schema: Schema):
        super().__init__(schema)
        self._rows: dict[str, dict[Row, None]] = {
            name: {} for name in schema.relation_names()}
        self._indexes: dict[int, AccessIndex] = {}
        self._lock = threading.RLock()

    # -- writes ------------------------------------------------------------

    def attach_access_schema(self, access_schema: AccessSchema) -> None:
        with self._lock:
            # Build the full map first, then publish with single
            # assignments: lock-free readers (_resolved_indexes) never
            # observe a partially filled index map.
            indexes: dict[int, AccessIndex] = {}
            by_relation: dict[str, list[AccessIndex]] = {}
            for constraint in access_schema:
                relation = constraint.validate_against(self.schema)
                index = AccessIndex(constraint, relation, self.dictionary)
                indexes[id(constraint)] = index
                by_relation.setdefault(constraint.relation_name,
                                       []).append(index)
            # Bulk-encode each relation's rows exactly once, no matter
            # how many constraints index it.
            with span("encode"):
                encode_row = self.dictionary.encode_row
                for name, relation_indexes in by_relation.items():
                    for row in self._rows[name]:
                        coded = encode_row(row)
                        for index in relation_indexes:
                            index.add(row, coded)
            self._indexes = indexes
            self.access_schema = access_schema
            self._reset_resolutions()
            # Reattach invalidates any constraint->index mapping a
            # listener's entries were maintained under.
            self._notify_wipes()

    def insert_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        store = self._rows[relation_name]
        added = 0
        with self._lock:
            # The index list must be read under the lock: a concurrent
            # attach_access_schema swaps in rebuilt indexes, and rows
            # registered on the discarded ones would be lost.
            indexes = self.indexes_for(relation_name)
            encode_row = self.dictionary.encode_row
            recorder = self._recorder(relation_name)
            for row in rows:
                if row in store:
                    continue
                store[row] = None
                if indexes:
                    # Encode once per row, not once per index.
                    coded = encode_row(row)
                    for index in indexes:
                        if index.add(row, coded) and recorder is not None:
                            recorder.added(index, row, coded)
                added += 1
            if added:
                old = self._generations[relation_name]
                self._generations[relation_name] = old + 1
                if recorder is not None:
                    self._notify(recorder.finish(old, old + 1))
        return added

    def delete_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        store = self._rows[relation_name]
        removed = 0
        with self._lock:
            indexes = self.indexes_for(relation_name)
            encode_row = self.dictionary.encode_row
            recorder = self._recorder(relation_name)
            for row in rows:
                if row not in store:
                    continue
                del store[row]
                coded = (encode_row(row)
                         if indexes and recorder is not None else None)
                for index in indexes:
                    if index.remove(row, coded) and recorder is not None:
                        recorder.removed(index, row, coded)
                removed += 1
            if removed:
                # After the index updates, like insert: a concurrent
                # reader at the pre-bump epoch may see the deletion
                # early (benign), never cache deleted rows post-bump.
                old = self._generations[relation_name]
                self._generations[relation_name] = old + 1
                if recorder is not None:
                    self._notify(recorder.finish(old, old + 1))
        return removed

    def clear(self) -> None:
        with self._lock:
            for store in self._rows.values():
                store.clear()
            for index in self._indexes.values():
                index.remove_all()
            for name in self._generations:
                self._generations[name] += 1
            self._notify_wipes()

    # -- reads -------------------------------------------------------------

    def scan(self, relation_name: str) -> list[Row]:
        with self._lock:
            return list(self._rows[relation_name])

    def relation_size(self, relation_name: str) -> int:
        return len(self._rows[relation_name])

    def contains(self, relation_name: str, row: Row) -> bool:
        return row in self._rows[relation_name]

    def fetch_many(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[list[Row]]:
        (_, _, key_perm, row_proj, dedup), index = \
            self._resolved_indexes(constraint)
        keys = self._permute_keys(x_values, key_perm)
        with self._lock:
            results = index.lookup_many(keys)
        if row_proj is not None:
            results = [self._project(rows, row_proj, dedup)
                       for rows in results]
        return results

    def fetch_flat(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[Row]:
        (_, _, key_perm, row_proj, _), index = \
            self._resolved_indexes(constraint)
        if row_proj is not None:  # projection needs per-X deduplication
            return super().fetch_flat(constraint, x_values)
        keys = self._permute_keys(x_values, key_perm)
        with self._lock:
            return index.lookup_flat(keys)

    def fetch_many_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> list[tuple[tuple, int]]:
        (_, _, key_perm, row_proj, dedup), index = \
            self._resolved_indexes(constraint)
        keys = self._permute_keys(keys, key_perm)
        with self._lock:
            return index.lookup_many_encoded(keys, row_proj, dedup)

    def fetch_flat_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> tuple[list, int]:
        (_, _, key_perm, row_proj, dedup), index = \
            self._resolved_indexes(constraint)
        keys = self._permute_keys(keys, key_perm)
        with self._lock:
            return index.lookup_flat_encoded(keys, row_proj, dedup)

    def constraint_groups(self, constraint: AccessConstraint
                          ) -> Iterator[tuple[Row, int]]:
        _, index = self._resolved_indexes(constraint)
        with self._lock:
            snapshot = [(x, index.group_size(x)) for x in index.x_values()]
        return iter(snapshot)

    def indexes_for(self, relation_name: str) -> list[AccessIndex]:
        return [index for index in self._indexes.values()
                if index.constraint.relation_name == relation_name]

    def describe(self) -> str:
        return "memory"


class ShardedBackend(StorageBackend):
    """A hash-partitioned engine: ``S`` shards per relation.

    Rows are partitioned by full-row hash; every constraint's index
    groups are partitioned by the constraint's *X-key* hash, so all
    rows for one X-value live in exactly one index shard and a
    ``fetch_many`` batch decomposes into disjoint per-shard lookups.
    With ``workers > 0`` those per-shard lookups run on a thread pool
    (a structural stand-in for per-shard processes/hosts; under the GIL
    it buys overlap only when lookups block).

    Locking is per shard: readers take one shard lock at a time,
    writers take the affected shard locks in ascending order (so two
    bulk writers can never deadlock).
    """

    #: Pool fan-out pays a submit/wake/result round trip per shard; for
    #: small per-shard batches the sequential loop wins outright (the
    #: EXP-10 regression this bound fixes).  Fan out only when every
    #: touched shard has at least this many keys to look up.
    FANOUT_THRESHOLD = 32

    def __init__(self, schema: Schema, shards: int = 8, workers: int = 0,
                 fanout_threshold: int | None = None):
        if shards < 1:
            raise StorageError(f"shard count must be >= 1, got {shards}")
        if workers < 0:
            raise StorageError(f"worker count must be >= 0, got {workers}")
        super().__init__(schema)
        self.shards = shards
        self.workers = workers
        self.fanout_threshold = (self.FANOUT_THRESHOLD
                                 if fanout_threshold is None
                                 else max(0, fanout_threshold))
        self._rows: dict[str, list[dict[Row, None]]] = {
            name: [{} for _ in range(shards)]
            for name in schema.relation_names()}
        # id(attached constraint) -> one AccessIndex per shard.
        self._indexes: dict[int, list[AccessIndex]] = {}
        self._locks = [threading.RLock() for _ in range(shards)]
        # Generation bumps are read-modify-writes shared by writers
        # that may hold *disjoint* shard-lock sets; they serialize on
        # this dedicated lock so no bump is ever lost.
        self._generation_lock = threading.Lock()
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()

    # -- shard plumbing ----------------------------------------------------

    # Shard placement is fixed as ``hash(key) % shards`` and inlined on
    # the hot read paths below — readers and writers must always agree
    # on it, so it is deliberately NOT an override hook (implement the
    # StorageBackend protocol for a different partitioning scheme).
    def _shard_of(self, key: Hashable) -> int:
        return hash(key) % self.shards

    def _indexes_by_relation(self, relation_name: str
                             ) -> list[list[AccessIndex]]:
        return [shard_indexes
                for shard_indexes in self._indexes.values()
                if shard_indexes[0].constraint.relation_name
                == relation_name]

    def _use_pool(self, key_count: int, touched: int) -> bool:
        """Fan out to the thread pool only when the batch is big enough
        to amortize the per-shard submit/result round trips."""
        return (self.workers > 0 and touched > 1
                and key_count >= self.fanout_threshold * touched)

    def _pool_instance(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-shard")
            return self._pool

    # -- writes ------------------------------------------------------------

    def attach_access_schema(self, access_schema: AccessSchema) -> None:
        with self._all_locks(), span("encode"):
            # Build fully, then publish with single assignments, as in
            # MemoryBackend: lock-free readers never see a partial map.
            indexes: dict[int, list[AccessIndex]] = {}
            encode_row = self.dictionary.encode_row
            for constraint in access_schema:
                relation = constraint.validate_against(self.schema)
                shard_indexes = [AccessIndex(constraint, relation,
                                             self.dictionary)
                                 for _ in range(self.shards)]
                x_positions = shard_indexes[0].x_positions
                for shard in self._rows[constraint.relation_name]:
                    for row in shard:
                        x_value = tuple(row[i] for i in x_positions)
                        shard_indexes[self._shard_of(x_value)].add(
                            row, encode_row(row))
                indexes[id(constraint)] = shard_indexes
            self._indexes = indexes
            self.access_schema = access_schema
            self._reset_resolutions()
            # As in MemoryBackend: maintained entries predate this
            # constraint->index mapping; listeners must invalidate.
            with self._generation_lock:
                self._notify_wipes()

    def _all_locks(self):
        class _Held:
            def __init__(self, locks):
                self.locks = locks

            def __enter__(self):
                for lock in self.locks:
                    lock.acquire()

            def __exit__(self, *exc):
                for lock in reversed(self.locks):
                    lock.release()
        return _Held(self._locks)

    def _apply_rows(self, relation_name: str, rows: Iterable[Row],
                    deleting: bool) -> int:
        """Shared insert/delete body: group the batch by the shard
        locks it needs, mutate under them in ascending order, bump the
        generation last."""
        shards = self._rows[relation_name]
        batch = [tuple(row) for row in rows]
        if not batch:
            return 0
        while True:
            index_families = self._indexes_by_relation(relation_name)
            changed = self._apply_planned(relation_name, shards, batch,
                                          index_families, deleting)
            if changed is not None:
                return changed
            # attach_access_schema swapped the indexes between planning
            # and locking; replan against the fresh ones.

    def _apply_planned(self, relation_name: str,
                       shards: list[dict[Row, None]], batch: list[Row],
                       index_families: list[list[AccessIndex]],
                       deleting: bool) -> int | None:
        """One planned write attempt; returns None when the planned
        index generation went stale before the locks were acquired."""
        changed = 0
        # Plan each row's touched shards first so locks are taken in
        # ascending order exactly once per batch.
        touched: set[int] = set()
        placements = []  # (row, row_shard, [(shard_indexes, index_shard)])
        for row in batch:
            row_shard = self._shard_of(row)
            index_targets = []
            for shard_indexes in index_families:
                x_positions = shard_indexes[0].x_positions
                x_value = tuple(row[i] for i in x_positions)
                index_shard = self._shard_of(x_value)
                index_targets.append((shard_indexes, index_shard))
                touched.add(index_shard)
            touched.add(row_shard)
            placements.append((row, row_shard, index_targets))
        ordered = sorted(touched)
        for shard_id in ordered:
            self._locks[shard_id].acquire()
        try:
            # attach_access_schema rebuilds under ALL shard locks, so
            # holding any lock means it is not mid-flight — but it may
            # have completed between planning and here, orphaning the
            # planned index objects.  Verify and replan if so.
            if self._indexes_by_relation(relation_name) != index_families:
                return None
            encode_row = self.dictionary.encode_row
            recorder = self._recorder(relation_name)
            for row, row_shard, index_targets in placements:
                store = shards[row_shard]
                if deleting:
                    if row not in store:
                        continue
                    del store[row]
                    coded = (encode_row(row) if index_targets
                             and recorder is not None else None)
                    for shard_indexes, index_shard in index_targets:
                        if (shard_indexes[index_shard].remove(row, coded)
                                and recorder is not None):
                            recorder.removed(shard_indexes[index_shard],
                                             row, coded)
                else:
                    if row in store:
                        continue
                    store[row] = None
                    if index_targets:
                        coded = encode_row(row)  # once per row, all indexes
                        for shard_indexes, index_shard in index_targets:
                            if (shard_indexes[index_shard].add(row, coded)
                                    and recorder is not None):
                                recorder.added(shard_indexes[index_shard],
                                               row, coded)
                changed += 1
            if changed:
                # Post-index bump, same contract as MemoryBackend; the
                # dedicated lock keeps concurrent disjoint-shard
                # writers from losing a bump, and orders the delta
                # notifications with the bumps they describe.
                with self._generation_lock:
                    old = self._generations[relation_name]
                    self._generations[relation_name] = old + 1
                    if recorder is not None:
                        self._notify(recorder.finish(old, old + 1))
        finally:
            for shard_id in reversed(ordered):
                self._locks[shard_id].release()
        return changed

    def insert_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        return self._apply_rows(relation_name, rows, deleting=False)

    def delete_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        return self._apply_rows(relation_name, rows, deleting=True)

    def clear(self) -> None:
        with self._all_locks():
            for shards in self._rows.values():
                for shard in shards:
                    shard.clear()
            for shard_indexes in self._indexes.values():
                for index in shard_indexes:
                    index.remove_all()
            with self._generation_lock:
                for name in self._generations:
                    self._generations[name] += 1
                self._notify_wipes()

    # -- reads -------------------------------------------------------------

    def scan(self, relation_name: str) -> list[Row]:
        rows: list[Row] = []
        for shard_id, shard in enumerate(self._rows[relation_name]):
            with self._locks[shard_id]:
                rows.extend(shard)
        return rows

    def relation_size(self, relation_name: str) -> int:
        return sum(len(shard) for shard in self._rows[relation_name])

    def contains(self, relation_name: str, row: Row) -> bool:
        return row in self._rows[relation_name][self._shard_of(row)]

    def fetch_many(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[list[Row]]:
        (_, _, key_perm, row_proj, dedup), shard_indexes = \
            self._resolved_indexes(constraint)
        keys = self._permute_keys(x_values, key_perm)
        shards = self.shards
        count = len(keys)
        if count == 1:
            # Singleton batches skip the scatter machinery entirely.
            shard_id = hash(keys[0]) % shards
            with self._locks[shard_id]:
                results = shard_indexes[shard_id].lookup_many(keys)
        else:
            buckets: list[list[int]] = [[] for _ in range(shards)]
            for position, key in enumerate(keys):
                buckets[hash(key) % shards].append(position)
            touched = [shard_id for shard_id in range(shards)
                       if buckets[shard_id]]
            results = [()] * count  # type: ignore[list-item]
            if len(touched) == 1:
                shard_id = touched[0]
                with self._locks[shard_id]:
                    results = shard_indexes[shard_id].lookup_many(keys)
            elif self._use_pool(count, len(touched)):
                pool = self._pool_instance()
                futures = [
                    pool.submit(self._lookup_shard, shard_indexes,
                                shard_id, keys, buckets[shard_id], results)
                    for shard_id in touched]
                for future in futures:
                    future.result()
            else:
                for shard_id in touched:
                    self._lookup_shard(shard_indexes, shard_id, keys,
                                       buckets[shard_id], results)
        if row_proj is not None:
            return [self._project(rows, row_proj, dedup)
                    for rows in results]
        return results

    def _lookup_shard(self, shard_indexes: list[AccessIndex],
                      shard_id: int, keys: Sequence[Row],
                      positions: list[int], out: list) -> None:
        with self._locks[shard_id]:
            shard_indexes[shard_id].lookup_scatter(keys, positions, out)

    def fetch_flat(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[Row]:
        (_, _, key_perm, row_proj, _), shard_indexes = \
            self._resolved_indexes(constraint)
        if row_proj is not None:  # projection needs per-X deduplication
            return StorageBackend.fetch_flat(self, constraint, x_values)
        keys = self._permute_keys(x_values, key_perm)
        shards = self.shards
        if len(keys) == 1:
            shard_id = hash(keys[0]) % shards
            with self._locks[shard_id]:
                return shard_indexes[shard_id].lookup_flat(keys)
        buckets: list[list[Row]] = [[] for _ in range(shards)]
        for key in keys:
            buckets[hash(key) % shards].append(key)
        touched = [shard_id for shard_id in range(shards)
                   if buckets[shard_id]]
        if self._use_pool(len(keys), len(touched)):
            pool = self._pool_instance()
            futures = [pool.submit(self._lookup_shard_flat, shard_indexes,
                                   shard_id, buckets[shard_id])
                       for shard_id in touched]
            rows: list[Row] = []
            for future in futures:
                rows.extend(future.result())
            return rows
        rows = []
        for shard_id in touched:
            with self._locks[shard_id]:
                rows.extend(
                    shard_indexes[shard_id].lookup_flat(buckets[shard_id]))
        return rows

    def _lookup_shard_flat(self, shard_indexes: list[AccessIndex],
                           shard_id: int, keys: list[Row]) -> list[Row]:
        with self._locks[shard_id]:
            return shard_indexes[shard_id].lookup_flat(keys)

    # -- the encoded fetch surface -----------------------------------------

    def _shard_of_code_key(self, key, scalar: bool) -> int:
        """Shard placement for a *code* key.  Writers place groups by
        X-*value* hash, so readers decode the (few, distinct) keys back
        to values purely for placement — group data itself stays
        encoded end to end."""
        decode = self.dictionary.decode
        x_value = ((decode(key),) if scalar
                   else tuple(decode(code) for code in key))
        return hash(x_value) % self.shards

    def fetch_many_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> list[tuple[tuple, int]]:
        (_, _, key_perm, row_proj, dedup), shard_indexes = \
            self._resolved_indexes(constraint)
        keys = self._permute_keys(keys, key_perm)
        scalar = shard_indexes[0].scalar_key
        count = len(keys)
        if count == 1:
            shard_id = self._shard_of_code_key(keys[0], scalar)
            with self._locks[shard_id]:
                return shard_indexes[shard_id].lookup_many_encoded(
                    keys, row_proj, dedup)
        buckets: list[list[int]] = [[] for _ in range(self.shards)]
        for position, key in enumerate(keys):
            buckets[self._shard_of_code_key(key, scalar)].append(position)
        touched = [shard_id for shard_id in range(self.shards)
                   if buckets[shard_id]]
        out: list = [None] * count
        if len(touched) == 1:
            shard_id = touched[0]
            with self._locks[shard_id]:
                return shard_indexes[shard_id].lookup_many_encoded(
                    keys, row_proj, dedup)
        if self._use_pool(count, len(touched)):
            pool = self._pool_instance()
            futures = [
                pool.submit(self._lookup_shard_encoded, shard_indexes,
                            shard_id, keys, buckets[shard_id], out,
                            row_proj, dedup)
                for shard_id in touched]
            for future in futures:
                future.result()
        else:
            for shard_id in touched:
                self._lookup_shard_encoded(shard_indexes, shard_id, keys,
                                           buckets[shard_id], out,
                                           row_proj, dedup)
        return out

    def _lookup_shard_encoded(self, shard_indexes: list[AccessIndex],
                              shard_id: int, keys: Sequence,
                              positions: list[int], out: list,
                              row_proj, dedup) -> None:
        with self._locks[shard_id]:
            shard_indexes[shard_id].lookup_scatter_encoded(
                keys, positions, out, row_proj, dedup)

    def fetch_flat_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> tuple[list, int]:
        (_, _, key_perm, row_proj, dedup), shard_indexes = \
            self._resolved_indexes(constraint)
        keys = self._permute_keys(keys, key_perm)
        scalar = shard_indexes[0].scalar_key
        if len(keys) == 1:
            shard_id = self._shard_of_code_key(keys[0], scalar)
            with self._locks[shard_id]:
                return shard_indexes[shard_id].lookup_flat_encoded(
                    keys, row_proj, dedup)
        buckets: list[list] = [[] for _ in range(self.shards)]
        for key in keys:
            buckets[self._shard_of_code_key(key, scalar)].append(key)
        touched = [shard_id for shard_id in range(self.shards)
                   if buckets[shard_id]]
        if self._use_pool(len(keys), len(touched)):
            pool = self._pool_instance()
            futures = [
                pool.submit(self._lookup_shard_flat_encoded, shard_indexes,
                            shard_id, buckets[shard_id], row_proj, dedup)
                for shard_id in touched]
            parts = [future.result() for future in futures]
        else:
            parts = [self._lookup_shard_flat_encoded(
                shard_indexes, shard_id, buckets[shard_id], row_proj, dedup)
                for shard_id in touched]
        width = (shard_indexes[0].width if row_proj is None
                 else len(row_proj))
        out = [int_column() for _ in range(width)]
        total = 0
        for cols, length in parts:
            if not length:
                continue
            if not total:
                out = cols  # adopt the first non-empty shard's arrays
            else:
                for i in range(width):
                    out[i].extend(cols[i])
            total += length
        return out, total

    def _lookup_shard_flat_encoded(self, shard_indexes: list[AccessIndex],
                                   shard_id: int, keys: list,
                                   row_proj, dedup) -> tuple[list, int]:
        with self._locks[shard_id]:
            return shard_indexes[shard_id].lookup_flat_encoded(
                keys, row_proj, dedup)

    def constraint_groups(self, constraint: AccessConstraint
                          ) -> Iterator[tuple[Row, int]]:
        _, shard_indexes = self._resolved_indexes(constraint)
        snapshot: list[tuple[Row, int]] = []
        for shard_id, index in enumerate(shard_indexes):
            with self._locks[shard_id]:
                snapshot.extend((x, index.group_size(x))
                                for x in index.x_values())
        return iter(snapshot)

    def indexes_for(self, relation_name: str) -> list[AccessIndex]:
        return [index
                for shard_indexes in self._indexes_by_relation(relation_name)
                for index in shard_indexes]

    def describe(self) -> str:
        suffix = f", workers={self.workers}" if self.workers else ""
        return f"sharded(shards={self.shards}{suffix})"

    def close(self) -> None:
        """Shut down the lazily created lookup pool (idempotent)."""
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=False)


BACKENDS = ("memory", "sharded", "disk", "procshard")


def make_backend(name: str, schema: Schema, *, shards: int = 8,
                 workers: int = 0, replicas: int = 0, data_dir=None,
                 fsync: bool = False,
                 rpc_timeout_s: float | None = None) -> StorageBackend:
    """Build a backend by name — the CLI's ``--backend`` hook.

    ``workers`` means the lookup thread-pool size for ``sharded``
    (CLI: ``--shard-threads``) and the shard *process* count for
    ``procshard`` (CLI: ``--shard-workers``); ``replicas`` is the
    WAL-shipped read-replica process count and ``rpc_timeout_s`` the
    per-RPC peer timeout for ``procshard`` (CLI: ``--rpc-timeout``).

    Adding an engine means implementing :class:`StorageBackend` and
    registering it here (see README, "Adding a storage backend").
    """
    if name == "memory":
        return MemoryBackend(schema)
    if name == "sharded":
        return ShardedBackend(schema, shards=shards, workers=workers)
    if name == "disk":
        if data_dir is None:
            raise StorageError(
                "the disk backend needs a data directory; pass "
                "data_dir=... (CLI: --data-dir DIR)")
        from .disk import DiskBackend  # deferred: keeps backend.py cycle-free
        return DiskBackend(schema, data_dir, fsync=fsync)
    if name == "procshard":
        from .procshard import ProcessShardedBackend  # deferred, as above
        return ProcessShardedBackend(
            schema, workers=workers or 4, replicas=replicas,
            data_dir=data_dir, fsync=fsync, rpc_timeout_s=rpc_timeout_s)
    raise StorageError(
        f"unknown storage backend {name!r}; available: "
        f"{', '.join(BACKENDS)}")
