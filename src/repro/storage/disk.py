"""The durable storage engine: snapshot segments plus a write-ahead log.

:class:`DiskBackend` keeps the *read path* of
:class:`~repro.storage.backend.MemoryBackend` — rows in dicts, one
memoized :class:`~repro.storage.indexes.AccessIndex` per attached
constraint, so bounded fetches stay O(|answer|) — and puts *durability*
behind the same vectorized boundary:

* every effective write appends one framed record to ``wal.log``
  *before* it mutates the in-memory store (write-ahead), under the same
  lock that orders the index updates and the generation bump;
* :meth:`DiskBackend.snapshot` compacts the log: it writes one segment
  file per relation plus a manifest into a fresh ``snap-NNNNNN/``
  directory, atomically repoints ``CURRENT`` at it, then truncates the
  WAL and prunes obsolete snapshot directories;
* opening a directory replays the WAL over the latest snapshot.
  Replay is convergent — insert/delete records are absolute membership
  assignments per row — so a crash *between* publishing a snapshot and
  truncating the WAL is harmless: re-applying already-snapshotted
  records is a no-op.

On-disk layout (see README, "The disk engine")::

    data_dir/
      CURRENT            # name of the live snapshot dir (atomic rename)
      snap-000001/
        manifest.json    # {"format": 1, "snapshot": 1, "generations": {...}}
        <relation>.seg   # one framed record per row
      wal.log            # framed write records

Every durable file shares one framing: a record is the line
``<crc32 as 8 hex chars> <compact JSON payload>\\n``.  JSON never emits
a raw newline, so one record is exactly one line; a torn tail (partial
line, bad CRC, undecodable payload) identifies itself and recovery
discards it — and everything after it, since nothing later can be
trusted — then truncates the log so new records never append onto
garbage.

Write generations are durable too: each WAL record carries the
relation's *post-write* generation and the manifest stores the
generation map at snapshot time, so generations are monotonic across
restarts and a generation-keyed fetch cache can never alias a pre-crash
epoch onto post-crash contents.
"""

from __future__ import annotations

import json
import os
import pathlib
import shutil
import time
import zlib
from typing import Callable, Iterable

try:
    import fcntl
except ImportError:  # non-POSIX: advisory single-owner locking disabled
    fcntl = None

from ..errors import StorageError
from ..faults import fault_hook
from ..obs.trace import span
from ..schema.relation import Schema
from .backend import MemoryBackend

Row = tuple

#: Row values must round-trip through JSON *by equality* — silently
#: turning a tuple into a list would corrupt set semantics on reopen.
_DURABLE_TYPES = (str, int, float, bool, type(None))

_FORMAT = 1


def _frame(record) -> bytes:
    """One framed record: ``crc32(payload) payload\\n``."""
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    return b"%08x %s\n" % (zlib.crc32(payload), payload)


def scan_frames(path) -> tuple[list, int]:
    """Parse a framed file, stopping at the first damaged record.

    Returns ``(records, valid_length)`` where ``valid_length`` is the
    byte offset just past the last intact record — everything after it
    is a torn tail (partial write or corruption) the caller should
    discard.  Exposed as a plain function so recovery tests and
    diagnostics can inspect a log without a backend.
    """
    return scan_frame_bytes(pathlib.Path(path).read_bytes())


def scan_frame_bytes(data: bytes) -> tuple[list, int]:
    """:func:`scan_frames` over an in-memory chunk.

    Replication ships WAL byte ranges between processes; the receiver
    parses them with exactly the recovery scanner, so a chunk that ends
    mid-record (a torn tail in transit) is consumed only up to its last
    intact frame and the remainder is re-shipped later.
    """
    records: list = []
    offset = 0
    valid = 0
    while offset < len(data):
        end = data.find(b"\n", offset)
        if end < 0:
            break  # no newline: a partially flushed final record
        line = data[offset:end]
        if len(line) < 10 or line[8:9] != b" ":
            break
        try:
            crc = int(line[:8], 16)
        except ValueError:
            break
        payload = line[9:]
        if zlib.crc32(payload) != crc:
            break
        try:
            records.append(json.loads(payload.decode("utf-8")))
        except ValueError:
            break
        offset = end + 1
        valid = offset
    return records, valid


class DiskBackend(MemoryBackend):
    """A durable engine: MemoryBackend's hot path + WAL + snapshots.

    ``fsync=True`` additionally fsyncs the WAL after every record
    (power-loss durability); the default flushes to the OS per record,
    which survives process crashes — the failure mode the kill-point
    tests exercise.  One directory belongs to one live backend at a
    time; reopening the same directory is how a restart recovers.
    """

    def __init__(self, schema: Schema, data_dir, *, fsync: bool = False):
        super().__init__(schema)
        self.data_dir = pathlib.Path(data_dir)
        self.fsync = fsync
        self.data_dir.mkdir(parents=True, exist_ok=True)
        self._wal_path = self.data_dir / "wal.log"
        self._snapshot_id = 0
        # Internal tallies (plain numbers, mutated under self._lock):
        # cheap enough to keep always-on, surfaced via counters().
        self._counters: dict[str, int | float] = {
            "wal_records_total": 0,
            "wal_bytes_total": 0,
            "wal_fsyncs_total": 0,
            "wal_append_seconds_total": 0.0,
            "wal_fsync_seconds_total": 0.0,
            "snapshots_total": 0,
            "snapshot_seconds_total": 0.0,
            "replay_records_total": 0,
            "replay_torn_bytes_total": 0,
            "recovered_rows_total": 0,
            "recover_seconds_total": 0.0,
        }
        self._lock_handle = self._acquire_dir_lock()
        try:
            self._recover()
            self._wal = open(self._wal_path, "ab")
        except BaseException:
            self._release_dir_lock()
            raise

    def counters(self) -> dict:
        """WAL/fsync/snapshot/recovery tallies (a point-in-time copy),
        plus the base backend's dictionary size."""
        with self._lock:
            merged = super().counters()
            merged.update({key: round(value, 6) if isinstance(value, float)
                           else value
                           for key, value in self._counters.items()})
            return merged

    def _acquire_dir_lock(self):
        """One live backend per directory: a second opener snapshotting
        would truncate a WAL the first is still appending to.  An
        advisory ``flock`` enforces it (and evaporates with the process,
        so a crash never wedges the directory)."""
        if fcntl is None:
            return None
        handle = open(self.data_dir / "LOCK", "a+b")
        try:
            fcntl.flock(handle, fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            handle.close()
            raise StorageError(
                f"{self.data_dir} is already open in another live "
                "DiskBackend (possibly another process); close it first "
                "— one directory belongs to one backend at a time")
        return handle

    def _release_dir_lock(self) -> None:
        handle, self._lock_handle = self._lock_handle, None
        if handle is not None and not handle.closed:
            handle.close()  # closing drops the flock

    # -- recovery ----------------------------------------------------------

    def _recover(self) -> None:
        """Load the latest snapshot, then replay the WAL over it,
        truncating any torn tail."""
        started = time.perf_counter()
        with span("recover"):
            current = self.data_dir / "CURRENT"
            if current.is_file():
                self._load_snapshot(current.read_text().strip())
            if self._wal_path.is_file():
                records, valid = scan_frames(self._wal_path)
                for record in records:
                    self._replay(record)
                self._counters["replay_records_total"] += len(records)
                torn = self._wal_path.stat().st_size - valid
                if torn > 0:
                    self._counters["replay_torn_bytes_total"] += torn
                    with open(self._wal_path, "r+b") as handle:
                        handle.truncate(valid)
            self._counters["recovered_rows_total"] += sum(
                len(store) for store in self._rows.values())
        self._counters["recover_seconds_total"] += (
            time.perf_counter() - started)

    def _load_snapshot(self, name: str) -> None:
        snap_dir = self.data_dir / name
        manifest_path = snap_dir / "manifest.json"
        if not manifest_path.is_file():
            raise StorageError(
                f"{self.data_dir}: CURRENT points at {name!r} but "
                f"{manifest_path} is missing — the directory is damaged "
                "beyond what WAL recovery can repair")
        try:
            manifest = json.loads(manifest_path.read_text())
        except ValueError as error:
            raise StorageError(
                f"{manifest_path} is not valid JSON: {error}") from error
        generations = manifest.get("generations")
        if (manifest.get("format") != _FORMAT
                or not isinstance(generations, dict)):
            raise StorageError(
                f"{manifest_path}: unsupported manifest (expected "
                f"format {_FORMAT} with a generations map)")
        if set(generations) != set(self.schema.relation_names()):
            raise StorageError(
                f"{self.data_dir} was written for relations "
                f"{sorted(generations)} but this schema defines "
                f"{sorted(self.schema.relation_names())}; point the disk "
                "backend at a directory built for the same schema")
        self._snapshot_id = int(manifest.get("snapshot", 0))
        for relation_name in self.schema.relation_names():
            segment = snap_dir / f"{relation_name}.seg"
            if not segment.is_file():
                raise StorageError(
                    f"{snap_dir} has no segment for relation "
                    f"{relation_name!r} — the snapshot is incomplete")
            rows, valid = scan_frames(segment)
            if valid < segment.stat().st_size:
                # Segments are fully written (and, in fsync mode,
                # synced) before CURRENT is repointed, so a short
                # segment is corruption, not a torn tail.
                raise StorageError(
                    f"{segment} is damaged at byte {valid}; restore the "
                    "directory from a backup")
            store = self._rows[relation_name]
            for row in rows:
                store[tuple(row)] = None
            self._generations[relation_name] = int(
                generations[relation_name])

    def _replay(self, record) -> None:
        """Apply one WAL record to the in-memory store (no indexes are
        attached during recovery, so only rows and generations move)."""
        try:
            op = record[0]
            if op == "i" or op == "d":
                _, relation_name, generation, rows = record
                store = self._rows[relation_name]
                if op == "i":
                    for row in rows:
                        store[tuple(row)] = None
                else:
                    for row in rows:
                        store.pop(tuple(row), None)
                self._generations[relation_name] = max(
                    self._generations[relation_name], int(generation))
            elif op == "c":
                _, generations = record
                for store in self._rows.values():
                    store.clear()
                for relation_name, generation in generations.items():
                    self._generations[relation_name] = max(
                        self._generations[relation_name], int(generation))
            else:
                raise StorageError(
                    f"{self._wal_path}: unknown WAL record kind {op!r}")
        except (KeyError, TypeError, ValueError, IndexError) as error:
            raise StorageError(
                f"{self._wal_path}: WAL record {record!r} does not fit "
                f"this schema ({error!r}); the directory was written by "
                "a different schema or a newer format") from error

    # -- the write-ahead log -----------------------------------------------

    def _log(self, record) -> None:
        """Append one record durably *before* the in-memory mutation it
        describes (callers hold ``self._lock``)."""
        try:
            data = _frame(record)
        except TypeError as error:
            raise StorageError(
                f"rows on the disk backend must contain only "
                f"JSON-roundtrippable scalars "
                f"({', '.join(t.__name__ for t in _DURABLE_TYPES)}): "
                f"{error}") from error
        counters = self._counters
        fault = fault_hook("wal_append")
        if fault is not None and fault.kind == "torn_tail":
            # Crash mid-append: flush only a prefix of the frame and
            # fail the write.  Recovery (and the kill-point tests) must
            # treat the torn tail exactly like a power cut would leave
            # it — scanned up to the last intact record, then truncated.
            torn = data[:max(0, len(data) - int(fault.arg))]
            self._wal.write(torn)
            self._wal.flush()
            counters["wal_bytes_total"] += len(torn)
            raise StorageError(
                f"simulated crash mid-append (injected torn_tail fault, "
                f"{len(data) - len(torn)} bytes short)")
        started = time.perf_counter()
        with span("wal_append"):
            self._wal.write(data)
            self._wal.flush()
        appended = time.perf_counter()
        counters["wal_records_total"] += 1
        counters["wal_bytes_total"] += len(data)
        counters["wal_append_seconds_total"] += appended - started
        if self.fsync:
            with span("wal_fsync"):
                os.fsync(self._wal.fileno())
            counters["wal_fsyncs_total"] += 1
            counters["wal_fsync_seconds_total"] += (
                time.perf_counter() - appended)

    @staticmethod
    def _check_rows(rows: list[Row]) -> None:
        for row in rows:
            for value in row:
                # bool before int is irrelevant here: both are durable.
                if not isinstance(value, _DURABLE_TYPES):
                    raise StorageError(
                        f"row {row!r} contains a {type(value).__name__}; "
                        "the disk backend stores only JSON scalars "
                        "(str, int, float, bool, None)")

    # -- writes (WAL first, then the MemoryBackend structures) -------------

    def insert_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        store = self._rows[relation_name]
        batch = dict.fromkeys(tuple(row) for row in rows)
        with self._lock:
            fresh = [row for row in batch if row not in store]
            if not fresh:
                return 0
            self._check_rows(fresh)
            generation = self._generations[relation_name] + 1
            self._log(["i", relation_name, generation,
                       [list(row) for row in fresh]])
            indexes = self.indexes_for(relation_name)
            encode_row = self.dictionary.encode_row
            recorder = self._recorder(relation_name)
            for row in fresh:
                store[row] = None
                if indexes:
                    coded = encode_row(row)  # once per row, all indexes
                    for index in indexes:
                        if index.add(row, coded) and recorder is not None:
                            recorder.added(index, row, coded)
            self._generations[relation_name] = generation
            if recorder is not None:
                self._notify(recorder.finish(generation - 1, generation))
        return len(fresh)

    def delete_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        store = self._rows[relation_name]
        batch = dict.fromkeys(tuple(row) for row in rows)
        with self._lock:
            present = [row for row in batch if row in store]
            if not present:
                return 0
            generation = self._generations[relation_name] + 1
            self._log(["d", relation_name, generation,
                       [list(row) for row in present]])
            indexes = self.indexes_for(relation_name)
            encode_row = self.dictionary.encode_row
            recorder = self._recorder(relation_name)
            for row in present:
                del store[row]
                coded = (encode_row(row)
                         if indexes and recorder is not None else None)
                for index in indexes:
                    if index.remove(row, coded) and recorder is not None:
                        recorder.removed(index, row, coded)
            self._generations[relation_name] = generation
            if recorder is not None:
                self._notify(recorder.finish(generation - 1, generation))
        return len(present)

    def clear(self) -> None:
        with self._lock:
            generations = {name: generation + 1
                           for name, generation in self._generations.items()}
            self._log(["c", generations])
            for store in self._rows.values():
                store.clear()
            for index in self._indexes.values():
                index.remove_all()
            self._generations.update(generations)
            self._notify_wipes()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> pathlib.Path:
        """Compact: write all relations as segment files, publish the
        snapshot atomically, truncate the WAL, prune old snapshots.

        Crash-ordering: segments and manifest are complete (and, in
        fsync mode, synced — file contents, then the directory entries)
        in a temporary directory before the rename; ``CURRENT`` is
        replaced atomically; the WAL is truncated only after the new
        snapshot is live, and replaying it over the new snapshot would
        be a no-op anyway (records are absolute per-row assignments).
        """
        started = time.perf_counter()
        with span("snapshot"), self._lock:
            if self._wal.closed:
                raise StorageError(
                    f"{self.data_dir}: snapshot() on a closed backend — "
                    "it would truncate a WAL this instance no longer "
                    "owns; reopen the directory with a fresh DiskBackend")
            snapshot_id = self._snapshot_id + 1
            name = f"snap-{snapshot_id:06d}"
            staging = self.data_dir / (name + ".tmp")
            if staging.exists():
                shutil.rmtree(staging)
            staging.mkdir()
            for relation_name, store in self._rows.items():
                with open(staging / f"{relation_name}.seg", "wb") as out:
                    for row in store:
                        out.write(_frame(list(row)))
                    out.flush()
                    if self.fsync:
                        os.fsync(out.fileno())
            manifest = {"format": _FORMAT, "snapshot": snapshot_id,
                        "generations": dict(self._generations)}
            with open(staging / "manifest.json", "w") as out:
                out.write(json.dumps(manifest, indent=2, sort_keys=True)
                          + "\n")
                out.flush()
                if self.fsync:
                    os.fsync(out.fileno())
            # In fsync mode the *directory entries* must reach the
            # medium too: the staging dir before it is renamed into
            # place, the data dir after every rename/replace — without
            # these, power loss can persist the WAL truncation but not
            # the snapshot it depends on.
            self._sync_dir(staging)
            target = self.data_dir / name
            if target.exists():
                # A crash after a previous rename but before CURRENT was
                # repointed leaves an orphaned, unpublished snapshot dir
                # under this id; it is garbage, not data.
                shutil.rmtree(target)
            staging.rename(target)
            pointer = self.data_dir / "CURRENT.tmp"
            with open(pointer, "w") as out:
                out.write(name + "\n")
                out.flush()
                if self.fsync:
                    os.fsync(out.fileno())
            os.replace(pointer, self.data_dir / "CURRENT")
            self._sync_dir(self.data_dir)
            # The log's records are all reflected in the snapshot now.
            self._wal.close()
            self._wal = open(self._wal_path, "wb")
            self._snapshot_id = snapshot_id
            for stale in sorted(self.data_dir.glob("snap-*")):
                if stale.name != name:
                    shutil.rmtree(stale, ignore_errors=True)
            self._counters["snapshots_total"] += 1
            self._counters["snapshot_seconds_total"] += (
                time.perf_counter() - started)
            return self.data_dir / name

    def _sync_dir(self, directory: pathlib.Path) -> None:
        if not self.fsync:
            return
        fd = os.open(directory, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Flush and close the WAL handle and release the directory
        lock (idempotent).  A closed backend no longer accepts writes;
        reopen the directory with a fresh :class:`DiskBackend` — that
        reopen *is* the recovery path."""
        with self._lock:
            if not self._wal.closed:
                self._wal.flush()
                self._wal.close()
            self._release_dir_lock()

    def describe(self) -> str:
        suffix = ", fsync" if self.fsync else ""
        return (f"disk(dir={self.data_dir}, "
                f"snapshot={self._snapshot_id}{suffix})")


def disk_backend_factory(data_dir, *, fsync: bool = False
                         ) -> "Callable[[Schema], DiskBackend]":
    """A ``BackendFactory`` for the workload loaders and
    :func:`~repro.storage.io.load_database`: builds rows straight onto
    a durable engine in ``data_dir``."""
    def factory(schema: Schema) -> DiskBackend:
        return DiskBackend(schema, data_dir, fsync=fsync)
    return factory
