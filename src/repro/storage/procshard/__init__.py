"""Process-parallel sharded storage over the encoded fetch boundary.

See :mod:`.backend` for the coordinator, :mod:`.worker` for the
code-space shard servers, :mod:`.replica` for WAL-shipped read
replicas.
"""

from .backend import ProcessShardedBackend
from .replica import ReplicaState
from .worker import CodeIndex, WorkerState

__all__ = ["ProcessShardedBackend", "ReplicaState", "WorkerState",
           "CodeIndex"]
