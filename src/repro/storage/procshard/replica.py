"""WAL-shipped read replicas: recovery replay as a replication protocol.

A replica is a process holding a full copy of the database, kept
current by the coordinator *shipping* the writer's WAL instead of the
replica tailing files itself — the unit of replication is the byte
range, parsed with exactly the recovery scanner
(:func:`~repro.storage.disk.scan_frame_bytes`).  That buys the torn-
tail guarantee for free: a chunk that ends mid-record is consumed only
up to its last intact frame, the replica reports how many bytes it
took, and the coordinator re-ships the rest later.

Bootstrap is recovery too: the coordinator ships the current snapshot's
segment bytes, the manifest's generation map and the WAL tail, and the
replica loads them the same way a restarted :class:`~repro.storage.
disk.DiskBackend` would.  When the writer compacts (``snapshot()``
truncates the WAL), shipped offsets die with the old log; the
coordinator detects the snapshot-id change and re-bootstraps.

Dictionary coherence: WAL records carry *values* (JSON scalars), but
fetches speak *codes*.  The coordinator ships dictionary deltas —
``values[known:]`` slices, codes being dense and append-only — with
every chunk, and the replica mirrors the bijection; meeting a value
without a code means the replica missed a delta and the error response
triggers a re-bootstrap.

Per-relation generations are the staleness signal: the coordinator
serves a bounded fetch from a replica only when the replica's durable
generation for the relation has caught up to the writer's, which keeps
the generation-keyed fetch cache sound (a replica can only ever be
*ahead* of the generation the reader observed, the same benign race
the in-process engines document).

:class:`ReplicaState` is importable and file-free so the kill-point
tests can drive torn chunks against a :class:`~repro.storage.backend.
MemoryBackend` oracle without spawning processes.
"""

from __future__ import annotations

from ..disk import scan_frame_bytes
from .worker import CodeIndex, serve_loop

Row = tuple


class ReplicaError(Exception):
    """A replica-side apply/lookup failure (shipped back as ``err``;
    the coordinator's response is to re-bootstrap the replica)."""


class ReplicaState:
    """One replica's whole state: row stores, generation map, the
    dictionary mirror and one :class:`CodeIndex` per constraint."""

    def __init__(self) -> None:
        self.stores: dict[str, dict[Row, None]] = {}
        self.generations: dict[str, int] = {}
        self.values: list = []
        self.codes: dict = {}
        # cid -> (relation, x_positions, y_positions, CodeIndex)
        self.indexes: dict[int, tuple] = {}
        self.wal_offset = 0
        self.snapshot_id = -1

    # -- dictionary mirror -------------------------------------------------

    def extend_values(self, delta: list) -> None:
        codes = self.codes
        for value in delta:
            codes.setdefault(value, len(self.values))
            self.values.append(value)

    def _encode(self, row: Row) -> tuple:
        try:
            return tuple(self.codes[value] for value in row)
        except KeyError as error:
            raise ReplicaError(
                f"value {error.args[0]!r} has no dictionary code on this "
                "replica — a delta was missed; re-bootstrap") from error

    # -- bootstrap (snapshot + tail, same shape as disk recovery) ----------

    def bootstrap(self, payload: dict) -> dict:
        self.stores = {name: {} for name in payload["generations"]}
        self.generations = {name: int(generation) for name, generation
                            in payload["generations"].items()}
        self.values = []
        self.codes = {}
        self.extend_values(payload["values"])
        self.indexes = {
            cid: (relation, tuple(x_positions), tuple(y_positions),
                  CodeIndex(len(x_positions),
                            len(x_positions) + len(y_positions)))
            for cid, relation, x_positions, y_positions
            in payload["specs"]}
        for relation, segment in payload["segments"].items():
            rows, valid = scan_frame_bytes(segment)
            if valid < len(segment):
                raise ReplicaError(
                    f"shipped snapshot segment for {relation!r} is "
                    f"damaged at byte {valid}")
            store = self.stores[relation]
            for row in rows:
                self._add_row(relation, store, tuple(row))
        self.wal_offset = 0
        self.snapshot_id = int(payload["snapshot_id"])
        self.apply_wal(payload["wal"], [])
        return {"wal_offset": self.wal_offset,
                "generations": dict(self.generations)}

    # -- WAL shipping ------------------------------------------------------

    def apply_wal(self, chunk: bytes, delta: list) -> dict:
        """Apply the complete frames of one shipped byte range.

        Returns the consumed byte count (a torn tail is left for the
        next ship) and the post-apply generation map.
        """
        self.extend_values(delta)
        records, consumed = scan_frame_bytes(chunk)
        for record in records:
            self._apply_record(record)
        self.wal_offset += consumed
        return {"consumed": consumed,
                "generations": dict(self.generations)}

    def _apply_record(self, record) -> None:
        op = record[0]
        if op == "i" or op == "d":
            _, relation, generation, rows = record
            store = self.stores[relation]
            if op == "i":
                for row in rows:
                    self._add_row(relation, store, tuple(row))
            else:
                for row in rows:
                    self._remove_row(relation, store, tuple(row))
            self.generations[relation] = max(
                self.generations[relation], int(generation))
        elif op == "c":
            _, generations = record
            for store in self.stores.values():
                store.clear()
            for _, _, _, index in self.indexes.values():
                index.remove_all()
            for relation, generation in generations.items():
                self.generations[relation] = max(
                    self.generations[relation], int(generation))
        else:
            raise ReplicaError(f"unknown WAL record kind {op!r}")

    # Membership checks make re-application convergent (bootstrap may
    # replay WAL records the snapshot already contains), and they keep
    # the index witness counts exact: an index add/remove happens iff
    # the row actually entered/left the store.

    def _add_row(self, relation: str, store: dict, row: Row) -> None:
        if row in store:
            return
        store[row] = None
        coded = None
        for spec_relation, x_positions, y_positions, index \
                in self.indexes.values():
            if spec_relation != relation:
                continue
            if coded is None:
                coded = self._encode(row)
            index.add(tuple(coded[i] for i in x_positions)
                      + tuple(coded[i] for i in y_positions))

    def _remove_row(self, relation: str, store: dict, row: Row) -> None:
        if row not in store:
            return
        del store[row]
        coded = None
        for spec_relation, x_positions, y_positions, index \
                in self.indexes.values():
            if spec_relation != relation:
                continue
            if coded is None:
                coded = self._encode(row)
            index.remove(tuple(coded[i] for i in x_positions)
                         + tuple(coded[i] for i in y_positions))

    # -- serving -----------------------------------------------------------

    def handle(self, request: tuple):
        op = request[0]
        if op == "ff":
            _, cid, keys, row_proj, dedup = request
            return self.indexes[cid][3].lookup_flat_encoded(
                keys, row_proj, dedup)
        if op == "fm":
            _, cid, keys, row_proj, dedup = request
            return self.indexes[cid][3].lookup_many_encoded(
                keys, row_proj, dedup)
        if op == "wal":
            _, chunk, delta = request
            return self.apply_wal(chunk, delta)
        if op == "bootstrap":
            return self.bootstrap(request[1])
        if op == "gens":
            return dict(self.generations)
        if op == "stats":
            return {"rows": sum(len(store)
                                for store in self.stores.values()),
                    "wal_offset": self.wal_offset,
                    "snapshot_id": self.snapshot_id,
                    "dictionary_size": len(self.values)}
        if op == "ping":
            return "pong"
        raise ReplicaError(f"unknown replica op {op!r}")


def replica_main(conn) -> None:
    """Process entry point: serve until ``stop`` or pipe EOF."""
    serve_loop(conn, ReplicaState().handle)
