"""The shard worker: a pure code-space index server in its own process.

A worker never sees a Python *value*: the coordinator owns the
:class:`~repro.storage.encoding.ValueDictionary`, encodes every row at
insert time, projects it into each attached constraint's ``X∪Y``
layout and ships only the resulting code tuples.  Requests cross the
pipe as ``(constraint id, code keys)``; responses come back as flat
``array('q')`` code columns — exactly the encoded fetch boundary from
the in-process engines, reused as the RPC surface.

:class:`CodeIndex` mirrors :class:`~repro.storage.indexes.AccessIndex`
witness-count semantics in code space: an ``X∪Y`` projection survives
until its last witness row is deleted, and lookups return freshly
built arrays with the same ``row_proj``/``dedup`` behaviour, so a
worker answer is bit-identical to the in-process index's.

``worker_main`` is the spawn-safe process entry point: a plain
module-level request loop over a :class:`multiprocessing.Connection`.
Every reply is ``("ok", payload)`` or ``("err", message)``; the worker
exits when the pipe closes (coordinator death) or on ``("stop",)``.
"""

from __future__ import annotations

import time
from typing import Sequence

from ..encoding import int_column
from ..indexes import _EncodedGroup

Codes = tuple  # one stored row as a tuple of X∪Y dictionary codes


class CodeIndex:
    """One constraint's shard-local index, keyed and stored as codes.

    Keys follow the encoded-boundary convention: a bare int code when
    ``|X| == 1``, a code tuple otherwise.
    """

    __slots__ = ("x_len", "width", "scalar_key", "_counts", "_encoded")

    def __init__(self, x_len: int, width: int):
        self.x_len = x_len
        self.width = width
        self.scalar_key = x_len == 1
        # key -> {y-code tuple -> witness count}; the count makes
        # deletion exact when X∪Y projects several stored rows onto
        # one code tuple (same contract as AccessIndex._groups).
        self._counts: dict = {}
        self._encoded: dict[object, _EncodedGroup] = {}

    def key_of(self, row_codes: Sequence[int]):
        return (row_codes[0] if self.scalar_key
                else tuple(row_codes[:self.x_len]))

    def add(self, row_codes: Codes) -> None:
        key = self.key_of(row_codes)
        y_key = tuple(row_codes[self.x_len:])
        group = self._counts.setdefault(key, {})
        count = group.get(y_key, 0)
        group[y_key] = count + 1
        if count:
            return
        entry = self._encoded.get(key)
        if entry is None:
            entry = self._encoded[key] = _EncodedGroup(self.width)
        entry.append(row_codes, y_key)

    def remove(self, row_codes: Codes) -> None:
        key = self.key_of(row_codes)
        y_key = tuple(row_codes[self.x_len:])
        group = self._counts.get(key)
        if group is None:
            return
        count = group.get(y_key)
        if count is None:
            return
        if count > 1:
            group[y_key] = count - 1
            return
        del group[y_key]
        if not group:
            del self._counts[key]
        entry = self._encoded.get(key)
        if entry is not None:
            entry.discard(y_key, self.x_len)
            if not entry.pos:
                del self._encoded[key]

    def remove_all(self) -> None:
        self._counts.clear()
        self._encoded.clear()

    # Lookup semantics are copied from AccessIndex.lookup_*_encoded so
    # a worker's answer matches the in-process index bit for bit.

    def lookup_flat_encoded(self, keys: Sequence, row_proj, dedup
                            ) -> tuple[list, int]:
        encoded = self._encoded
        width = self.width if row_proj is None else len(row_proj)
        out = [int_column() for _ in range(width)]
        if not width:
            return out, 0
        if row_proj is None:
            # The no-projection gather is the RPC fast path (every
            # flat boundary replay lands here); zip over bound
            # columns beats indexed access per key.
            get = encoded.get
            for key in keys:
                entry = get(key)
                if entry is not None:
                    for out_col, col in zip(out, entry.cols):
                        out_col.extend(col)
            return out, len(out[0])
        for key in keys:
            entry = encoded.get(key)
            if entry is None:
                continue
            projected = [entry.cols[p] for p in row_proj]
            if dedup:
                if width == 1:
                    for code in dict.fromkeys(projected[0]):
                        out[0].append(code)
                else:
                    for row in dict.fromkeys(zip(*projected)):
                        for i in range(width):
                            out[i].append(row[i])
            else:
                for i in range(width):
                    out[i].extend(projected[i])
        return out, len(out[0])

    def lookup_one_encoded(self, key, row_proj, dedup) -> tuple[tuple, int]:
        entry = self._encoded.get(key)
        if entry is None:
            return tuple(int_column() for _ in range(
                self.width if row_proj is None else len(row_proj))), 0
        if row_proj is None:
            cols = tuple(column[:] for column in entry.cols)
            return cols, len(entry)
        projected = [entry.cols[p] for p in row_proj]
        if dedup:
            if len(projected) == 1:
                column = int_column(dict.fromkeys(projected[0]))
                return (column,), len(column)
            rows = list(dict.fromkeys(zip(*projected)))
            return (tuple(int_column(row[i] for row in rows)
                          for i in range(len(projected))), len(rows))
        return tuple(column[:] for column in projected), len(projected[0])

    def lookup_many_encoded(self, keys: Sequence, row_proj, dedup
                            ) -> list[tuple[tuple, int]]:
        return [self.lookup_one_encoded(key, row_proj, dedup)
                for key in keys]

    def group_count(self) -> int:
        return len(self._counts)


class WorkerState:
    """The request dispatcher — importable so tests can drive the
    protocol in-process, without a child."""

    def __init__(self) -> None:
        self.indexes: dict[int, CodeIndex] = {}
        # Mirror of the coordinator dictionary's value list.  Workers
        # never decode (everything stays in code space); the mirror
        # exists so ``stats`` can report coherence with the
        # coordinator's dictionary, which ships deltas per write batch.
        self.values: list = []

    def handle(self, request: tuple):
        op = request[0]
        if op == "ff":
            _, cid, keys, row_proj, dedup = request
            return self.indexes[cid].lookup_flat_encoded(
                keys, row_proj, dedup)
        if op == "fm":
            _, cid, keys, row_proj, dedup = request
            return self.indexes[cid].lookup_many_encoded(
                keys, row_proj, dedup)
        if op == "write":
            _, ops, delta = request
            self.values.extend(delta)
            for cid, deleting, rows in ops:
                index = self.indexes[cid]
                apply_one = index.remove if deleting else index.add
                for row_codes in rows:
                    apply_one(row_codes)
            return len(ops)
        if op == "attach":
            _, specs, rows_by_cid, values = request
            self.values = list(values)
            self.indexes = {cid: CodeIndex(x_len, width)
                            for cid, x_len, width in specs}
            for cid, rows in rows_by_cid.items():
                index = self.indexes[cid]
                for row_codes in rows:
                    index.add(row_codes)
            return len(self.indexes)
        if op == "clear":
            for index in self.indexes.values():
                index.remove_all()
            return True
        if op == "stats":
            return {"constraints": len(self.indexes),
                    "dictionary_size": len(self.values),
                    "groups": sum(index.group_count()
                                  for index in self.indexes.values())}
        if op == "ping":
            return "pong"
        if op == "sleep":
            # Chaos/test hook: wedge this worker for N seconds, as a
            # stand-in for a request stuck on a lost lock or a runaway
            # computation.  The coordinator's close()/timeout
            # escalation paths are tested against exactly this.
            time.sleep(request[1])
            return True
        raise ValueError(f"unknown worker op {op!r}")


def serve_loop(conn, handler) -> None:
    """The shared request loop for worker and replica processes: recv,
    dispatch, reply ``("ok", payload)`` / ``("err", message)``; exit on
    ``("stop",)`` or when the pipe closes (coordinator death)."""
    while True:
        try:
            request = conn.recv()
        except (EOFError, OSError):
            return  # coordinator went away; nothing to clean up
        if request[0] == "stop":
            try:
                conn.send(("ok", True))
            except (BrokenPipeError, OSError):
                pass
            return
        try:
            payload = handler(request)
        except Exception as error:  # ship the failure, keep serving
            conn.send(("err", f"{type(error).__name__}: {error}"))
        else:
            conn.send(("ok", payload))


def worker_main(conn) -> None:
    """Process entry point: serve requests until ``stop`` or EOF."""
    serve_loop(conn, WorkerState().handle)
