"""The process-sharded coordinator: the encoded boundary as an RPC.

:class:`ProcessShardedBackend` escapes the GIL by running each index
shard in its own **process** (spawn-safe, daemonic) and speaking the
encoded fetch boundary across the pipe: a request ships ``(constraint
id, encoded X-key codes)``, a response ships flat ``array('q')`` code
columns — the exact payloads the in-process engines already produce,
so nothing above storage changes and answers stay bit-identical.

Topology and ownership:

* the coordinator owns the *value* plane: the single
  :class:`~repro.storage.encoding.ValueDictionary`, the authoritative
  row stores (a :class:`~repro.storage.backend.MemoryBackend`, or a
  :class:`~repro.storage.disk.DiskBackend` when ``data_dir`` is given)
  and the per-relation generations — workers and replicas only ever
  see codes and WAL bytes derived from it;
* each of ``workers`` shard processes holds a code-space partition of
  every constraint's index, placed by ``hash(X-key codes) % workers``
  (codes are dense and append-only, so placement is stable and needs
  no decoding);
* each of ``replicas`` processes holds a *full* copy kept current by
  WAL shipping (see :mod:`.replica`), and the coordinator load-
  balances whole fetch batches across writer and replicas, serving a
  replica only when its durable per-relation generation has caught up
  — the staleness signal that keeps the generation-keyed fetch cache
  sound.

Write ordering (the cache-soundness contract): worker shipments happen
*before* the inner store applies and bumps the generation, so any
reader that observes the new generation is guaranteed to see the new
rows on every worker; a reader at the old generation may see them
early, the same benign direction the in-process engines document.  A
failed inner write triggers a compensating (inverse) shipment; a
failed worker is respawned and rebuilt from the authoritative store.

Fetches below ``fanout_threshold`` keys are served from the
coordinator's own store — pipe round trips only pay for themselves on
bulk batches.
"""

from __future__ import annotations

import atexit
import json
import multiprocessing
import threading
import time
import weakref
from typing import Iterable, Iterator, Sequence

from ...deadline import Deadline, current_deadline
from ...errors import DeadlineExceeded, StorageError
from ...faults import fault_hook
from ...obs.metrics import Histogram
from ...obs.trace import span
from ...schema.access import AccessConstraint, AccessSchema
from ...schema.relation import Schema
from ..backend import MemoryBackend, StorageBackend
from ..disk import DiskBackend
from ..encoding import int_column
from ..indexes import AccessIndex
from .replica import replica_main
from .resilience import HALF_OPEN, CircuitBreaker, RetryPolicy
from .worker import worker_main

Row = tuple

#: Spawn, not fork: workers must never inherit the coordinator's locks,
#: pipes or open WAL handles mid-state.
_SPAWN = multiprocessing.get_context("spawn")

#: Every live backend, swept at interpreter exit so a coordinator that
#: dies without ``close()`` (test harness teardown, SIGTERM handlers
#: that re-raise, plain sys.exit) still leaves zero child processes.
#: Children are daemonic *and* exit on pipe EOF, so this is the third
#: line of defence, not the first.
_LIVE_BACKENDS: "weakref.WeakSet[ProcessShardedBackend]" = weakref.WeakSet()


def _atexit_sweep() -> None:
    for backend in list(_LIVE_BACKENDS):
        try:
            backend.emergency_stop()
        except Exception:
            pass  # exit path: nothing useful to do with a failure


atexit.register(_atexit_sweep)


class _PeerFailure(Exception):
    """One worker/replica RPC failed (dead pipe, timeout, or an
    ``err`` reply).  Internal: call sites respawn/rebuild or fall back;
    this never escapes the backend.  ``deadline=True`` marks an abort
    caused by the *request's* deadline rather than peer health — call
    sites convert it to :class:`DeadlineExceeded` instead of respawning
    and retrying."""

    def __init__(self, peer: "_Peer | None", reason: str,
                 deadline: bool = False):
        super().__init__(reason)
        self.peer = peer
        self.deadline = deadline


class _Peer:
    """One child process plus its pipe and replication cursors."""

    __slots__ = ("index", "kind", "process", "conn", "lock",
                 "known_values", "wal_offset", "snapshot_id", "gens",
                 "sent_at", "poisoned")

    def __init__(self, index: int, kind: str, process, conn):
        self.index = index
        self.kind = kind  # "w" (shard worker) | "r" (replica)
        self.process = process
        self.conn = conn
        self.lock = threading.RLock()
        self.known_values = 0   # dictionary prefix this peer has seen
        self.wal_offset = 0     # bytes of the writer WAL shipped (replicas)
        self.snapshot_id = -1   # writer snapshot this peer booted from
        self.gens: dict[str, int] = {}
        self.sent_at = 0.0
        # A poisoned peer's pipe may hold an unconsumed reply (timeout
        # or deadline abort mid-exchange): the process can be healthy,
        # but request/response alignment is gone, so the bootstrap
        # paths must replace it rather than re-attach.
        self.poisoned = False


def _close_connections(conns: list) -> None:
    """GC finalizer: closing the pipes makes the daemonic children see
    EOF and exit, even when ``close()`` was never called."""
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass


class ProcessShardedBackend(StorageBackend):
    """Shard-per-process storage with optional WAL-shipped replicas.

    ``workers`` is the shard process count (>= 1); ``replicas`` adds
    read-replica processes and requires ``data_dir`` (replication ships
    the durable writer's WAL).  Without ``data_dir`` the authoritative
    store is in-memory and replicas are unavailable.
    """

    #: Same rationale as :attr:`ShardedBackend.FANOUT_THRESHOLD`, but
    #: for pipe round trips instead of pool submits: below this many
    #: keys the coordinator's local index wins outright.
    FANOUT_THRESHOLD = 32

    #: How long a single RPC may take before the peer is declared dead
    #: (overridable per backend; a request deadline tightens it further).
    RPC_TIMEOUT_S = 120.0

    #: Total budget for the polite phase of ``close()`` before the
    #: escalation to ``terminate()``/``kill()`` starts.
    CLOSE_TIMEOUT_S = 5.0

    def __init__(self, schema: Schema, workers: int = 4,
                 replicas: int = 0, data_dir=None, fsync: bool = False,
                 fanout_threshold: int | None = None,
                 rpc_timeout_s: float | None = None,
                 close_timeout_s: float | None = None,
                 retry_policy: RetryPolicy | None = None,
                 breaker_failure_threshold: int = 3,
                 breaker_reset_after_s: float = 5.0):
        if workers < 1:
            raise StorageError(
                f"procshard needs at least one worker process, "
                f"got {workers}")
        if replicas < 0:
            raise StorageError(
                f"replica count must be >= 0, got {replicas}")
        if replicas and data_dir is None:
            raise StorageError(
                "WAL-shipped replicas need a durable writer; pass "
                "data_dir=... (CLI: --data-dir DIR)")
        super().__init__(schema)
        self._store: MemoryBackend = (
            DiskBackend(schema, data_dir, fsync=fsync)
            if data_dir is not None else MemoryBackend(schema))
        # One truth for codes and epochs: alias the inner store's
        # dictionary and generation map (the same mutable objects —
        # both sides only ever mutate in place, never rebind).
        self.dictionary = self._store.dictionary
        self._generations = self._store._generations
        self.workers = workers
        self.replicas = replicas
        self.fanout_threshold = (self.FANOUT_THRESHOLD
                                 if fanout_threshold is None
                                 else max(0, fanout_threshold))
        self.rpc_timeout_s = (self.RPC_TIMEOUT_S if rpc_timeout_s is None
                              else float(rpc_timeout_s))
        if self.rpc_timeout_s <= 0:
            raise StorageError(
                f"rpc_timeout_s must be positive, got {self.rpc_timeout_s}")
        self.close_timeout_s = (self.CLOSE_TIMEOUT_S
                                if close_timeout_s is None
                                else float(close_timeout_s))
        self._retry = retry_policy if retry_policy is not None else (
            RetryPolicy(attempts=2, base_delay_s=0.02, seed=0))
        self._breakers = [
            CircuitBreaker(failure_threshold=breaker_failure_threshold,
                           reset_after_s=breaker_reset_after_s)
            for _ in range(replicas)]
        self._write_lock = threading.RLock()
        self._worker_peers: list[_Peer | None] = [None] * workers
        self._replica_peers: list[_Peer | None] = [None] * replicas
        # id(attached constraint) -> wire constraint id, plus the
        # per-constraint projection specs workers index by.
        self._cids: dict[int, int] = {}
        self._specs: list[tuple] = []  # (cid, constraint, x_pos, y_pos)
        self._rr = 0  # round-robin cursor over writer+replica targets
        self._closed = False
        self._counters: dict[str, int | float] = {
            "rpc_requests_total": 0,
            "rpc_bytes_shipped_total": 0,
            "rpc_bytes_received_total": 0,
            "rpc_roundtrip_seconds_total": 0.0,
            "worker_reads_total": 0,
            "replica_reads_total": 0,
            "local_reads_total": 0,
            "worker_respawns_total": 0,
            "replica_wal_bytes_shipped_total": 0,
            "replica_catchups_total": 0,
            "replica_bootstraps_total": 0,
            "rpc_timeouts_total": 0,
            "rpc_deadline_aborts_total": 0,
            "rpc_retries_total": 0,
            "replica_breaker_skips_total": 0,
            "close_escalations_total": 0,
        }
        for i in range(workers):
            self._counters[f"rpc_w{i}_requests_total"] = 0
            self._counters[f"rpc_w{i}_bytes_shipped_total"] = 0
        self._rpc_histogram = Histogram(
            "repro_storage_rpc_roundtrip_seconds",
            "Coordinator-observed RPC round trips (all peers)")
        self._worker_histograms = [
            Histogram(f"repro_storage_rpc_roundtrip_seconds_w{i}",
                      f"RPC round trips to shard worker {i}")
            for i in range(workers)]
        self._conns_for_gc: list = []
        self._finalizer = weakref.finalize(
            self, _close_connections, self._conns_for_gc)
        _LIVE_BACKENDS.add(self)

    # -- process plumbing --------------------------------------------------

    def _spawn(self, index: int, kind: str) -> _Peer:
        target = worker_main if kind == "w" else replica_main
        parent, child = _SPAWN.Pipe()
        process = _SPAWN.Process(
            target=target, args=(child,), daemon=True,
            name=f"repro-procshard-{kind}{index}")
        process.start()
        child.close()
        self._conns_for_gc.append(parent)
        return _Peer(index, kind, process, parent)

    def _retire(self, peer: _Peer) -> None:
        """Take a peer out of service before its replacement spawns:
        close the pipe (EOF ends a healthy child) and terminate the
        process if it is still alive (poisoned peers usually are)."""
        try:
            self._conns_for_gc.remove(peer.conn)
        except ValueError:
            pass
        try:
            peer.conn.close()
        except OSError:
            pass
        if peer.process.is_alive():
            peer.process.terminate()
            peer.process.join(timeout=1.0)
            if peer.process.is_alive():
                peer.process.kill()
                peer.process.join(timeout=1.0)

    def _send(self, peer: _Peer, message, shipped: int) -> None:
        if peer.poisoned:
            # The pipe may still hold the reply of an abandoned
            # request; sending would read that stale reply as this
            # request's answer.  Fail fast so the caller's normal
            # failure path (bootstrap → retry) replaces the peer.
            raise _PeerFailure(
                peer, f"{peer.kind}{peer.index} is poisoned (stale "
                      f"reply pending); awaiting replacement")
        counters = self._counters
        counters["rpc_requests_total"] += 1
        counters["rpc_bytes_shipped_total"] += shipped
        if peer.kind == "w":
            counters[f"rpc_w{peer.index}_requests_total"] += 1
            counters[f"rpc_w{peer.index}_bytes_shipped_total"] += shipped
        fault = fault_hook("rpc_send")
        if fault is not None:
            if fault.kind == "kill_peer":
                peer.process.kill()
                peer.process.join(timeout=5.0)
            elif fault.kind == "delay":
                time.sleep(fault.arg)
        peer.sent_at = time.perf_counter()
        try:
            peer.conn.send(message)
        except (OSError, ValueError) as error:
            raise _PeerFailure(
                peer, f"{peer.kind}{peer.index} send failed: "
                      f"{error}") from error

    def _recv(self, peer: _Peer, use_deadline: bool = True):
        counters = self._counters
        timeout = self.rpc_timeout_s
        deadline = current_deadline() if use_deadline else None
        if deadline is not None:
            timeout = deadline.timeout(timeout)
        fault = fault_hook("rpc_recv")
        if fault is not None:
            if fault.kind == "drop_reply":
                # Consume the real reply and report a timeout: the
                # failure paths run deterministically, without waiting
                # out a real timeout window.
                try:
                    if peer.conn.poll(timeout):
                        peer.conn.recv()
                except (EOFError, OSError):
                    pass
                peer.poisoned = True
                counters["rpc_timeouts_total"] += 1
                raise _PeerFailure(
                    peer, f"{peer.kind}{peer.index} reply dropped "
                          f"(injected fault)")
            if fault.kind == "delay":
                time.sleep(fault.arg)
        try:
            if not peer.conn.poll(timeout):
                # The pipe now holds (or will hold) a reply no caller
                # will consume: poison the peer so the bootstrap paths
                # replace it instead of re-attaching misaligned.
                peer.poisoned = True
                if deadline is not None and deadline.expired():
                    counters["rpc_deadline_aborts_total"] += 1
                    raise _PeerFailure(
                        peer, f"{peer.kind}{peer.index} abandoned: "
                              f"request deadline expired",
                        deadline=True)
                counters["rpc_timeouts_total"] += 1
                raise _PeerFailure(
                    peer, f"{peer.kind}{peer.index} timed out after "
                          f"{timeout:g}s")
            kind, payload = peer.conn.recv()
        except (EOFError, OSError) as error:
            raise _PeerFailure(
                peer, f"{peer.kind}{peer.index} recv failed: "
                      f"{error}") from error
        elapsed = time.perf_counter() - peer.sent_at
        counters["rpc_roundtrip_seconds_total"] += elapsed
        self._rpc_histogram.observe(elapsed)
        if peer.kind == "w":
            self._worker_histograms[peer.index].observe(elapsed)
        if kind != "ok":
            raise _PeerFailure(
                peer, f"{peer.kind}{peer.index} replied: {payload}")
        return payload

    def _request(self, peer: _Peer, message, shipped: int,
                 use_deadline: bool = True):
        if use_deadline:
            self._check_deadline_before_send(peer)
        with peer.lock:
            self._send(peer, message, shipped)
            return self._recv(peer, use_deadline=use_deadline)

    def _check_deadline_before_send(self, peer: "_Peer | None") -> None:
        """Refuse to ship a request whose deadline has already expired:
        nothing crosses the pipe, so no peer is poisoned and the abort
        is deterministic (a reply racing ``poll(0)`` could otherwise
        let an expired request through)."""
        deadline = current_deadline()
        if deadline is not None and deadline.expired():
            self._counters["rpc_deadline_aborts_total"] += 1
            raise _PeerFailure(
                peer, "request deadline expired before send",
                deadline=True)

    def _fanout(self, requests: "list[tuple[_Peer, tuple, int]]") -> list:
        """Ship a batch of requests (one per distinct peer, ascending
        index) pipelined: all sends first, then all receives.  Peer
        locks are held across the whole exchange so a concurrent
        caller can never interleave on a pipe; on failure, responses
        already in flight from *other* peers are drained so their
        pipes stay request/response aligned.  On a *deadline* abort
        the drain gets only a short grace per peer — peers whose reply
        still has not landed are poisoned and replaced later, because
        a deadline abort must not block for the full RPC timeout."""
        self._check_deadline_before_send(None)
        for peer in (peer for peer, _, _ in requests):
            peer.lock.acquire()
        outstanding: list[_Peer] = []
        try:
            for peer, message, shipped in requests:
                self._send(peer, message, shipped)
                outstanding.append(peer)
            results = []
            for peer, _, _ in requests:
                results.append(self._recv(peer))
                outstanding.remove(peer)
            return results
        except _PeerFailure as failure:
            grace = 0.05 if failure.deadline else self.rpc_timeout_s
            for peer in outstanding:
                if peer is failure.peer:
                    continue
                try:
                    if peer.conn.poll(grace):
                        peer.conn.recv()
                    else:
                        peer.poisoned = True
                except (EOFError, OSError):
                    pass
            raise
        finally:
            for peer, _, _ in reversed(requests):
                peer.lock.release()

    @staticmethod
    def _key_bytes(keys: Sequence) -> int:
        """Logical payload size of a key batch: 8 bytes per code.
        Deliberately *not* the pickled size — logical bytes are
        deterministic across Python versions, so they can sit in
        trajectory-gated counters."""
        if not keys:
            return 0
        width = 1 if isinstance(keys[0], int) else len(keys[0])
        return 8 * width * len(keys)

    # -- attach: spawn + bootstrap the fleet -------------------------------

    def attach_access_schema(self, access_schema: AccessSchema) -> None:
        with self._write_lock:
            self._store.attach_access_schema(access_schema)
            self.access_schema = access_schema
            self._reset_resolutions()
            self._cids = {}
            self._specs = []
            for cid, constraint in enumerate(access_schema):
                index = self._store._indexes[id(constraint)]
                self._cids[id(constraint)] = cid
                self._specs.append((cid, constraint,
                                    tuple(index.x_positions),
                                    tuple(index.y_positions)))
            for i in range(self.workers):
                self._bootstrap_worker(i)
            for i in range(self.replicas):
                self._bootstrap_replica(i)

    def _bootstrap_worker(self, i: int) -> None:
        """(Re)spawn worker ``i`` and rebuild its shard slice from the
        authoritative store (callers hold ``_write_lock`` or accept the
        pre-batch snapshot semantics documented on the write path)."""
        peer = self._worker_peers[i]
        if peer is None or peer.poisoned or not peer.process.is_alive():
            if peer is not None:
                self._retire(peer)
            peer = self._worker_peers[i] = self._spawn(i, "w")
        specs = []
        rows_by_cid: dict[int, list] = {}
        shipped = 0
        encode_row = self.dictionary.encode_row
        workers = self.workers
        for cid, constraint, x_positions, y_positions in self._specs:
            x_len = len(x_positions)
            width = x_len + len(y_positions)
            specs.append((cid, x_len, width))
            rows = rows_by_cid[cid] = []
            scalar = x_len == 1
            for row in self._store.scan(constraint.relation_name):
                coded = encode_row(row)
                key = (coded[x_positions[0]] if scalar
                       else tuple(coded[p] for p in x_positions))
                if hash(key) % workers != i:
                    continue
                rows.append(tuple(coded[p] for p in x_positions)
                            + tuple(coded[p] for p in y_positions))
            shipped += len(rows) * width * 8
        values = self.dictionary.values_from(0)
        # Bootstrap must complete even under an expired request
        # deadline: an un-rebuilt shard would poison every later
        # request, not just the one that ran out of time.
        self._request(peer, ("attach", specs, rows_by_cid, values),
                      shipped, use_deadline=False)
        peer.known_values = len(values)

    def _bootstrap_replica(self, i: int) -> bool:
        """(Re)spawn replica ``i`` and ship snapshot + WAL tail.
        Callers hold ``_write_lock``.  Returns False when the replica
        could not be brought up (reads then fall back)."""
        store = self._store
        if not isinstance(store, DiskBackend):
            return False
        peer = self._replica_peers[i]
        if peer is None or peer.poisoned or not peer.process.is_alive():
            if peer is not None:
                self._retire(peer)
            peer = self._replica_peers[i] = self._spawn(i, "r")
        if store._snapshot_id == 0:
            store.snapshot()  # first bootstrap needs a snapshot to ship
        current = (store.data_dir / "CURRENT").read_text().strip()
        snap_dir = store.data_dir / current
        manifest = json.loads((snap_dir / "manifest.json").read_text())
        segments = {name: (snap_dir / f"{name}.seg").read_bytes()
                    for name in self.schema.relation_names()}
        wal = (store._wal_path.read_bytes()
               if store._wal_path.is_file() else b"")
        values = self.dictionary.values_from(0)
        payload = {
            "segments": segments,
            "generations": manifest["generations"],
            "wal": wal,
            "values": values,
            "specs": [(cid, constraint.relation_name,
                       list(x_positions), list(y_positions))
                      for cid, constraint, x_positions, y_positions
                      in self._specs],
            "snapshot_id": store._snapshot_id,
        }
        shipped = sum(len(seg) for seg in segments.values()) + len(wal)
        try:
            result = self._request(peer, ("bootstrap", payload), shipped,
                                   use_deadline=False)
        except _PeerFailure:
            return False
        peer.known_values = len(values)
        peer.wal_offset = result["wal_offset"]
        peer.snapshot_id = store._snapshot_id
        peer.gens = result["generations"]
        self._counters["replica_bootstraps_total"] += 1
        self._counters["replica_wal_bytes_shipped_total"] += len(wal)
        return True

    def _workers_live(self) -> bool:
        return any(peer is not None for peer in self._worker_peers)

    # -- the write-delta maintenance hook ----------------------------------

    # Every write lands on the authoritative inner store (under
    # _write_lock, after shipping), so the store's own emission is the
    # complete, ordered delta stream — coordinator listeners simply
    # subscribe there.  The coordinator aliases the store's dictionary
    # and generation map, so deltas carry exactly the codes and
    # generations a coordinator-side cache observes.

    def add_write_listener(self, listener) -> None:
        self._store.add_write_listener(listener)

    def remove_write_listener(self, listener) -> None:
        self._store.remove_write_listener(listener)

    # -- writes (ship to workers, then apply to the store) -----------------

    def insert_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        batch = dict.fromkeys(tuple(row) for row in rows)
        with self._write_lock:
            store = self._store
            fresh = [row for row in batch
                     if not store.contains(relation_name, row)]
            if not fresh:
                return 0
            check = getattr(store, "_check_rows", None)
            if check is not None:  # fail before anything ships
                check(fresh)
            self._ship_write(relation_name, fresh, deleting=False)
            try:
                return store.insert_rows(relation_name, fresh)
            except BaseException:
                # Workers applied a batch the store rejected: undo it
                # so the shards never drift ahead of the truth.
                self._ship_write(relation_name, fresh, deleting=True)
                raise

    def delete_rows(self, relation_name: str, rows: Iterable[Row]) -> int:
        batch = dict.fromkeys(tuple(row) for row in rows)
        with self._write_lock:
            store = self._store
            present = [row for row in batch
                       if store.contains(relation_name, row)]
            if not present:
                return 0
            self._ship_write(relation_name, present, deleting=True)
            try:
                return store.delete_rows(relation_name, present)
            except BaseException:
                self._ship_write(relation_name, present, deleting=False)
                raise

    def clear(self) -> None:
        with self._write_lock:
            for peer in self._worker_peers:
                if peer is None:
                    continue
                try:
                    # Write-plane op: deadline-immune like every other
                    # shipped mutation (half-cleared shards would drift
                    # from the authoritative store).
                    self._request(peer, ("clear",), 0,
                                  use_deadline=False)
                except _PeerFailure as failure:
                    raise StorageError(
                        f"shard worker failed during clear: "
                        f"{failure}") from failure
            self._store.clear()

    def _ship_write(self, relation_name: str, rows: list[Row],
                    deleting: bool) -> None:
        """Project + encode the batch per constraint, bucket by shard
        and ship one ``write`` op (with its dictionary delta) to every
        touched worker.  Callers hold ``_write_lock``."""
        if not self._specs or not self._workers_live():
            return
        workers = self.workers
        encode_row = self.dictionary.encode_row
        ops: list[list] = [[] for _ in range(workers)]
        shipped = [0] * workers
        for cid, constraint, x_positions, y_positions in self._specs:
            if constraint.relation_name != relation_name:
                continue
            scalar = len(x_positions) == 1
            width = len(x_positions) + len(y_positions)
            buckets: list[list] = [[] for _ in range(workers)]
            for row in rows:
                coded = encode_row(row)
                key = (coded[x_positions[0]] if scalar
                       else tuple(coded[p] for p in x_positions))
                buckets[hash(key) % workers].append(
                    tuple(coded[p] for p in x_positions)
                    + tuple(coded[p] for p in y_positions))
            for w, bucket in enumerate(buckets):
                if bucket:
                    ops[w].append((cid, deleting, bucket))
                    shipped[w] += len(bucket) * width * 8
        for w in range(workers):
            if ops[w]:
                self._ship_write_one(w, ops[w], shipped[w])

    def _ship_write_one(self, w: int, ops: list, shipped: int) -> None:
        # Write shipping ignores the ambient request deadline: once a
        # batch starts crossing pipes it must land everywhere or be
        # compensated — aborting halfway would leave shards drifted
        # from the authoritative store.  Deadline enforcement for
        # writes belongs before this point.
        for attempt in (0, 1):
            peer = self._worker_peers[w]
            delta = self.dictionary.values_from(peer.known_values)
            try:
                self._request(peer, ("write", ops, delta), shipped,
                              use_deadline=False)
                peer.known_values += len(delta)
                return
            except _PeerFailure as failure:
                if attempt:
                    raise StorageError(
                        f"shard worker {w} failed during write "
                        f"shipping: {failure}") from failure
                # Respawn and rebuild from the store — which does not
                # yet contain this batch, so the retried op lands on a
                # clean pre-batch slice.
                self._counters["worker_respawns_total"] += 1
                self._counters["rpc_retries_total"] += 1
                self._bootstrap_worker(w)

    # -- reads: route encoded batches across workers and replicas ---------

    def _next_replica(self) -> int | None:
        """Round-robin over ``1 + replicas`` read targets; slot 0 is
        the writer (workers/local)."""
        if not self.replicas:
            return None
        slot = self._rr % (self.replicas + 1)
        self._rr += 1
        return None if slot == 0 else slot - 1

    def fetch_flat_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> tuple[list, int]:
        resolution, entry = self._store._resolved_indexes(constraint)
        _, attached, key_perm, row_proj, dedup = resolution
        cid = self._cids.get(id(attached))
        if (cid is None or len(keys) < self.fanout_threshold
                or not self._workers_live()):
            self._counters["local_reads_total"] += 1
            return self._store.fetch_flat_encoded(constraint, keys)
        wire_keys = self._permute_keys(keys, key_perm)
        width = entry.width if row_proj is None else len(row_proj)
        replica = self._next_replica()
        if replica is not None:
            result = self._replica_fetch(
                replica, "ff", cid, attached.relation_name, wire_keys,
                row_proj, dedup, width)
            if result is not None:
                return result
        result = self._worker_fetch(
            "ff", cid, wire_keys, row_proj, dedup, width)
        if result is not None:
            return result
        self._counters["local_reads_total"] += 1
        return self._store.fetch_flat_encoded(constraint, keys)

    def fetch_many_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> list[tuple[tuple, int]]:
        resolution, entry = self._store._resolved_indexes(constraint)
        _, attached, key_perm, row_proj, dedup = resolution
        cid = self._cids.get(id(attached))
        if (cid is None or len(keys) < self.fanout_threshold
                or not self._workers_live()):
            self._counters["local_reads_total"] += 1
            return self._store.fetch_many_encoded(constraint, keys)
        wire_keys = self._permute_keys(keys, key_perm)
        width = entry.width if row_proj is None else len(row_proj)
        replica = self._next_replica()
        if replica is not None:
            result = self._replica_fetch(
                replica, "fm", cid, attached.relation_name, wire_keys,
                row_proj, dedup, width)
            if result is not None:
                return result
        result = self._worker_fetch(
            "fm", cid, wire_keys, row_proj, dedup, width)
        if result is not None:
            return result
        self._counters["local_reads_total"] += 1
        return self._store.fetch_many_encoded(constraint, keys)

    def _worker_fetch(self, op: str, cid: int, keys: Sequence,
                      row_proj, dedup, width: int):
        """Fan an encoded batch out across the shard workers; one
        respawn-and-retry on a dead worker, None (fall back) after."""
        workers = self.workers
        positions: list[list[int]] | None
        if op == "ff":
            # Flat fetches need no per-key alignment, so keys are
            # bucketed directly instead of paying the position
            # indirection the aligned path below needs.  Bare int
            # codes are non-negative and hash to themselves, so the
            # modulo runs on the code itself — same placement as the
            # hash() the bootstrap partition uses, one call cheaper.
            buckets: list[list] = [[] for _ in range(workers)]
            appends = [bucket.append for bucket in buckets]
            if keys and type(keys[0]) is int:
                for key in keys:
                    appends[key % workers](key)
            else:
                for key in keys:
                    appends[hash(key) % workers](key)
            positions = None
            touched = [w for w in range(workers) if buckets[w]]
            payloads = [buckets[w] for w in touched]
        else:
            positions = [[] for _ in range(workers)]
            for position, key in enumerate(keys):
                positions[hash(key) % workers].append(position)
            touched = [w for w in range(workers) if positions[w]]
            payloads = [[keys[p] for p in positions[w]] for w in touched]
        attempts = max(2, self._retry.attempts)
        delays = self._retry.delays()
        for attempt in range(attempts):
            requests = [
                (self._worker_peers[w],
                 (op, cid, payload, row_proj, dedup),
                 self._key_bytes(payload))
                for w, payload in zip(touched, payloads)]
            try:
                with span("rpc_fetch"):
                    parts = self._fanout(requests)
                break
            except _PeerFailure as failure:
                if failure.deadline:
                    # The request ran out of time, not the peer out of
                    # health: no respawn, no retry, no local fallback —
                    # surface the typed abort to the caller.
                    raise DeadlineExceeded("procshard_rpc") from failure
                if attempt == attempts - 1:
                    return None
                self._counters["worker_respawns_total"] += 1
                self._counters["rpc_retries_total"] += 1
                backoff = next(delays, 0.0)
                if backoff:
                    time.sleep(backoff)
                dead = failure.peer
                with self._write_lock:
                    self._bootstrap_worker(
                        dead.index if dead is not None else 0)
        self._counters["worker_reads_total"] += 1
        if op == "fm":
            out: list = [None] * len(keys)
            received = 0
            for w, part in zip(touched, parts):
                for position, entry in zip(positions[w], part):
                    out[position] = entry
                    received += entry[1]
            self._counters["rpc_bytes_received_total"] += (
                received * width * 8)
            return out
        merged = [int_column() for _ in range(width)]
        total = 0
        for cols, length in parts:
            if not length:
                continue
            if not total:
                merged = cols  # adopt the first non-empty part's arrays
            else:
                for i in range(width):
                    merged[i].extend(cols[i])
            total += length
        self._counters["rpc_bytes_received_total"] += total * width * 8
        return merged, total

    def _replica_fetch(self, i: int, op: str, cid: int, relation: str,
                       keys: Sequence, row_proj, dedup, width: int):
        """Serve one whole batch from replica ``i`` iff its circuit
        breaker admits traffic and it has caught up to the writer's
        generation for ``relation``; None means the caller should use
        the writer path instead.  Failures feed the breaker, so a
        flapping replica degrades to writer-local reads (a counter
        bump per read) instead of a bootstrap storm."""
        breaker = self._breakers[i]
        if not breaker.allow():
            self._counters["replica_breaker_skips_total"] += 1
            return None
        peer = self._replica_peers[i]
        needed = self._generations[relation]
        if (peer is None or peer.poisoned
                or peer.gens.get(relation, -1) < needed):
            if not self._catch_up_replica(i):
                breaker.record_failure()
                return None
            peer = self._replica_peers[i]
            if peer is None or peer.gens.get(relation, -1) < needed:
                breaker.record_failure()
                return None
        try:
            with span("rpc_replica_fetch"):
                payload = self._request(
                    peer, (op, cid, keys, row_proj, dedup),
                    self._key_bytes(keys))
        except _PeerFailure as failure:
            if failure.deadline:
                raise DeadlineExceeded("procshard_replica_rpc") from failure
            breaker.record_failure()
            return None
        breaker.record_success()
        self._counters["replica_reads_total"] += 1
        if op == "fm":
            received = sum(length for _, length in payload)
            self._counters["rpc_bytes_received_total"] += (
                received * width * 8)
            return payload
        cols, length = payload
        self._counters["rpc_bytes_received_total"] += length * width * 8
        return cols, length

    def _catch_up_replica(self, i: int) -> bool:
        """Ship the WAL tail (or re-bootstrap after a writer
        compaction) so replica ``i`` reaches the writer's generations."""
        with self._write_lock:
            store = self._store
            if not isinstance(store, DiskBackend):
                return False
            peer = self._replica_peers[i]
            if (peer is None or peer.poisoned
                    or not peer.process.is_alive()
                    or peer.snapshot_id != store._snapshot_id):
                return self._bootstrap_replica(i)
            try:
                with open(store._wal_path, "rb") as handle:
                    handle.seek(peer.wal_offset)
                    chunk = handle.read()
            except OSError:
                return self._bootstrap_replica(i)
            fault = fault_hook("wal_ship")
            if fault is not None and fault.kind == "torn_tail":
                # Ship a chunk cut mid-frame: the replica must consume
                # only up to its last intact record and the remainder
                # re-ships on the next catch-up.
                chunk = chunk[:max(0, len(chunk) - int(fault.arg))]
            delta = self.dictionary.values_from(peer.known_values)
            try:
                result = self._request(
                    peer, ("wal", chunk, delta), len(chunk))
            except _PeerFailure as failure:
                if failure.deadline:
                    # Out of request time, not a replica fault: leave
                    # the (poisoned) peer for the housekeeping probe
                    # instead of re-bootstrapping on a dead budget.
                    return False
                return self._bootstrap_replica(i)
            peer.known_values += len(delta)
            peer.wal_offset += result["consumed"]
            peer.gens = result["generations"]
            self._counters["replica_catchups_total"] += 1
            self._counters["replica_wal_bytes_shipped_total"] += len(chunk)
            return True

    # -- the value plane delegates to the authoritative store --------------

    def scan(self, relation_name: str) -> list[Row]:
        return self._store.scan(relation_name)

    def relation_size(self, relation_name: str) -> int:
        return self._store.relation_size(relation_name)

    def contains(self, relation_name: str, row: Row) -> bool:
        return self._store.contains(relation_name, row)

    def fetch_many(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[list[Row]]:
        # Value-space fetches stay local: the RPC surface is the
        # *encoded* boundary (code keys in, code columns out); legacy
        # row traffic never crosses a pipe.
        return self._store.fetch_many(constraint, x_values)

    def fetch_flat(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[Row]:
        return self._store.fetch_flat(constraint, x_values)

    def constraint_groups(self, constraint: AccessConstraint
                          ) -> Iterator[tuple[Row, int]]:
        return self._store.constraint_groups(constraint)

    def indexes_for(self, relation_name: str) -> list[AccessIndex]:
        return self._store.indexes_for(relation_name)

    def snapshot(self):
        """Compact the durable writer (replicas re-bootstrap on their
        next read — the snapshot id is the epoch of the shipped WAL)."""
        if not isinstance(self._store, DiskBackend):
            raise StorageError(
                "snapshot() needs a durable procshard (data_dir=...)")
        with self._write_lock:
            return self._store.snapshot()

    # -- observability -----------------------------------------------------

    def counters(self) -> dict:
        merged = self._store.counters()
        merged.update({key: round(value, 6) if isinstance(value, float)
                       else value
                       for key, value in self._counters.items()})
        merged["replica_breaker_opens_total"] = sum(
            breaker.opens_total for breaker in self._breakers)
        return merged

    def gauges(self) -> dict:
        levels = super().gauges()
        levels["workers_alive"] = sum(
            1 for peer in self._worker_peers
            if peer is not None and peer.process.is_alive())
        levels["replicas_alive"] = sum(
            1 for peer in self._replica_peers
            if peer is not None and peer.process.is_alive())
        for i, breaker in enumerate(self._breakers):
            # 0=closed, 1=open, 2=half-open (resilience module encoding).
            levels[f"replica_breaker_state_r{i}"] = breaker.state
        return levels

    def histograms(self) -> list:
        return [self._rpc_histogram, *self._worker_histograms]

    def describe(self) -> str:
        return (f"procshard(workers={self.workers}, "
                f"replicas={self.replicas}, "
                f"store={self._store.describe()}, "
                f"threshold={self.fanout_threshold})")

    # -- health ------------------------------------------------------------

    def health_check(self) -> dict:
        """One housekeeping pass over the fleet: respawn dead or
        poisoned workers off the request path, and probe half-open
        replica breakers with a ping so a recovered replica re-closes
        without waiting for live read traffic to gamble on it.

        Safe to call from a background thread at any cadence; returns
        a summary the serving tier logs."""
        report = {"workers_respawned": 0, "replicas_probed": 0,
                  "replicas_reclosed": 0}
        if self._closed or not self._specs:
            return report
        for i, peer in enumerate(self._worker_peers):
            if (peer is None or peer.poisoned
                    or not peer.process.is_alive()):
                with self._write_lock:
                    try:
                        self._bootstrap_worker(i)
                    except _PeerFailure:
                        continue
                self._counters["worker_respawns_total"] += 1
                report["workers_respawned"] += 1
        for i, breaker in enumerate(self._breakers):
            if breaker.state != HALF_OPEN:
                continue
            report["replicas_probed"] += 1
            peer = self._replica_peers[i]
            try:
                if (peer is None or peer.poisoned
                        or not peer.process.is_alive()):
                    with self._write_lock:
                        healthy = self._bootstrap_replica(i)
                else:
                    healthy = self._request(
                        peer, ("ping",), 0, use_deadline=False) == "pong"
            except _PeerFailure:
                healthy = False
            if healthy:
                breaker.record_success()
                report["replicas_reclosed"] += 1
            else:
                breaker.record_failure()
        return report

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop every child, close the pipes, close the inner store
        (idempotent).  The polite phase (stop handshake + join) runs
        under a ``close_timeout_s`` budget; a peer that is still alive
        when the budget runs out is escalated to ``terminate()`` and,
        if it shrugs that off too, ``kill()`` — so ``close()`` returns
        in bounded time even with a worker wedged mid-request."""
        with self._write_lock:
            if self._closed:
                return
            self._closed = True
            peers = [peer for peer
                     in (*self._worker_peers, *self._replica_peers)
                     if peer is not None]
            self._worker_peers = [None] * self.workers
            self._replica_peers = [None] * self.replicas
        budget = Deadline.after(self.close_timeout_s)
        for peer in peers:
            self._shutdown_peer(peer, budget)
        _LIVE_BACKENDS.discard(self)
        self._store.close()

    def _shutdown_peer(self, peer: _Peer, budget: Deadline) -> None:
        # A request thread wedged inside _recv holds the peer lock;
        # don't inherit its fate — skip the handshake and let the
        # escalation below reclaim the process.
        locked = peer.lock.acquire(timeout=budget.timeout(0.5))
        try:
            if locked:
                try:
                    peer.conn.send(("stop",))
                    if peer.conn.poll(budget.timeout(1.0)):
                        peer.conn.recv()
                except (OSError, EOFError, ValueError):
                    pass
        finally:
            if locked:
                peer.lock.release()
        try:
            peer.conn.close()
        except OSError:
            pass
        peer.process.join(timeout=budget.timeout(self.close_timeout_s))
        if peer.process.is_alive():
            self._counters["close_escalations_total"] += 1
            peer.process.terminate()
            peer.process.join(timeout=max(0.2, budget.timeout(1.0)))
            if peer.process.is_alive():
                peer.process.kill()
                peer.process.join(timeout=1.0)

    def emergency_stop(self) -> None:
        """The atexit/last-resort teardown: no stop handshake, no
        polite joins — close pipes, SIGKILL anything still alive, close
        the store.  Used by the module's interpreter-exit sweep so a
        coordinator abandoned without ``close()`` cannot orphan its
        children."""
        self._closed = True
        peers = [peer for peer
                 in (*self._worker_peers, *self._replica_peers)
                 if peer is not None]
        self._worker_peers = [None] * self.workers
        self._replica_peers = [None] * self.replicas
        for peer in peers:
            try:
                peer.conn.close()
            except OSError:
                pass
            if peer.process.is_alive():
                peer.process.kill()
        for peer in peers:
            peer.process.join(timeout=1.0)
        try:
            self._store.close()
        except Exception:
            pass
