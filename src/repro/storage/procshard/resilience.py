"""Peer-facing resilience primitives: circuit breaker and retry policy.

Both are deliberately dependency-free and clock-injectable so the unit
tests drive state transitions with a fake clock instead of sleeping.

:class:`CircuitBreaker` guards one peer (one replica process, in
practice).  Closed → open after ``failure_threshold`` *consecutive*
failures; open → half-open after ``reset_after_s`` of wall quiet;
half-open admits one probe — success re-closes, failure re-opens and
restarts the quiet period.  While open, the coordinator skips the peer
entirely and degrades to writer-local reads: a flapping replica costs
a counter bump per read instead of a respawn storm.

:class:`RetryPolicy` yields jittered exponential backoff delays.  The
jitter is drawn from a seeded :class:`random.Random`, so a given
policy instance produces a reproducible delay sequence — chaos runs
stay deterministic end to end.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Iterator

__all__ = ["CircuitBreaker", "RetryPolicy"]

# Numeric state encoding for gauge export (repro_storage_replica_breaker_state).
CLOSED = 0
OPEN = 1
HALF_OPEN = 2

_STATE_NAMES = {CLOSED: "closed", OPEN: "open", HALF_OPEN: "half_open"}


class CircuitBreaker:
    """A per-peer closed/open/half-open breaker.

    Not thread-safe on its own: the procshard coordinator already
    serializes per-peer traffic under the peer lock, and tests drive it
    single-threaded with a fake clock.
    """

    __slots__ = ("failure_threshold", "reset_after_s", "_clock", "_state",
                 "_failures", "_opened_at", "opens_total")

    def __init__(self, failure_threshold: int = 3, reset_after_s: float = 5.0,
                 clock: Callable[[], float] = time.monotonic):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_after_s = reset_after_s
        self._clock = clock
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: Lifetime closed→open transitions (counter-exported).
        self.opens_total = 0

    @property
    def state(self) -> int:
        """Current numeric state, promoting open → half-open when the
        quiet period has elapsed (reads are how time advances here)."""
        if (self._state == OPEN
                and self._clock() - self._opened_at >= self.reset_after_s):
            self._state = HALF_OPEN
        return self._state

    @property
    def state_name(self) -> str:
        return _STATE_NAMES[self.state]

    def allow(self) -> bool:
        """May the caller attempt the peer right now?

        Closed and half-open say yes (half-open is the single probe:
        the coordinator's per-peer lock means one request is in flight
        at a time, so no extra probe token is needed).  Open says no.
        """
        return self.state != OPEN

    def record_success(self) -> None:
        self._state = CLOSED
        self._failures = 0

    def record_failure(self) -> None:
        if self._state == HALF_OPEN:
            # Failed probe: straight back to open, restart the quiet
            # period from now.
            self._state = OPEN
            self._opened_at = self._clock()
            self.opens_total += 1
            return
        self._failures += 1
        if self._failures >= self.failure_threshold:
            self._state = OPEN
            self._opened_at = self._clock()
            self._failures = 0
            self.opens_total += 1

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"CircuitBreaker(state={self.state_name}, "
                f"failures={self._failures}, opens={self.opens_total})")


class RetryPolicy:
    """Seeded jittered exponential backoff.

    ``delays()`` yields ``attempts - 1`` sleep durations (no sleep
    after the final attempt): ``base * 2^i``, capped at ``max_delay_s``,
    scaled by a jitter factor drawn uniformly from
    ``[1 - jitter, 1 + jitter]``.
    """

    __slots__ = ("attempts", "base_delay_s", "max_delay_s", "jitter", "_rng")

    def __init__(self, attempts: int = 3, base_delay_s: float = 0.05,
                 max_delay_s: float = 1.0, jitter: float = 0.5,
                 seed: int = 0):
        if attempts < 1:
            raise ValueError("attempts must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        self.attempts = attempts
        self.base_delay_s = base_delay_s
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self._rng = random.Random(seed)

    def delays(self) -> Iterator[float]:
        delay = self.base_delay_s
        for _ in range(self.attempts - 1):
            scale = 1.0 + self._rng.uniform(-self.jitter, self.jitter)
            yield min(delay, self.max_delay_s) * scale
            delay *= 2.0
