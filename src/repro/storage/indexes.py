"""Hash indexes backing access constraints.

An access constraint ``R(X -> Y, N)`` promises an index on ``X`` for
``Y``: given an ``X``-value ``a``, retrieve ``D_Y(X = a)`` without
scanning ``R`` (paper, Section 2).  :class:`AccessIndex` is that index:
a hash map from ``X``-projections to the set of distinct ``Y``-
projections (plus the combined ``X∪Y`` rows the ``fetch`` plan operator
returns).

When built with a :class:`~repro.storage.encoding.ValueDictionary`
(every shipped backend does this), the index *additionally* maintains
an encoded mirror of each group: per ``X``-key, one ``array('q')``
column per ``X∪Y`` attribute holding dictionary codes, pre-built at
insert time.  The columnar executor's ``fetch_flat_encoded`` path then
answers a whole key batch with C-speed array concatenation — no row
tuples, no per-batch encoding.  Keys into the encoded mirror are bare
int codes when ``|X| == 1`` (the hot case) and code tuples otherwise.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import ConstraintViolation
from ..schema.access import AccessConstraint
from ..schema.relation import RelationSchema
from .encoding import ValueDictionary, int_column

Tuple = tuple


class _EncodedGroup:
    """One X-key's rows as pre-built code columns.

    ``pos`` maps each distinct Y-code tuple to its row position so a
    deletion can swap-remove in O(columns) — row order within a group
    is meaningless under set semantics, so the swap is free.
    """

    __slots__ = ("cols", "pos")

    def __init__(self, width: int):
        self.cols = [int_column() for _ in range(width)]
        self.pos: dict[Tuple, int] = {}

    def append(self, row_codes: Sequence[int], y_key: Tuple) -> None:
        self.pos[y_key] = len(self.cols[0]) if self.cols else len(self.pos)
        for column, code in zip(self.cols, row_codes):
            column.append(code)

    def discard(self, y_key: Tuple, y_start: int) -> None:
        position = self.pos.pop(y_key, None)
        if position is None or not self.cols:
            return
        last = len(self.cols[0]) - 1
        if position != last:
            for column in self.cols:
                column[position] = column[last]
            moved = tuple(column[position]
                          for column in self.cols[y_start:])
            self.pos[moved] = position
        for column in self.cols:
            column.pop()

    def __len__(self) -> int:
        return len(self.cols[0]) if self.cols else len(self.pos)


class AccessIndex:
    """The index for one access constraint over one relation instance.

    ``lookup`` implements the paper's ``fetch`` primitive: for an
    X-value, return the distinct ``X∪Y`` projections, in deterministic
    insertion order.  The number of distinct Y-values per X-value is the
    quantity the cardinality bound constrains; ``max_group_size`` exposes
    the observed maximum so instances can be validated.
    """

    def __init__(self, constraint: AccessConstraint, relation: RelationSchema,
                 dictionary: ValueDictionary | None = None):
        self.constraint = constraint
        self.relation = relation
        self.dictionary = dictionary
        self.x_positions = constraint.x_positions(relation)
        self.y_positions = constraint.y_positions(relation)
        #: Width of a fetched row (and of every encoded group column).
        self.width = len(self.x_positions) + len(self.y_positions)
        #: Encoded keys are bare int codes exactly when ``|X| == 1``.
        self.scalar_key = len(self.x_positions) == 1
        # x-projection -> ordered dict of distinct y-projections, each
        # mapped to the number of stored rows producing it.  The count
        # makes row deletion exact: a projection disappears only when
        # its last witness row is removed (X∪Y may be a strict subset
        # of the relation's attributes, so projections can be shared).
        self._groups: dict[Tuple, dict[Tuple, int]] = {}
        # code key -> _EncodedGroup mirror (None without a dictionary:
        # ad-hoc validation indexes skip the columnar machinery).
        self._encoded: dict | None = (
            {} if dictionary is not None else None)

    def add(self, row: Sequence,
            coded_row: Sequence[int] | None = None) -> bool:
        """Register one stored row.

        Backends that bulk-encode pass ``coded_row`` (the full
        relation row as dictionary codes, computed once per row across
        all of the relation's indexes); otherwise the index encodes
        on demand — either way a value is interned exactly once.

        Returns True exactly when a *new distinct projection* appeared
        (the row is its group's first witness) — the projection-level
        effect write-delta emission reports to read-side caches; a
        row whose ``X∪Y`` projection was already witnessed changes no
        fetch result and returns False.
        """
        x_value = tuple(row[i] for i in self.x_positions)
        y_value = tuple(row[i] for i in self.y_positions)
        group = self._groups.setdefault(x_value, {})
        count = group.get(y_value, 0)
        group[y_value] = count + 1
        if count:
            return False
        if self._encoded is None:
            return True
        # First witness of this X∪Y projection: mirror it encoded.
        if coded_row is None:
            coded_row = self.dictionary.encode_row(row)
        key = (coded_row[self.x_positions[0]] if self.scalar_key
               else tuple(coded_row[i] for i in self.x_positions))
        entry = self._encoded.get(key)
        if entry is None:
            entry = self._encoded[key] = _EncodedGroup(self.width)
        y_key = tuple(coded_row[i] for i in self.y_positions)
        entry.append([coded_row[i] for i in self.x_positions]
                     + [coded_row[i] for i in self.y_positions], y_key)
        return True

    def remove(self, row: Sequence,
               coded_row: Sequence[int] | None = None) -> bool:
        """Unregister one stored row (callers pass only rows they
        actually deleted, exactly once per deletion).

        Returns True exactly when the row's distinct projection
        *disappeared* (it was the last witness) — the dual of
        :meth:`add`'s return.  ``coded_row`` may be passed by callers
        that already encoded the row (delta emission does); otherwise
        the index encodes on demand, and only when the encoded mirror
        actually needs updating.
        """
        x_value = tuple(row[i] for i in self.x_positions)
        y_value = tuple(row[i] for i in self.y_positions)
        group = self._groups.get(x_value)
        if group is None:
            return False
        count = group.get(y_value)
        if count is None:
            return False
        if count > 1:
            group[y_value] = count - 1
            return False
        del group[y_value]
        if not group:
            del self._groups[x_value]
        if self._encoded is None:
            return True
        if coded_row is None:
            coded_row = self.dictionary.encode_row(row)
        key = (coded_row[self.x_positions[0]] if self.scalar_key
               else tuple(coded_row[i] for i in self.x_positions))
        entry = self._encoded.get(key)
        if entry is not None:
            entry.discard(tuple(coded_row[i] for i in self.y_positions),
                          len(self.x_positions))
            if not entry.pos:
                del self._encoded[key]
        return True

    def remove_all(self) -> None:
        self._groups.clear()
        if self._encoded is not None:
            self._encoded.clear()

    def lookup(self, x_value: Tuple) -> list[Tuple]:
        """Distinct ``X∪Y`` projections for one X-value (possibly empty).

        The returned rows concatenate the X-value with each distinct
        Y-value, matching the ``fetch(X ∈ T, R, Y)`` operator that
        returns ``D_XY(X = a)``.
        """
        group = self._groups.get(tuple(x_value))
        if group is None:
            return []
        return [x_value + y_value for y_value in group]

    def lookup_many(self, x_values: Iterable[Tuple]) -> list[list[Tuple]]:
        """Batched :meth:`lookup` — the hot path of ``fetch_many``.

        ``x_values`` must already be tuples (callers batch them from
        columnar zips); skipping per-key normalization and method
        dispatch is exactly what makes the vectorized boundary pay off.
        """
        groups = self._groups
        results = []
        for x_value in x_values:
            group = groups.get(x_value)
            results.append([x_value + y_value for y_value in group]
                           if group else [])
        return results

    def lookup_flat(self, keys: Sequence[Tuple]) -> list[Tuple]:
        """Concatenated :meth:`lookup_many` without per-key alignment —
        what executors consume when no cache interposes.  Distinct
        X-values have disjoint row prefixes, so the concatenation is
        duplicate-free exactly when each group is."""
        groups = self._groups
        out: list[Tuple] = []
        for key in keys:
            group = groups.get(key)
            if group:
                out.extend([key + y_value for y_value in group])
        return out

    def lookup_scatter(self, keys: Sequence[Tuple], positions: Sequence[int],
                       out: list) -> None:
        """Scatter variant for sharded engines: look up
        ``keys[p]`` for each ``p`` in ``positions`` and write the rows
        into ``out[p]`` — no per-shard gather lists, no realignment."""
        groups = self._groups
        for position in positions:
            key = keys[position]
            group = groups.get(key)
            out[position] = ([key + y_value for y_value in group]
                             if group else [])

    # -- the encoded fetch surface ----------------------------------------

    def lookup_flat_encoded(self, keys: Sequence,
                            row_proj: "tuple[int, ...] | None" = None,
                            dedup: bool = False) -> tuple[list, int]:
        """All rows for a batch of code keys as concatenated
        ``array('q')`` columns, ``(cols, length)``.

        Keys are bare int codes for scalar-X constraints, code tuples
        otherwise.  The returned arrays are freshly built (groups
        mutate in place under the backend's lock, so nothing internal
        may leak).  ``row_proj``/``dedup`` implement the wider-attached-
        index projection, deduplicating per key on code tuples.
        """
        encoded = self._encoded
        width = self.width if row_proj is None else len(row_proj)
        out = [int_column() for _ in range(width)]
        if not width:
            return out, 0
        if row_proj is None:
            for key in keys:
                entry = encoded.get(key)
                if entry is not None:
                    cols = entry.cols
                    for i in range(width):
                        out[i].extend(cols[i])
            return out, len(out[0])
        for key in keys:
            entry = encoded.get(key)
            if entry is None:
                continue
            projected = [entry.cols[p] for p in row_proj]
            if dedup:
                if width == 1:
                    for code in dict.fromkeys(projected[0]):
                        out[0].append(code)
                else:
                    for row in dict.fromkeys(zip(*projected)):
                        for i in range(width):
                            out[i].append(row[i])
            else:
                for i in range(width):
                    out[i].extend(projected[i])
        return out, len(out[0])

    def lookup_one_encoded(self, key,
                           row_proj: "tuple[int, ...] | None" = None,
                           dedup: bool = False) -> tuple[tuple, int]:
        """One key's group as fresh column copies, ``(cols, length)`` —
        the per-key form caches store."""
        entry = self._encoded.get(key)
        if entry is None:
            return tuple(int_column() for _ in range(
                self.width if row_proj is None else len(row_proj))), 0
        if row_proj is None:
            cols = tuple(column[:] for column in entry.cols)
            return cols, len(entry)
        projected = [entry.cols[p] for p in row_proj]
        if dedup:
            if len(projected) == 1:
                column = int_column(dict.fromkeys(projected[0]))
                return (column,), len(column)
            rows = list(dict.fromkeys(zip(*projected)))
            return (tuple(int_column(row[i] for row in rows)
                          for i in range(len(projected))), len(rows))
        return tuple(column[:] for column in projected), len(projected[0])

    def lookup_many_encoded(self, keys: Sequence,
                            row_proj: "tuple[int, ...] | None" = None,
                            dedup: bool = False) -> list[tuple[tuple, int]]:
        """Batched :meth:`lookup_one_encoded`, aligned with ``keys``."""
        return [self.lookup_one_encoded(key, row_proj, dedup)
                for key in keys]

    def lookup_scatter_encoded(self, keys: Sequence,
                               positions: Sequence[int], out: list,
                               row_proj: "tuple[int, ...] | None" = None,
                               dedup: bool = False) -> None:
        """Scatter variant of :meth:`lookup_many_encoded` for sharded
        engines."""
        for position in positions:
            out[position] = self.lookup_one_encoded(keys[position],
                                                    row_proj, dedup)

    def lookup_y(self, x_value: Tuple) -> list[Tuple]:
        """Distinct Y-projections only."""
        group = self._groups.get(tuple(x_value))
        if group is None:
            return []
        return list(group)

    def group_size(self, x_value: Tuple) -> int:
        group = self._groups.get(tuple(x_value))
        return 0 if group is None else len(group)

    def max_group_size(self) -> int:
        if not self._groups:
            return 0
        return max(len(group) for group in self._groups.values())

    def x_values(self) -> Iterator[Tuple]:
        return iter(self._groups)

    def validate(self, db_size: int) -> None:
        """Raise :class:`ConstraintViolation` if some group exceeds the bound."""
        limit = self.constraint.bound(db_size)
        for x_value, group in self._groups.items():
            if len(group) > limit:
                raise ConstraintViolation(self.constraint, x_value, len(group))

    def __len__(self) -> int:
        return len(self._groups)
