"""Hash indexes backing access constraints.

An access constraint ``R(X -> Y, N)`` promises an index on ``X`` for
``Y``: given an ``X``-value ``a``, retrieve ``D_Y(X = a)`` without
scanning ``R`` (paper, Section 2).  :class:`AccessIndex` is that index:
a hash map from ``X``-projections to the set of distinct ``Y``-
projections (plus the combined ``X∪Y`` rows the ``fetch`` plan operator
returns).
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from ..errors import ConstraintViolation
from ..schema.access import AccessConstraint
from ..schema.relation import RelationSchema

Tuple = tuple


class AccessIndex:
    """The index for one access constraint over one relation instance.

    ``lookup`` implements the paper's ``fetch`` primitive: for an
    X-value, return the distinct ``X∪Y`` projections, in deterministic
    insertion order.  The number of distinct Y-values per X-value is the
    quantity the cardinality bound constrains; ``max_group_size`` exposes
    the observed maximum so instances can be validated.
    """

    def __init__(self, constraint: AccessConstraint, relation: RelationSchema):
        self.constraint = constraint
        self.relation = relation
        self.x_positions = constraint.x_positions(relation)
        self.y_positions = constraint.y_positions(relation)
        # x-projection -> ordered dict of distinct y-projections, each
        # mapped to the number of stored rows producing it.  The count
        # makes row deletion exact: a projection disappears only when
        # its last witness row is removed (X∪Y may be a strict subset
        # of the relation's attributes, so projections can be shared).
        self._groups: dict[Tuple, dict[Tuple, int]] = {}

    def add(self, row: Sequence) -> None:
        x_value = tuple(row[i] for i in self.x_positions)
        y_value = tuple(row[i] for i in self.y_positions)
        group = self._groups.setdefault(x_value, {})
        group[y_value] = group.get(y_value, 0) + 1

    def remove(self, row: Sequence) -> None:
        """Unregister one stored row (callers pass only rows they
        actually deleted, exactly once per deletion)."""
        x_value = tuple(row[i] for i in self.x_positions)
        y_value = tuple(row[i] for i in self.y_positions)
        group = self._groups.get(x_value)
        if group is None:
            return
        count = group.get(y_value)
        if count is None:
            return
        if count > 1:
            group[y_value] = count - 1
        else:
            del group[y_value]
            if not group:
                del self._groups[x_value]

    def remove_all(self) -> None:
        self._groups.clear()

    def lookup(self, x_value: Tuple) -> list[Tuple]:
        """Distinct ``X∪Y`` projections for one X-value (possibly empty).

        The returned rows concatenate the X-value with each distinct
        Y-value, matching the ``fetch(X ∈ T, R, Y)`` operator that
        returns ``D_XY(X = a)``.
        """
        group = self._groups.get(tuple(x_value))
        if group is None:
            return []
        return [x_value + y_value for y_value in group]

    def lookup_many(self, x_values: Iterable[Tuple]) -> list[list[Tuple]]:
        """Batched :meth:`lookup` — the hot path of ``fetch_many``.

        ``x_values`` must already be tuples (callers batch them from
        columnar zips); skipping per-key normalization and method
        dispatch is exactly what makes the vectorized boundary pay off.
        """
        groups = self._groups
        results = []
        for x_value in x_values:
            group = groups.get(x_value)
            results.append([x_value + y_value for y_value in group]
                           if group else [])
        return results

    def lookup_flat(self, keys: Sequence[Tuple]) -> list[Tuple]:
        """Concatenated :meth:`lookup_many` without per-key alignment —
        what executors consume when no cache interposes.  Distinct
        X-values have disjoint row prefixes, so the concatenation is
        duplicate-free exactly when each group is."""
        groups = self._groups
        out: list[Tuple] = []
        for key in keys:
            group = groups.get(key)
            if group:
                out.extend([key + y_value for y_value in group])
        return out

    def lookup_scatter(self, keys: Sequence[Tuple], positions: Sequence[int],
                       out: list) -> None:
        """Scatter variant for sharded engines: look up
        ``keys[p]`` for each ``p`` in ``positions`` and write the rows
        into ``out[p]`` — no per-shard gather lists, no realignment."""
        groups = self._groups
        for position in positions:
            key = keys[position]
            group = groups.get(key)
            out[position] = ([key + y_value for y_value in group]
                             if group else [])

    def lookup_y(self, x_value: Tuple) -> list[Tuple]:
        """Distinct Y-projections only."""
        group = self._groups.get(tuple(x_value))
        if group is None:
            return []
        return list(group)

    def group_size(self, x_value: Tuple) -> int:
        group = self._groups.get(tuple(x_value))
        return 0 if group is None else len(group)

    def max_group_size(self) -> int:
        if not self._groups:
            return 0
        return max(len(group) for group in self._groups.values())

    def x_values(self) -> Iterator[Tuple]:
        return iter(self._groups)

    def validate(self, db_size: int) -> None:
        """Raise :class:`ConstraintViolation` if some group exceeds the bound."""
        limit = self.constraint.bound(db_size)
        for x_value, group in self._groups.items():
            if len(group) > limit:
                raise ConstraintViolation(self.constraint, x_value, len(group))

    def __len__(self) -> int:
        return len(self._groups)
