"""The database facade over a pluggable storage backend.

:class:`Database` presents one instance ``D`` of a relational schema to
the rest of the system — loading, deletion, the active domain,
access-schema validation and the (now batched) ``fetch`` primitive —
while the actual rows and per-constraint indexes live behind the
:class:`~repro.storage.backend.StorageBackend` protocol.  Pick the
engine at construction time::

    Database(schema)                                   # MemoryBackend
    Database(schema, backend=ShardedBackend(schema, shards=16))

Everything above storage goes through this facade, and the facade goes
through the backend protocol — there is no other road to the rows, so
swapping engines can never change answers, only speed and topology.

Scans (``relation_tuples``) are deliberately separate from fetches so
benchmarks can distinguish index-only bounded plans from scanning
baselines.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Sequence

from ..errors import ConstraintViolation, SchemaError
from ..schema.access import AccessConstraint, AccessSchema
from ..schema.relation import Schema
from .backend import MemoryBackend, StorageBackend
from .indexes import AccessIndex

Row = tuple


class Database:
    """One instance ``D`` of a relational schema.

    >>> schema = Schema.from_dict({"R": ("A", "B")})
    >>> db = Database(schema)
    >>> db.insert("R", (1, "x"))
    >>> db.size()
    1
    """

    def __init__(self, schema: Schema,
                 access_schema: AccessSchema | None = None,
                 backend: StorageBackend | None = None):
        self.schema = schema
        if backend is None:
            backend = MemoryBackend(schema)
        elif backend.schema is not schema:
            raise SchemaError(
                "the backend was built for a different schema object; "
                "construct it with the same Schema the Database uses")
        self._backend = backend
        # adom(D) memo: one (epoch, domain) pair assigned atomically so
        # racing readers can never pin a pre-write domain under a
        # post-write epoch (see active_domain).
        self._adom_cache: tuple[int, frozenset] | None = None
        self.access_schema: AccessSchema | None = None
        if access_schema is not None:
            self.attach_access_schema(access_schema)

    @property
    def backend(self) -> StorageBackend:
        """The storage engine behind this instance."""
        return self._backend

    @property
    def dictionary(self):
        """The backend's :class:`~repro.storage.encoding.ValueDictionary`
        — the value/code bijection the columnar executor plans against."""
        return self._backend.dictionary

    def with_backend(self, backend: StorageBackend) -> "Database":
        """A new :class:`Database` holding the same rows (and access
        schema) on a different engine — how the CLI's ``--backend``
        flag re-homes a loaded instance."""
        clone = Database(self.schema, backend=backend)
        for name in self.schema.relation_names():
            backend.insert_rows(name, self._backend.scan(name))
        if self.access_schema is not None:
            clone.attach_access_schema(self.access_schema)
        return clone

    # -- loading ---------------------------------------------------------------

    def _validated(self, relation_name: str,
                   row: Sequence[Hashable]) -> Row:
        relation = self.schema.relation(relation_name)
        row = tuple(row)
        if len(row) != relation.arity:
            raise SchemaError(
                f"row {row!r} has arity {len(row)} but {relation} expects "
                f"{relation.arity}"
            )
        return row

    def insert(self, relation_name: str, row: Sequence[Hashable]) -> None:
        self._backend.insert_rows(relation_name,
                                  (self._validated(relation_name, row),))

    def insert_many(self, relation_name: str,
                    rows: Iterable[Sequence[Hashable]]) -> None:
        """Bulk insert — one backend call (and one generation bump) for
        the whole batch."""
        self._backend.insert_rows(
            relation_name,
            [self._validated(relation_name, row) for row in rows])

    def delete(self, relation_name: str, row: Sequence[Hashable]) -> bool:
        """Remove one row; True when it was present."""
        return self._backend.delete_rows(
            relation_name, (self._validated(relation_name, row),)) > 0

    def delete_many(self, relation_name: str,
                    rows: Iterable[Sequence[Hashable]]) -> int:
        """Bulk delete; returns how many rows were actually removed."""
        return self._backend.delete_rows(
            relation_name,
            [self._validated(relation_name, row) for row in rows])

    def clear(self) -> None:
        self._backend.clear()

    # -- access schema -----------------------------------------------------------

    def attach_access_schema(self, access_schema: AccessSchema) -> None:
        """Attach constraints and (re)build one index per constraint."""
        self.access_schema = access_schema
        self._backend.attach_access_schema(access_schema)

    def _indexes_for(self, relation_name: str) -> list[AccessIndex]:
        return self._backend.indexes_for(relation_name)

    def satisfies(self, access_schema: AccessSchema | None = None) -> bool:
        """``D |= A``: every constraint's cardinality bound holds."""
        try:
            self.check(access_schema)
        except ConstraintViolation:
            return False
        return True

    def check(self, access_schema: AccessSchema | None = None) -> None:
        """Like :meth:`satisfies` but raises the first violation found."""
        target = access_schema or self.access_schema
        if target is None:
            return
        db_size = self.size()
        for constraint in target:
            limit = constraint.bound(db_size)
            for x_value, group_size in self._groups_or_adhoc(constraint):
                if group_size > limit:
                    raise ConstraintViolation(constraint, x_value,
                                              group_size)

    def _groups_or_adhoc(self, constraint: AccessConstraint):
        """Per-X distinct-Y counts for exactly this constraint.

        The attached index is only usable when its ``(X, Y)`` *sets*
        match the requested constraint's: a structurally wider index
        (the fetch path projects those) counts distinct values of the
        wider Y and would flag spurious violations.  Anything else is
        computed ad hoc from a scan.
        """
        attached = self.access_schema
        if attached is not None:
            for candidate in attached:
                if candidate is constraint or (
                        candidate.relation_name == constraint.relation_name
                        and candidate.x_set == constraint.x_set
                        and candidate.y_set == constraint.y_set):
                    return self._backend.constraint_groups(candidate)
        relation = constraint.validate_against(self.schema)
        index = AccessIndex(constraint, relation)
        for row in self._backend.scan(constraint.relation_name):
            index.add(row)
        return ((x, index.group_size(x)) for x in index.x_values())

    # -- reading -------------------------------------------------------------------

    def generation(self, relation_name: str) -> int:
        """The relation's write epoch: increases on every effective write.

        Equal generations guarantee identical relation contents, which
        is what lets fetch caches reuse results soundly.
        """
        return self._backend.generation(relation_name)

    def write_epoch(self) -> int:
        """A database-wide epoch (sum of relation generations)."""
        return self._backend.write_epoch()

    def relation_tuples(self, relation_name: str) -> list[Row]:
        """Full scan of one relation (the costly path bounded plans avoid)."""
        return self._backend.scan(relation_name)

    def relation_size(self, relation_name: str) -> int:
        return self._backend.relation_size(relation_name)

    def size(self) -> int:
        """``|D|``: total number of tuples."""
        return sum(self._backend.relation_size(name)
                   for name in self.schema.relation_names())

    def active_domain(self, extra: Iterable[Hashable] = ()) -> set:
        """``adom(D)`` (optionally extended with a query's constants).

        Memoized per :meth:`write_epoch` — analysis paths hit this on
        every cold request, and re-scanning every relation each time
        was pure waste.  A fresh mutable set is returned each call.
        """
        epoch = self._backend.write_epoch()
        cached = self._adom_cache
        if cached is None or cached[0] != epoch:
            domain: set = set()
            for name in self.schema.relation_names():
                for row in self._backend.scan(name):
                    domain.update(row)
            # The epoch was read *before* the scans and the pair is
            # stored in one assignment: a racing write at worst makes
            # the next call recompute (stale epoch in the pair), never
            # pins a pre-write domain under a post-write epoch.
            cached = (epoch, frozenset(domain))
            self._adom_cache = cached
        result = set(cached[1])
        result.update(extra)
        return result

    def fetch(self, constraint: AccessConstraint, x_value: Row) -> list[Row]:
        """Index lookup for one X-value: distinct ``X∪Y`` projections."""
        return self._backend.fetch_many(constraint, (tuple(x_value),))[0]

    def fetch_many(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[list[Row]]:
        """Batched index lookups, aligned with ``x_values`` — the only
        data-access primitive bounded plans use.  Hot callers pass
        tuples already; anything else is normalized once here."""
        if x_values and not isinstance(x_values[0], tuple):
            x_values = [tuple(x) for x in x_values]
        try:
            return self._backend.fetch_many(constraint, x_values)
        except TypeError:  # mixed batch: a non-tuple past position 0
            return self._backend.fetch_many(
                constraint, self._normalized_keys(x_values))

    def fetch_flat(self, constraint: AccessConstraint,
                   x_values: Sequence[Row]) -> list[Row]:
        """All rows for a batch of X-values in one unordered list —
        the executor's fast path when nothing needs per-X alignment."""
        if x_values and not isinstance(x_values[0], tuple):
            x_values = [tuple(x) for x in x_values]
        try:
            return self._backend.fetch_flat(constraint, x_values)
        except TypeError:  # mixed batch: a non-tuple past position 0
            return self._backend.fetch_flat(
                constraint, self._normalized_keys(x_values))

    def fetch_many_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> list:
        """Batched *encoded* index lookups: code keys in, per-key
        ``(code columns, length)`` entries out.  Keys are produced by
        the columnar executor from this database's own dictionary —
        no normalization, by construction."""
        return self._backend.fetch_many_encoded(constraint, keys)

    def fetch_flat_encoded(self, constraint: AccessConstraint,
                           keys: Sequence) -> tuple[list, int]:
        """Alignment-free :meth:`fetch_many_encoded`: the concatenated
        ``(code columns, total length)`` for a key batch."""
        return self._backend.fetch_flat_encoded(constraint, keys)

    @staticmethod
    def _normalized_keys(x_values: Sequence[Row]) -> list[Row]:
        """Per-element tuple coercion, for mixed batches only: the
        first-element sniff above keeps the hot all-tuple path free of
        a per-key isinstance scan, and a non-tuple later in the batch
        surfaces as the backends' unhashable-key TypeError."""
        return [x if isinstance(x, tuple) else tuple(x) for x in x_values]

    def __contains__(self, pair) -> bool:
        relation_name, row = pair
        return self._backend.contains(relation_name, tuple(row))

    def summary(self) -> dict[str, int]:
        return {name: self._backend.relation_size(name)
                for name in self.schema.relation_names()}

    def __str__(self) -> str:
        parts = ", ".join(f"{name}: {size}" for name, size in self.summary().items())
        return f"Database({parts})"
