"""In-memory database instances with access-constraint indexes.

:class:`Database` stores one instance ``D`` of a relational schema:
per-relation tuple sets plus the :class:`~repro.storage.indexes.AccessIndex`
for every access constraint that has been attached.  It exposes

* bulk loading (``insert`` / ``insert_many``),
* the active domain ``adom(D)``,
* access-schema validation (``satisfies`` / ``check``), and
* the ``fetch`` primitive used by bounded query plans, which *only*
  touches indexes — the executor's access accounting hangs off it.

Scans (``relation_tuples``) are deliberately separate so benchmarks can
distinguish index-only bounded plans from scanning baselines.
"""

from __future__ import annotations

from typing import Hashable, Iterable, Iterator, Mapping, Sequence

from ..errors import ConstraintViolation, ExecutionError, SchemaError
from ..schema.access import AccessConstraint, AccessSchema
from ..schema.relation import RelationSchema, Schema
from .indexes import AccessIndex

Row = tuple


class Database:
    """One instance ``D`` of a relational schema.

    >>> schema = Schema.from_dict({"R": ("A", "B")})
    >>> db = Database(schema)
    >>> db.insert("R", (1, "x"))
    >>> db.size()
    1
    """

    def __init__(self, schema: Schema,
                 access_schema: AccessSchema | None = None):
        self.schema = schema
        self._relations: dict[str, dict[Row, None]] = {
            name: {} for name in schema.relation_names()
        }
        self._indexes: dict[int, AccessIndex] = {}
        # Per-relation write epochs: bumped on every effective mutation,
        # so read-side caches (repro.service.fetchcache) can key cached
        # fetch results by generation and never serve stale rows.
        self._generations: dict[str, int] = {
            name: 0 for name in schema.relation_names()
        }
        self.access_schema: AccessSchema | None = None
        if access_schema is not None:
            self.attach_access_schema(access_schema)

    # -- loading ---------------------------------------------------------------

    def insert(self, relation_name: str, row: Sequence[Hashable]) -> None:
        relation = self.schema.relation(relation_name)
        row = tuple(row)
        if len(row) != relation.arity:
            raise SchemaError(
                f"row {row!r} has arity {len(row)} but {relation} expects "
                f"{relation.arity}"
            )
        store = self._relations[relation_name]
        if row in store:
            return
        store[row] = None
        for index in self._indexes_for(relation_name):
            index.add(row)
        # The generation bump must come *after* the index updates: a
        # concurrent reader keying a cache entry by the pre-bump epoch
        # may at worst see the new row early (benign — the write was
        # concurrent), never cache pre-write rows under the post-write
        # epoch.
        self._generations[relation_name] += 1

    def insert_many(self, relation_name: str,
                    rows: Iterable[Sequence[Hashable]]) -> None:
        for row in rows:
            self.insert(relation_name, row)

    def clear(self) -> None:
        for store in self._relations.values():
            store.clear()
        for index in self._indexes.values():
            index.remove_all()
        # Bumped last, as in insert(): readers at the old epoch may see
        # the emptied indexes early, but post-bump lookups never reuse
        # rows cached before the clear.
        for name in self._generations:
            self._generations[name] += 1

    # -- access schema -----------------------------------------------------------

    def attach_access_schema(self, access_schema: AccessSchema) -> None:
        """Attach constraints and (re)build one index per constraint."""
        self.access_schema = access_schema
        self._indexes = {}
        for constraint in access_schema:
            relation = constraint.validate_against(self.schema)
            index = AccessIndex(constraint, relation)
            for row in self._relations[constraint.relation_name]:
                index.add(row)
            self._indexes[id(constraint)] = index

    def _indexes_for(self, relation_name: str) -> list[AccessIndex]:
        return [idx for idx in self._indexes.values()
                if idx.constraint.relation_name == relation_name]

    def index_for(self, constraint: AccessConstraint) -> AccessIndex:
        index = self._indexes.get(id(constraint))
        if index is not None:
            return index
        # Fall back to structural matching (constraints may be re-created
        # by analysis code rather than shared by identity).
        for candidate in self._indexes.values():
            existing = candidate.constraint
            if (existing.relation_name == constraint.relation_name
                    and existing.x_set == constraint.x_set
                    and constraint.y_set <= existing.xy_set):
                return candidate
        raise ExecutionError(
            f"no index available for constraint {constraint}; attach an "
            "access schema containing it before executing bounded plans"
        )

    def satisfies(self, access_schema: AccessSchema | None = None) -> bool:
        """``D |= A``: every constraint's cardinality bound holds."""
        try:
            self.check(access_schema)
        except ConstraintViolation:
            return False
        return True

    def check(self, access_schema: AccessSchema | None = None) -> None:
        """Like :meth:`satisfies` but raises the first violation found."""
        target = access_schema or self.access_schema
        if target is None:
            return
        db_size = self.size()
        for constraint in target:
            index = self._index_or_adhoc(constraint)
            index.validate(db_size)

    def _index_or_adhoc(self, constraint: AccessConstraint) -> AccessIndex:
        try:
            return self.index_for(constraint)
        except ExecutionError:
            relation = constraint.validate_against(self.schema)
            index = AccessIndex(constraint, relation)
            for row in self._relations[constraint.relation_name]:
                index.add(row)
            return index

    # -- reading -------------------------------------------------------------------

    def generation(self, relation_name: str) -> int:
        """The relation's write epoch: increases on every effective write.

        Equal generations guarantee identical relation contents, which
        is what lets fetch caches reuse results soundly.
        """
        return self._generations[relation_name]

    def write_epoch(self) -> int:
        """A database-wide epoch (sum of relation generations)."""
        return sum(self._generations.values())

    def relation_tuples(self, relation_name: str) -> list[Row]:
        """Full scan of one relation (the costly path bounded plans avoid)."""
        return list(self._relations[relation_name])

    def relation_size(self, relation_name: str) -> int:
        return len(self._relations[relation_name])

    def size(self) -> int:
        """``|D|``: total number of tuples."""
        return sum(len(store) for store in self._relations.values())

    def active_domain(self, extra: Iterable[Hashable] = ()) -> set:
        """``adom(D)`` (optionally extended with a query's constants)."""
        domain: set = set(extra)
        for store in self._relations.values():
            for row in store:
                domain.update(row)
        return domain

    def fetch(self, constraint: AccessConstraint, x_value: Row) -> list[Row]:
        """Index lookup for one X-value: distinct ``X∪Y`` projections.

        This is the only data-access primitive bounded plans use.
        """
        return self.index_for(constraint).lookup(tuple(x_value))

    def __contains__(self, pair) -> bool:
        relation_name, row = pair
        return tuple(row) in self._relations[relation_name]

    def summary(self) -> dict[str, int]:
        return {name: len(store) for name, store in self._relations.items()}

    def __str__(self) -> str:
        parts = ", ".join(f"{name}: {size}" for name, size in self.summary().items())
        return f"Database({parts})"
