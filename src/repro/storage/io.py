"""CSV import/export for database instances.

Real deployments load the accident data from CSV dumps; this module
provides the same path for our instances, including round-tripping an
access schema as a sidecar JSON file so a saved database can be reopened
with its indexes rebuilt.

This is the CLI's front door, so failures are diagnosed, not leaked:
missing directories and files, malformed ``schema.json`` and CSV rows
that disagree with the schema all raise :class:`~repro.errors.
StorageError`/:class:`~repro.errors.SchemaError` with the file, line
and fix spelled out.
"""

from __future__ import annotations

import csv
import json
import pathlib

from ..errors import SchemaError, StorageError
from ..schema.access import (AccessConstraint, AccessSchema,
                             ConstantCardinality, LogCardinality,
                             PowerCardinality)
from ..schema.relation import RelationSchema, Schema
from .database import Database


def save_relation_csv(db: Database, relation_name: str, path) -> int:
    """Write one relation to CSV (header = attribute names); returns the
    row count."""
    relation = db.schema.relation(relation_name)
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.attributes)
        count = 0
        for row in db.relation_tuples(relation_name):
            writer.writerow(row)
            count += 1
    return count


def load_relation_csv(db: Database, relation_name: str, path) -> int:
    """Load one relation from CSV; header must match the schema.

    Values are read as strings except that integer- and float-shaped
    fields are narrowed (CSV is untyped; cardinality constraints only
    need equality, so narrowing is cosmetic but keeps round-trips
    stable for numeric columns).

    Raises :class:`SchemaError` for an unknown relation or mismatched
    header, :class:`StorageError` for a missing file or a row whose
    shape disagrees with the schema (with the offending line number).
    """
    if relation_name not in db.schema.relation_names():
        raise SchemaError(
            f"unknown relation {relation_name!r}; the schema defines "
            f"{sorted(db.schema.relation_names())}")
    relation = db.schema.relation(relation_name)
    path = pathlib.Path(path)
    if not path.is_file():
        raise StorageError(
            f"missing CSV file for relation {relation_name!r}: {path}")
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = tuple(next(reader, ()))
        if not header:
            raise StorageError(
                f"{path} is empty; expected the header row "
                f"{','.join(relation.attributes)}")
        if header != relation.attributes:
            raise SchemaError(
                f"{path}: CSV header {header} does not match {relation}")
        count = 0
        for raw in reader:
            if not raw:
                continue  # blank line
            if len(raw) != relation.arity:
                raise StorageError(
                    f"{path}, line {reader.line_num}: row has "
                    f"{len(raw)} fields but {relation} expects "
                    f"{relation.arity}: {raw!r}")
            db.insert(relation_name, tuple(_narrow(v) for v in raw))
            count += 1
    return count


def _narrow(value: str):
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def save_database(db: Database, directory) -> None:
    """Write every relation as ``<name>.csv`` plus ``schema.json``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.schema.relation_names():
        save_relation_csv(db, name, directory / f"{name}.csv")
    spec = {
        "relations": {r.name: list(r.attributes) for r in db.schema},
        "constraints": [
            _constraint_to_json(c) for c in (db.access_schema or [])
        ],
    }
    (directory / "schema.json").write_text(json.dumps(spec, indent=2))


def load_database(directory, backend_factory=None) -> Database:
    """Reopen a directory written by :func:`save_database`.

    ``backend_factory`` (schema -> StorageBackend) picks the storage
    engine the rows are loaded onto — loading directly onto the target
    engine, rather than re-homing afterwards, builds rows and indexes
    exactly once.

    Every failure mode of a hand-edited directory is reported with an
    actionable message: missing directory or ``schema.json``, invalid
    JSON, a malformed ``relations`` map, unknown constraint fields, a
    missing per-relation CSV, or rows that do not fit the schema.
    """
    directory = pathlib.Path(directory)
    if not directory.is_dir():
        raise StorageError(
            f"no such database directory: {directory} (expected a "
            "directory written by repro.storage.io.save_database)")
    schema_path = directory / "schema.json"
    if not schema_path.is_file():
        raise SchemaError(
            f"{directory} has no schema.json; a database directory "
            "needs one mapping relation names to attribute lists "
            "(plus optional access constraints)")
    try:
        spec = json.loads(schema_path.read_text())
    except json.JSONDecodeError as error:
        raise SchemaError(
            f"{schema_path} is not valid JSON: {error}") from error
    relations = spec.get("relations")
    if not isinstance(relations, dict) or not relations:
        raise SchemaError(
            f"{schema_path} must contain a non-empty \"relations\" "
            "object mapping relation names to attribute lists")
    schema = Schema(RelationSchema(name, attrs)
                    for name, attrs in relations.items())
    constraints = []
    for index, raw in enumerate(spec.get("constraints", ())):
        try:
            constraints.append(_constraint_from_json(raw))
        except (KeyError, TypeError) as error:
            raise SchemaError(
                f"{schema_path}: constraint #{index} is malformed "
                f"({error!r}); expected keys relation/x/y/cardinality"
            ) from error
    access = AccessSchema(schema, constraints)
    db = Database(schema, access if len(access) else None,
                  backend=backend_factory(schema) if backend_factory
                  else None)
    for name in schema.relation_names():
        load_relation_csv(db, name, directory / f"{name}.csv")
    return db


def _constraint_to_json(constraint: AccessConstraint) -> dict:
    cardinality = constraint.cardinality
    if isinstance(cardinality, ConstantCardinality):
        card = {"kind": "constant", "value": cardinality.value}
    elif isinstance(cardinality, LogCardinality):
        card = {"kind": "log", "scale": cardinality.scale}
    elif isinstance(cardinality, PowerCardinality):
        card = {"kind": "power", "exponent": cardinality.exponent,
                "scale": cardinality.scale}
    else:
        raise SchemaError(f"cannot serialize cardinality {cardinality}")
    return {"relation": constraint.relation_name,
            "x": list(constraint.x), "y": list(constraint.y),
            "cardinality": card}


def _constraint_from_json(spec: dict) -> AccessConstraint:
    card = spec["cardinality"]
    if card["kind"] == "constant":
        cardinality = ConstantCardinality(card["value"])
    elif card["kind"] == "log":
        cardinality = LogCardinality(card["scale"])
    elif card["kind"] == "power":
        cardinality = PowerCardinality(card["exponent"], card["scale"])
    else:
        raise SchemaError(f"unknown cardinality kind {card['kind']!r}")
    return AccessConstraint(spec["relation"], spec["x"], spec["y"],
                            cardinality)
