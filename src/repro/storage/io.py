"""CSV import/export for database instances.

Real deployments load the accident data from CSV dumps; this module
provides the same path for our instances, including round-tripping an
access schema as a sidecar JSON file so a saved database can be reopened
with its indexes rebuilt.
"""

from __future__ import annotations

import csv
import json
import pathlib
from typing import Iterable

from ..errors import SchemaError
from ..schema.access import (AccessConstraint, AccessSchema,
                             ConstantCardinality, LogCardinality,
                             PowerCardinality)
from ..schema.relation import RelationSchema, Schema
from .database import Database


def save_relation_csv(db: Database, relation_name: str, path) -> int:
    """Write one relation to CSV (header = attribute names); returns the
    row count."""
    relation = db.schema.relation(relation_name)
    path = pathlib.Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(relation.attributes)
        count = 0
        for row in db.relation_tuples(relation_name):
            writer.writerow(row)
            count += 1
    return count


def load_relation_csv(db: Database, relation_name: str, path) -> int:
    """Load one relation from CSV; header must match the schema.

    Values are read as strings except that integer- and float-shaped
    fields are narrowed (CSV is untyped; cardinality constraints only
    need equality, so narrowing is cosmetic but keeps round-trips
    stable for numeric columns).
    """
    relation = db.schema.relation(relation_name)
    path = pathlib.Path(path)
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = tuple(next(reader))
        if header != relation.attributes:
            raise SchemaError(
                f"CSV header {header} does not match {relation}")
        count = 0
        for raw in reader:
            db.insert(relation_name, tuple(_narrow(v) for v in raw))
            count += 1
    return count


def _narrow(value: str):
    try:
        return int(value)
    except ValueError:
        pass
    try:
        return float(value)
    except ValueError:
        return value


def save_database(db: Database, directory) -> None:
    """Write every relation as ``<name>.csv`` plus ``schema.json``."""
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for name in db.schema.relation_names():
        save_relation_csv(db, name, directory / f"{name}.csv")
    spec = {
        "relations": {r.name: list(r.attributes) for r in db.schema},
        "constraints": [
            _constraint_to_json(c) for c in (db.access_schema or [])
        ],
    }
    (directory / "schema.json").write_text(json.dumps(spec, indent=2))


def load_database(directory) -> Database:
    """Reopen a directory written by :func:`save_database`."""
    directory = pathlib.Path(directory)
    spec = json.loads((directory / "schema.json").read_text())
    schema = Schema(RelationSchema(name, attrs)
                    for name, attrs in spec["relations"].items())
    access = AccessSchema(schema, [
        _constraint_from_json(c) for c in spec.get("constraints", ())])
    db = Database(schema, access if len(access) else None)
    for name in schema.relation_names():
        load_relation_csv(db, name, directory / f"{name}.csv")
    return db


def _constraint_to_json(constraint: AccessConstraint) -> dict:
    cardinality = constraint.cardinality
    if isinstance(cardinality, ConstantCardinality):
        card = {"kind": "constant", "value": cardinality.value}
    elif isinstance(cardinality, LogCardinality):
        card = {"kind": "log", "scale": cardinality.scale}
    elif isinstance(cardinality, PowerCardinality):
        card = {"kind": "power", "exponent": cardinality.exponent,
                "scale": cardinality.scale}
    else:
        raise SchemaError(f"cannot serialize cardinality {cardinality}")
    return {"relation": constraint.relation_name,
            "x": list(constraint.x), "y": list(constraint.y),
            "cardinality": card}


def _constraint_from_json(spec: dict) -> AccessConstraint:
    card = spec["cardinality"]
    if card["kind"] == "constant":
        cardinality = ConstantCardinality(card["value"])
    elif card["kind"] == "log":
        cardinality = LogCardinality(card["scale"])
    elif card["kind"] == "power":
        cardinality = PowerCardinality(card["exponent"], card["scale"])
    else:
        raise SchemaError(f"unknown cardinality kind {card['kind']!r}")
    return AccessConstraint(spec["relation"], spec["x"], spec["y"],
                            cardinality)
