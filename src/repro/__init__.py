"""repro — bounded evaluability for querying big data by accessing small data.

A from-scratch implementation of Fan, Geerts, Cao, Deng & Lu,
"Querying Big Data by Accessing Small Data" (PODS 2015): access
schemas, covered queries, bounded query plans, boundedly evaluable
envelopes and bounded query specialization, plus the relational and
graph substrates and workload generators needed to reproduce the
paper's experimental claims.  See README.md and DESIGN.md.
"""

from .errors import (BudgetExceeded, ConstraintViolation, ExecutionError,
                     ParseError, PlanError, QueryError, ReproError,
                     SchemaError, ServiceError, StorageError,
                     UndecidableForFO, UnsafeQueryError)
from .schema import (AccessConstraint, AccessSchema, CardinalityFunction,
                     ConstantCardinality, LogCardinality, PowerCardinality,
                     RelationSchema, Schema)
from .query import (CQ, UCQ, Atom, Const, Equality, FOQuery, PositiveQuery,
                    Var, parse_cq, parse_query, parse_ucq)
from .storage import (Database, MemoryBackend, ShardedBackend,
                      StorageBackend, make_backend)
from .engine import (Plan, PhysicalPlan, build_bounded_plan,
                     build_union_plan, evaluate, execute_plan,
                     interpret_logical, optimize, static_bounds)
from .core import (Budget, Decision, Verdict, a_contained, a_equivalent,
                   a_satisfiable, analyze_coverage, is_boundedly_evaluable,
                   is_covered, lower_envelope, specialize_minimally,
                   upper_envelope)
from .schema.discovery import DiscoveryOptions, discover_access_schema
from .service import (BatchRequest, BoundedQueryService, ServiceResult,
                      ServiceStats)

__version__ = "1.1.0"

__all__ = [
    "__version__",
    # errors
    "ReproError", "SchemaError", "QueryError", "ParseError",
    "UnsafeQueryError", "PlanError", "ExecutionError",
    "ConstraintViolation", "BudgetExceeded", "UndecidableForFO",
    "StorageError", "ServiceError",
    # schema
    "RelationSchema", "Schema", "AccessConstraint", "AccessSchema",
    "CardinalityFunction", "ConstantCardinality", "LogCardinality",
    "PowerCardinality", "DiscoveryOptions", "discover_access_schema",
    # query
    "Var", "Const", "Atom", "Equality", "CQ", "UCQ", "PositiveQuery",
    "FOQuery", "parse_cq", "parse_ucq", "parse_query",
    # storage / engine
    "Database", "StorageBackend", "MemoryBackend", "ShardedBackend",
    "make_backend", "Plan", "PhysicalPlan", "build_bounded_plan",
    "build_union_plan", "optimize", "execute_plan", "interpret_logical",
    "evaluate", "static_bounds",
    # core analyses
    "analyze_coverage", "is_covered", "is_boundedly_evaluable",
    "a_satisfiable", "a_contained", "a_equivalent",
    "upper_envelope", "lower_envelope", "specialize_minimally",
    "Budget", "Decision", "Verdict",
    # service
    "BoundedQueryService", "ServiceResult", "ServiceStats", "BatchRequest",
]
