"""Discovering access constraints from data.

Example 1.1: "These constraints are discovered by simple aggregate
queries on D0."  Given an instance, :func:`discover_access_schema`
proposes an access schema by scanning candidate ``(X, Y)`` attribute
pairs and recording the observed maximum group cardinality, with an
optional slack factor so the constraints survive mild data growth
("possibly with cardinality bounds mildly adjusted", Example 1.1).

The candidate space is controlled to stay practical:

* ``X`` ranges over the empty set (when the whole column is tiny),
  single attributes and, optionally, attribute pairs;
* ``Y`` is either a single attribute or all remaining attributes
  (producing key-like constraints such as ψ3/ψ4);
* candidates whose bound exceeds ``max_bound`` are discarded — an
  access constraint with a huge N is useless for bounded evaluation.

Every returned constraint is *sound by construction* for the instance it
was discovered on (property-tested in ``tests/schema/test_discovery.py``).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Sequence

from ..storage.database import Database
from ..storage.statistics import max_group_cardinality
from .access import AccessConstraint, AccessSchema
from .relation import RelationSchema


@dataclass
class DiscoveryOptions:
    """Tuning knobs for constraint discovery."""

    #: Discard candidates whose observed bound exceeds this.
    max_bound: int = 1024
    #: Multiply observed bounds by this slack (rounded up) so that the
    #: constraints keep holding under mild data growth.
    slack: float = 1.0
    #: Also try two-attribute X sets.
    pair_lhs: bool = False
    #: Emit R(∅ -> A, N) constraints for small-domain columns.
    empty_lhs: bool = True
    #: Emit key-style constraints X -> (all other attributes).
    keys: bool = True
    #: Limit on constraints per relation (most selective first).
    per_relation_limit: int | None = None


def _adjusted(bound: int, slack: float) -> int:
    return max(1, math.ceil(bound * slack))


def _candidate_lhs(relation: RelationSchema,
                   options: DiscoveryOptions) -> list[tuple[str, ...]]:
    singles = [(a,) for a in relation.attributes]
    candidates: list[tuple[str, ...]] = []
    if options.empty_lhs:
        candidates.append(())
    candidates.extend(singles)
    if options.pair_lhs:
        candidates.extend(itertools.combinations(relation.attributes, 2))
    return candidates


def discover_for_relation(db: Database, relation_name: str,
                          options: DiscoveryOptions | None = None
                          ) -> list[AccessConstraint]:
    """Discover constraints for one relation, most selective first."""
    options = options or DiscoveryOptions()
    relation = db.schema.relation(relation_name)
    found: list[AccessConstraint] = []
    seen: set[tuple[frozenset, frozenset]] = set()

    def consider(x: Sequence[str], y: Sequence[str]) -> None:
        key = (frozenset(x), frozenset(y))
        if key in seen or not y:
            return
        seen.add(key)
        observed = max_group_cardinality(db, relation_name, x, y)
        if observed == 0:
            return  # Empty relation: nothing learnable.
        bound = _adjusted(observed, options.slack)
        if bound > options.max_bound:
            return
        found.append(AccessConstraint(relation_name, x, y, bound))

    for x in _candidate_lhs(relation, options):
        rest = [a for a in relation.attributes if a not in x]
        if options.keys and rest:
            consider(x, rest)
        for attribute in rest:
            consider(x, (attribute,))

    found.sort(key=lambda c: (c.cardinality.value, len(c.x), str(c)))
    if options.per_relation_limit is not None:
        found = found[:options.per_relation_limit]
    return found


def discover_access_schema(db: Database,
                           options: DiscoveryOptions | None = None
                           ) -> AccessSchema:
    """Discover an access schema for every relation of ``db``.

    >>> from ..schema.relation import Schema
    >>> schema = Schema.from_dict({"R": ("A", "B")})
    >>> db = Database(schema)
    >>> db.insert_many("R", [(1, "x"), (1, "y"), (2, "x")])
    >>> aschema = discover_access_schema(db)
    >>> any(str(c) == "R(A -> B, 2)" for c in aschema)
    True
    """
    options = options or DiscoveryOptions()
    access_schema = AccessSchema(db.schema)
    for relation_name in db.schema.relation_names():
        for constraint in discover_for_relation(db, relation_name, options):
            access_schema.add(constraint)
    return access_schema
