"""Relational schemas.

A :class:`RelationSchema` is a named relation with a fixed, ordered tuple
of attribute names (paper, Section 2: "each relation schema Ri has a
fixed set of attributes").  A :class:`Schema` is a collection of relation
schemas, the object written ``R`` in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

from ..errors import SchemaError


@dataclass(frozen=True)
class RelationSchema:
    """A relation schema ``R(A1, ..., An)``.

    Attributes are ordered; atom arguments and stored tuples correspond
    to attributes positionally.

    >>> accident = RelationSchema("Accident", ("aid", "district", "date"))
    >>> accident.arity
    3
    >>> accident.position("date")
    2
    """

    name: str
    attributes: tuple[str, ...]

    def __init__(self, name: str, attributes: Sequence[str]):
        if not name:
            raise SchemaError("relation name must be non-empty")
        attrs = tuple(attributes)
        if not attrs:
            raise SchemaError(f"relation {name!r} must have at least one attribute")
        if len(set(attrs)) != len(attrs):
            raise SchemaError(f"relation {name!r} has duplicate attributes: {attrs}")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "attributes", attrs)

    @property
    def arity(self) -> int:
        return len(self.attributes)

    def position(self, attribute: str) -> int:
        """Index of ``attribute`` in the schema; raises on unknown names."""
        try:
            return self.attributes.index(attribute)
        except ValueError:
            raise SchemaError(
                f"relation {self.name!r} has no attribute {attribute!r}; "
                f"attributes are {self.attributes}"
            ) from None

    def positions(self, attributes: Iterable[str]) -> tuple[int, ...]:
        """Positions of several attributes, in the order given."""
        return tuple(self.position(a) for a in attributes)

    def has_attribute(self, attribute: str) -> bool:
        return attribute in self.attributes

    def __str__(self) -> str:
        return f"{self.name}({', '.join(self.attributes)})"


@dataclass
class Schema:
    """A relational schema ``R = (R1, ..., Rn)``.

    >>> schema = Schema([RelationSchema("R", ("A", "B"))])
    >>> schema.relation("R").arity
    2
    """

    _relations: dict[str, RelationSchema] = field(default_factory=dict)

    def __init__(self, relations: Iterable[RelationSchema] = ()):
        self._relations = {}
        for relation in relations:
            self.add(relation)

    def add(self, relation: RelationSchema) -> None:
        if relation.name in self._relations:
            raise SchemaError(f"duplicate relation {relation.name!r} in schema")
        self._relations[relation.name] = relation

    def relation(self, name: str) -> RelationSchema:
        try:
            return self._relations[name]
        except KeyError:
            raise SchemaError(
                f"schema has no relation {name!r}; relations are "
                f"{sorted(self._relations)}"
            ) from None

    def has_relation(self, name: str) -> bool:
        return name in self._relations

    @property
    def relations(self) -> list[RelationSchema]:
        return list(self._relations.values())

    def relation_names(self) -> list[str]:
        return list(self._relations)

    def __contains__(self, name: str) -> bool:
        return name in self._relations

    def __iter__(self) -> Iterator[RelationSchema]:
        return iter(self._relations.values())

    def __len__(self) -> int:
        return len(self._relations)

    def size(self) -> int:
        """``|R|``: total number of attributes across all relations.

        Used by the paper as the schema-size parameter in complexity
        statements (e.g. plan length exponential in ``|R|``, ``|A|``,
        ``|Q|``).
        """
        return sum(r.arity for r in self._relations.values())

    def __str__(self) -> str:
        return "; ".join(str(r) for r in self._relations.values())

    @staticmethod
    def from_dict(spec: Mapping[str, Sequence[str]]) -> "Schema":
        """Convenience constructor.

        >>> schema = Schema.from_dict({"R": ("A", "B"), "S": ("C",)})
        >>> len(schema)
        2
        """
        return Schema(RelationSchema(name, attrs) for name, attrs in spec.items())
