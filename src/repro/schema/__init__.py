"""Relational schemas and access schemas (paper, Section 2)."""

from .access import (AccessConstraint, AccessSchema, CardinalityFunction,
                     ConstantCardinality, LogCardinality, PowerCardinality,
                     as_cardinality)
from .relation import RelationSchema, Schema

__all__ = [
    "RelationSchema", "Schema",
    "AccessConstraint", "AccessSchema",
    "CardinalityFunction", "ConstantCardinality", "LogCardinality",
    "PowerCardinality", "as_cardinality",
]
