"""Access schemas: cardinality constraints paired with index obligations.

An access constraint (paper, Section 2) has the form ``R(X -> Y, N)``:

* for any ``X``-value ``a`` in an instance ``D``, there are at most ``N``
  distinct ``Y``-values among tuples with ``t[X] = a``; and
* an index on ``X`` for ``Y`` exists, so that ``D_Y(X = a)`` can be
  retrieved without scanning ``D``.

The general form ``R(X -> Y, s(.))`` bounds the count by a sublinear
function ``s`` of ``|D|`` instead of a constant (paper, Section 2,
"General access constraints"); the constant form is the special case
where ``s`` is constant.  Cardinality functions are represented by
:class:`CardinalityFunction` subclasses, all PTIME-computable as the
paper requires for Corollary 3.15.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

from ..errors import SchemaError
from .relation import RelationSchema, Schema


class CardinalityFunction:
    """Abstract sublinear bound ``s(|D|)`` for the general constraint form."""

    #: True when the bound does not depend on ``|D|``.
    is_constant: bool = False

    def bound(self, db_size: int) -> int:
        """The maximum number of distinct Y-values for one X-value."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class ConstantCardinality(CardinalityFunction):
    """``s(n) = N`` — the paper's plain access constraint ``R(X→Y, N)``."""

    value: int
    is_constant = True

    def __post_init__(self):
        if self.value < 1:
            raise SchemaError(f"cardinality bound must be >= 1, got {self.value}")

    def bound(self, db_size: int) -> int:
        return self.value

    def describe(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class LogCardinality(CardinalityFunction):
    """``s(n) = max(1, ceil(scale * log2(n)))`` — a non-constant bound."""

    scale: float = 1.0

    def __post_init__(self):
        if self.scale <= 0:
            raise SchemaError(f"log cardinality scale must be > 0, got {self.scale}")

    def bound(self, db_size: int) -> int:
        if db_size <= 2:
            return 1
        return max(1, math.ceil(self.scale * math.log2(db_size)))

    def describe(self) -> str:
        return f"{self.scale}*log2(|D|)"


@dataclass(frozen=True)
class PowerCardinality(CardinalityFunction):
    """``s(n) = max(1, ceil(scale * n**exponent))`` with ``exponent < 1``.

    ``exponent = 0.5`` gives a square-root bound.  Exponents at or above
    one are rejected: they would not be sublinear and bounded evaluation
    would degenerate to scanning.
    """

    exponent: float
    scale: float = 1.0

    def __post_init__(self):
        if not 0 < self.exponent < 1:
            raise SchemaError(
                f"power cardinality exponent must be in (0, 1), got {self.exponent}"
            )
        if self.scale <= 0:
            raise SchemaError(f"power cardinality scale must be > 0, got {self.scale}")

    def bound(self, db_size: int) -> int:
        return max(1, math.ceil(self.scale * (max(db_size, 1) ** self.exponent)))

    def describe(self) -> str:
        return f"{self.scale}*|D|^{self.exponent}"


def as_cardinality(value) -> CardinalityFunction:
    """Coerce an ``int`` or :class:`CardinalityFunction` to a function."""
    if isinstance(value, CardinalityFunction):
        return value
    if isinstance(value, int):
        return ConstantCardinality(value)
    raise SchemaError(
        f"cardinality must be an int or CardinalityFunction, got {value!r}"
    )


@dataclass(frozen=True)
class AccessConstraint:
    """An access constraint ``R(X -> Y, s)``.

    ``x`` and ``y`` are attribute tuples of relation ``relation_name``
    (``X`` may be empty, as in ``R3(∅ -> C, 1)`` of Example 3.1).  The
    attribute *sets* are what matters semantically; tuples keep a
    deterministic order for printing and index layout.

    >>> psi1 = AccessConstraint("Accident", ("date",), ("aid",), 610)
    >>> str(psi1)
    'Accident(date -> aid, 610)'
    """

    relation_name: str
    x: tuple[str, ...]
    y: tuple[str, ...]
    cardinality: CardinalityFunction

    def __init__(self, relation_name: str, x: Sequence[str], y: Sequence[str],
                 cardinality):
        x = tuple(x)
        y = tuple(y)
        if len(set(x)) != len(x):
            raise SchemaError(f"duplicate attributes in X: {x}")
        if len(set(y)) != len(y):
            raise SchemaError(f"duplicate attributes in Y: {y}")
        if not y:
            raise SchemaError("Y must contain at least one attribute")
        object.__setattr__(self, "relation_name", relation_name)
        object.__setattr__(self, "x", x)
        object.__setattr__(self, "y", y)
        object.__setattr__(self, "cardinality", as_cardinality(cardinality))

    # -- structural helpers -------------------------------------------------

    @property
    def x_set(self) -> frozenset[str]:
        return frozenset(self.x)

    @property
    def y_set(self) -> frozenset[str]:
        return frozenset(self.y)

    @property
    def xy_set(self) -> frozenset[str]:
        return self.x_set | self.y_set

    @property
    def is_constant(self) -> bool:
        return self.cardinality.is_constant

    @property
    def is_functional(self) -> bool:
        """True for ``N = 1`` constraints, which act as functional
        dependencies ``X -> Y`` (used by the chase; DESIGN.md S10)."""
        return (isinstance(self.cardinality, ConstantCardinality)
                and self.cardinality.value == 1)

    def bound(self, db_size: int) -> int:
        return self.cardinality.bound(db_size)

    def validate_against(self, schema: Schema) -> RelationSchema:
        """Check the constraint refers to real attributes; return the relation."""
        relation = schema.relation(self.relation_name)
        for attribute in self.x + self.y:
            if not relation.has_attribute(attribute):
                raise SchemaError(
                    f"constraint {self} refers to unknown attribute "
                    f"{attribute!r} of {relation}"
                )
        return relation

    def x_positions(self, relation: RelationSchema) -> tuple[int, ...]:
        return relation.positions(self.x)

    def y_positions(self, relation: RelationSchema) -> tuple[int, ...]:
        return relation.positions(self.y)

    def __str__(self) -> str:
        xs = ", ".join(self.x) if self.x else "()"
        ys = ", ".join(self.y)
        if len(self.y) > 1:
            ys = f"({ys})"
        return f"{self.relation_name}({xs} -> {ys}, {self.cardinality})"


class AccessSchema:
    """A set ``A`` of access constraints over a relational schema.

    >>> schema = Schema.from_dict({"R": ("A", "B")})
    >>> aschema = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 3)])
    >>> len(aschema)
    1
    """

    def __init__(self, schema: Schema,
                 constraints: Iterable[AccessConstraint] = ()):
        self.schema = schema
        self._constraints: list[AccessConstraint] = []
        for constraint in constraints:
            self.add(constraint)

    def add(self, constraint: AccessConstraint) -> None:
        constraint.validate_against(self.schema)
        self._constraints.append(constraint)

    @property
    def constraints(self) -> list[AccessConstraint]:
        return list(self._constraints)

    def for_relation(self, relation_name: str) -> list[AccessConstraint]:
        return [c for c in self._constraints if c.relation_name == relation_name]

    def functional_constraints(self) -> list[AccessConstraint]:
        """The ``N = 1`` fragment, used as FDs by the chase."""
        return [c for c in self._constraints if c.is_functional]

    @property
    def all_constant(self) -> bool:
        """True when every constraint uses a constant cardinality bound."""
        return all(c.is_constant for c in self._constraints)

    def max_constant_bound(self) -> int:
        """Largest constant bound (1 if there are none); a coarse plan-size
        ingredient used by cost analysis."""
        bounds = [c.cardinality.value for c in self._constraints
                  if isinstance(c.cardinality, ConstantCardinality)]
        return max(bounds, default=1)

    def covers_relation(self, relation_name: str) -> bool:
        """Proposition 5.4's condition for one relation: some constraint
        ``R(X -> Y, N)`` has ``X ∪ Y`` equal to all attributes of ``R``."""
        relation = self.schema.relation(relation_name)
        all_attrs = frozenset(relation.attributes)
        return any(c.xy_set == all_attrs or all_attrs <= c.xy_set
                   for c in self.for_relation(relation_name))

    def covers_schema(self) -> bool:
        """Proposition 5.4: ``A`` covers ``R`` when every relation is covered."""
        return all(self.covers_relation(name)
                   for name in self.schema.relation_names())

    def size(self) -> int:
        """``|A|``: total number of attributes mentioned across constraints."""
        return sum(len(c.x) + len(c.y) for c in self._constraints)

    def fingerprint(self) -> str:
        """A canonical string determining ``A`` up to constraint order.

        Since a query's coverage verdict, bounded plan and cost
        certificate are functions of Q and A only (paper, Section 2),
        this is the access-schema half of the ``repro.service``
        plan-cache key.
        """
        return "&".join(sorted(str(c) for c in self._constraints))

    def __len__(self) -> int:
        return len(self._constraints)

    def __iter__(self) -> Iterator[AccessConstraint]:
        return iter(self._constraints)

    def __str__(self) -> str:
        return "{" + "; ".join(str(c) for c in self._constraints) + "}"
