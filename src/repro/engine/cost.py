"""Static cost bounds for bounded plans.

For a boundedly evaluable plan, both the amount of data fetched and the
result size are bounded by functions of ``Q`` and ``A`` alone (paper,
Section 2).  This module computes those bounds by abstract
interpretation over the plan: every op's output-row bound is derived
from its inputs' bounds and, for ``fetch``, the constraint's cardinality
bound.

For constant-cardinality access schemas the numbers are absolute
constants; for general constraints ``R(X→Y, s(·))`` they are evaluated
at a supplied ``db_size`` (the bound then grows like ``s(|D|)`` — still
a small fraction of ``D``, as Section 2 observes).

These static numbers are *guarantees*: the executor's observed
``tuples_fetched`` never exceeds ``fetch_bound`` (property-tested in
``tests/engine/test_cost.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import PlanError
from ..schema.access import AccessConstraint
from .plan import (ConstOp, DiffOp, EmptyOp, FetchOp, Plan, ProductOp,
                   ProjectOp, RenameOp, SelectOp, UnionOp, UnitOp)


Factor = AccessConstraint  # A cost term is a product of constraint bounds.


def constraint_lookup_bound(constraint: AccessConstraint,
                            db_size: int | None) -> int | None:
    """Tuples one index lookup through ``constraint`` can return, or
    ``None`` when the constraint's cardinality is non-constant and no
    ``db_size`` is supplied (the optimizer's estimator degrades
    gracefully where :func:`static_bounds` would raise)."""
    if constraint.is_constant:
        return constraint.bound(0)
    if db_size is None:
        return None
    return constraint.bound(db_size)


def _eval_term(term: tuple[Factor, ...], db_size: int | None) -> int:
    """Evaluate a product of cardinality bounds."""
    product = 1
    for factor in term:
        if factor.is_constant:
            product *= factor.bound(0)
        else:
            if db_size is None:
                raise PlanError(
                    f"non-constant constraint {factor} in the cost "
                    "certificate; pass db_size to evaluate it")
            product *= factor.bound(db_size)
    return product


@dataclass
class CostCertificate:
    """The Theorem 3.11 construction bound, attached by the plan builder.

    ``fetch_terms[i]`` bounds the tuples returned by the i-th fetch as a
    product of cardinality bounds (the environment bound before the
    fetch times the fetch's own bound); ``output_terms`` bound the
    result size (one term per unioned disjunct).  These are the paper's
    "determined by Q and A only" constants: for constant access schemas
    they do not mention ``|D|`` at all.
    """

    fetch_terms: list[tuple[Factor, ...]] = field(default_factory=list)
    output_terms: list[tuple[Factor, ...]] = field(default_factory=list)

    def fetch_bound(self, db_size: int | None = None) -> int:
        return sum(_eval_term(term, db_size) for term in self.fetch_terms)

    def output_bound(self, db_size: int | None = None) -> int:
        return sum(_eval_term(term, db_size) for term in self.output_terms)

    def merge(self, other: "CostCertificate") -> None:
        self.fetch_terms.extend(other.fetch_terms)
        self.output_terms.extend(other.output_terms)


@dataclass
class FetchBound:
    """Static bound for one fetch op."""

    step: int
    constraint_str: str
    lookups: int
    tuples: int


@dataclass
class PlanCost:
    """Static bounds for a whole plan."""

    output_bound: int
    fetch_bound: int
    lookup_bound: int
    per_fetch: list[FetchBound] = field(default_factory=list)

    def __str__(self) -> str:
        return (f"PlanCost(output<={self.output_bound}, "
                f"fetched<={self.fetch_bound}, "
                f"lookups<={self.lookup_bound})")


def static_bounds(plan: Plan, db_size: int | None = None) -> PlanCost:
    """Compute static row/fetch bounds for ``plan``.

    When the plan carries a builder-issued :class:`CostCertificate`
    (``plan.certificate``), its tight Theorem-3.11 bounds are used.
    Otherwise a generic abstract interpretation runs over the ops; it is
    sound but very loose on join patterns (a product's bound is the
    product of its inputs' bounds, ignoring the selection that follows),
    so builder plans should always carry certificates.

    ``db_size`` is required when the plan fetches through non-constant
    cardinality constraints; for constant access schemas it is ignored.
    """
    certificate = getattr(plan, "certificate", None)
    if certificate is not None:
        return PlanCost(
            output_bound=certificate.output_bound(db_size),
            fetch_bound=certificate.fetch_bound(db_size),
            lookup_bound=sum(
                _eval_term(term[:-1], db_size) if term else 1
                for term in certificate.fetch_terms),
            per_fetch=[
                FetchBound(step=i, constraint_str=str(term[-1]) if term else "?",
                           lookups=_eval_term(term[:-1], db_size) if term else 1,
                           tuples=_eval_term(term, db_size))
                for i, term in enumerate(certificate.fetch_terms)
            ],
        )
    bounds: list[int] = []
    per_fetch: list[FetchBound] = []
    fetch_total = 0
    lookup_total = 0
    for step, op in enumerate(plan.steps):
        if isinstance(op, (UnitOp, ConstOp)):
            bound = 1
        elif isinstance(op, EmptyOp):
            bound = 0
        elif isinstance(op, FetchOp):
            source_bound = bounds[op.source]
            if op.constraint.is_constant:
                per_lookup = op.constraint.bound(0)
            else:
                if db_size is None:
                    raise PlanError(
                        f"plan fetches through non-constant constraint "
                        f"{op.constraint}; pass db_size to bound it"
                    )
                per_lookup = op.constraint.bound(db_size)
            bound = source_bound * per_lookup
            fetch_total += bound
            lookup_total += source_bound
            per_fetch.append(FetchBound(step, str(op.constraint),
                                        source_bound, bound))
        elif isinstance(op, (ProjectOp, SelectOp, RenameOp)):
            bound = bounds[op.source]
        elif isinstance(op, ProductOp):
            bound = bounds[op.left] * bounds[op.right]
        elif isinstance(op, UnionOp):
            bound = sum(bounds[s] for s in op.sources)
        elif isinstance(op, DiffOp):
            bound = bounds[op.left]
        else:
            raise PlanError(f"cannot bound unknown op {op!r}")
        bounds.append(bound)
    if not bounds:
        raise PlanError("cannot bound an empty plan")
    return PlanCost(
        output_bound=bounds[plan.result_index],
        fetch_bound=fetch_total,
        lookup_bound=lookup_total,
        per_fetch=per_fetch,
    )
