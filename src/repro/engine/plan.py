"""Query plans (paper, Section 2, "Query plans").

A plan is a sequence ``T1 = δ1, ..., Tn = δn`` where each ``δi`` is one
of the paper's operations:

* ``{a}`` — a singleton constant (:class:`ConstOp`; :class:`UnitOp` is
  the empty projection of a singleton, the standard nullary unit);
* ``fetch(X ∈ Tj, R, Y)`` — retrieve ``⋃_{ā∈Tj} D_XY(X = ā)`` through
  the index of an access constraint (:class:`FetchOp`) — the *only*
  operation that touches data;
* ``π``, ``σ``, ``ρ`` (:class:`ProjectOp`, :class:`SelectOp`,
  :class:`RenameOp`);
* ``×``, ``∪``, ``−`` (:class:`ProductOp`, :class:`UnionOp`,
  :class:`DiffOp`).

Tables are sets of rows with named columns.  A plan is *boundedly
evaluable under A* when every fetch is backed by a constraint of ``A``
(with ``Y ⊆ X ∪ Y'``) and its length is bounded — checked by
:meth:`Plan.check_bounded_under`.  The language fragment a plan stays
within (CQ: no ∪/−; UCQ: trailing ∪ block; ∃FO+: ∪ anywhere; FO: −
allowed) is classified by :meth:`Plan.language_class`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Union

from ..errors import PlanError
from ..schema.access import AccessConstraint, AccessSchema


@dataclass(frozen=True)
class ColEq:
    """Selection condition: two columns are equal."""

    left: str
    right: str

    def __str__(self) -> str:
        return f"{self.left} = {self.right}"


@dataclass(frozen=True)
class ConstEq:
    """Selection condition: a column equals a constant."""

    column: str
    value: Hashable

    def __str__(self) -> str:
        return f"{self.column} = {self.value!r}"


Condition = Union[ColEq, ConstEq]


class Op:
    """Base class for plan operations; ``inputs`` lists step indices."""

    def inputs(self) -> tuple[int, ...]:
        return ()

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        raise NotImplementedError


@dataclass(frozen=True)
class UnitOp(Op):
    """The nullary unit table: one row, no columns (π∅ of a constant)."""

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return ()

    def __str__(self) -> str:
        return "unit()"


@dataclass(frozen=True)
class EmptyOp(Op):
    """An empty table with the given columns (for unsatisfiable queries)."""

    columns: tuple[str, ...]

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return self.columns

    def __str__(self) -> str:
        return f"empty({', '.join(self.columns)})"


@dataclass(frozen=True)
class ConstOp(Op):
    """``{a}``: a one-column, one-row table holding a constant of Q."""

    column: str
    value: Hashable

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return (self.column,)

    def __str__(self) -> str:
        return f"{{{self.value!r}}} as {self.column}"


@dataclass(frozen=True)
class FetchOp(Op):
    """``fetch(X ∈ T_source, R, X∪Y)`` backed by ``constraint``.

    ``x_columns`` name the source columns holding the X-value, in the
    constraint's X-attribute order; ``out_columns`` name the result's
    ``X ∪ Y`` columns (X attributes first, then Y attributes).
    """

    source: int
    x_columns: tuple[str, ...]
    constraint: AccessConstraint
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return self.out_columns

    def __str__(self) -> str:
        xs = ", ".join(self.x_columns) or "()"
        return (f"fetch(({xs}) in T{self.source}, {self.constraint}) "
                f"as ({', '.join(self.out_columns)})")


@dataclass(frozen=True)
class ProjectOp(Op):
    """``π``: keep ``src_columns`` (repeats allowed), optionally renamed."""

    source: int
    src_columns: tuple[str, ...]
    out_columns: tuple[str, ...] | None = None

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return self.out_columns if self.out_columns is not None else self.src_columns

    def __str__(self) -> str:
        cols = ", ".join(self.src_columns)
        if self.out_columns is not None and self.out_columns != self.src_columns:
            cols += f" as {', '.join(self.out_columns)}"
        return f"project(T{self.source}; {cols})"


@dataclass(frozen=True)
class SelectOp(Op):
    """``σ``: filter by a conjunction of equality conditions."""

    source: int
    conditions: tuple[Condition, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return plan.columns_of(self.source)

    def __str__(self) -> str:
        conds = " and ".join(str(c) for c in self.conditions)
        return f"select(T{self.source}; {conds})"


@dataclass(frozen=True)
class RenameOp(Op):
    """``ρ``: rename columns via an (old -> new) mapping."""

    source: int
    mapping: tuple[tuple[str, str], ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        mapping = dict(self.mapping)
        return tuple(mapping.get(c, c) for c in plan.columns_of(self.source))

    def __str__(self) -> str:
        pairs = ", ".join(f"{a}->{b}" for a, b in self.mapping)
        return f"rename(T{self.source}; {pairs})"


@dataclass(frozen=True)
class ProductOp(Op):
    """``×``: Cartesian product; column names must not clash."""

    left: int
    right: int

    def inputs(self) -> tuple[int, ...]:
        return (self.left, self.right)

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return plan.columns_of(self.left) + plan.columns_of(self.right)

    def __str__(self) -> str:
        return f"T{self.left} x T{self.right}"


@dataclass(frozen=True)
class UnionOp(Op):
    """``∪``: union of same-arity tables (columns taken from the first)."""

    sources: tuple[int, ...]

    def inputs(self) -> tuple[int, ...]:
        return self.sources

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return plan.columns_of(self.sources[0])

    def __str__(self) -> str:
        return " u ".join(f"T{s}" for s in self.sources)


@dataclass(frozen=True)
class DiffOp(Op):
    """``−``: set difference of same-arity tables."""

    left: int
    right: int

    def inputs(self) -> tuple[int, ...]:
        return (self.left, self.right)

    def output_columns(self, plan: "Plan") -> tuple[str, ...]:
        return plan.columns_of(self.left)

    def __str__(self) -> str:
        return f"T{self.left} - T{self.right}"


class Plan:
    """An executable query plan: an append-only sequence of ops.

    >>> plan = Plan("demo")
    >>> unit = plan.add(UnitOp())
    >>> plan.result_index
    0
    """

    def __init__(self, name: str = "plan"):
        self.name = name
        self.steps: list[Op] = []
        self._columns: list[tuple[str, ...]] = []
        #: Optional builder-issued cost certificate (see repro.engine.cost).
        self.certificate = None

    def add(self, op: Op) -> int:
        """Append an op (validating its inputs); returns its step index."""
        for source in op.inputs():
            if not 0 <= source < len(self.steps):
                raise PlanError(
                    f"op {op} references step T{source}, but only "
                    f"{len(self.steps)} steps exist"
                )
        index = len(self.steps)
        self.steps.append(op)
        self._columns.append(op.output_columns(self))
        self._validate_columns(op, index)
        return index

    def _validate_columns(self, op: Op, index: int) -> None:
        columns = self._columns[index]
        if len(set(columns)) != len(columns) and not isinstance(op, ProjectOp):
            raise PlanError(f"op {op} produces duplicate columns {columns}")
        if isinstance(op, (FetchOp,)):
            source_columns = set(self.columns_of(op.source))
            for column in op.x_columns:
                if column not in source_columns:
                    raise PlanError(
                        f"fetch x-column {column!r} missing from source "
                        f"columns {sorted(source_columns)}"
                    )
            expected = len(op.constraint.x) + len(op.constraint.y)
            if len(op.out_columns) != expected:
                raise PlanError(
                    f"fetch over {op.constraint} must output {expected} "
                    f"columns, got {len(op.out_columns)}"
                )
        if isinstance(op, ProjectOp):
            source_columns = set(self.columns_of(op.source))
            for column in op.src_columns:
                if column not in source_columns:
                    raise PlanError(
                        f"projection column {column!r} missing from source"
                    )
            if (op.out_columns is not None
                    and len(op.out_columns) != len(op.src_columns)):
                raise PlanError("projection rename arity mismatch")
        if isinstance(op, UnionOp):
            arities = {len(self.columns_of(s)) for s in op.sources}
            if len(arities) != 1:
                raise PlanError(f"union inputs disagree on arity: {arities}")
        if isinstance(op, DiffOp):
            if len(self.columns_of(op.left)) != len(self.columns_of(op.right)):
                raise PlanError("difference inputs disagree on arity")

    def columns_of(self, index: int) -> tuple[str, ...]:
        return self._columns[index]

    @property
    def result_index(self) -> int:
        if not self.steps:
            raise PlanError("plan has no steps")
        return len(self.steps) - 1

    @property
    def result_columns(self) -> tuple[str, ...]:
        return self.columns_of(self.result_index)

    def fetch_ops(self) -> list[FetchOp]:
        return [op for op in self.steps if isinstance(op, FetchOp)]

    def constant_values(self) -> list[Hashable]:
        """Every constant the plan mentions (``ConstOp`` values and
        ``ConstEq`` selection values), in step order with repeats."""
        values: list[Hashable] = []
        for op in self.steps:
            if isinstance(op, ConstOp):
                values.append(op.value)
            elif isinstance(op, SelectOp):
                values.extend(c.value for c in op.conditions
                              if isinstance(c, ConstEq))
        return values

    def map_constants(self, fn) -> "Plan":
        """A structurally shared copy with ``fn`` applied to every
        constant (``ConstOp`` values and ``ConstEq`` condition values).

        Column layout, fetch structure and the cost certificate are
        unchanged — the paper's bounds depend on Q and A only, never on
        constant values — so no re-validation or rebuild is needed.
        This is the hot-path primitive behind parameterized templates
        (``repro.service.templates``): binding a template is one pass
        over the op list, not a parse + coverage fixpoint + build.
        """
        clone = Plan(self.name)
        clone.certificate = self.certificate
        for op in self.steps:
            if isinstance(op, ConstOp):
                value = fn(op.value)
                if value is not op.value:
                    op = ConstOp(op.column, value)
            elif isinstance(op, SelectOp):
                conditions = tuple(
                    ConstEq(c.column, fn(c.value))
                    if isinstance(c, ConstEq) else c
                    for c in op.conditions)
                if conditions != op.conditions:
                    op = SelectOp(op.source, conditions)
            clone.steps.append(op)
        clone._columns = list(self._columns)
        return clone

    def __len__(self) -> int:
        return len(self.steps)

    # -- paper-facing checks ---------------------------------------------------

    def check_bounded_under(self, access_schema: AccessSchema) -> None:
        """Raise :class:`PlanError` unless every fetch is backed by a
        constraint of ``A`` (with the fetched Y inside ``X ∪ Y'``) and the
        plan length is within the paper's exponential envelope."""
        available = list(access_schema)
        for op in self.fetch_ops():
            ok = any(
                existing.relation_name == op.constraint.relation_name
                and existing.x_set == op.constraint.x_set
                and op.constraint.y_set <= existing.xy_set
                for existing in available
            )
            if not ok:
                raise PlanError(
                    f"fetch {op} is not backed by any constraint of A"
                )
        # The length bound is exponential in |R|, |A|, |Q|; any plan the
        # builder emits is linear in |Q|·|A|, so a generous cap suffices.
        cap = 2 ** min(40, (access_schema.size() + 1) * 4 + 16)
        if len(self.steps) > cap:
            raise PlanError(f"plan length {len(self.steps)} exceeds bound")

    def language_class(self) -> str:
        """Which fragment's op restrictions the plan honours (Section 2).

        Returns ``"CQ"``, ``"UCQ"``, ``"EFO+"`` or ``"FO"``.
        """
        has_diff = any(isinstance(op, DiffOp) for op in self.steps)
        if has_diff:
            return "FO"
        union_positions = [i for i, op in enumerate(self.steps)
                           if isinstance(op, UnionOp)]
        if not union_positions:
            return "CQ"
        # UCQ: unions only in one trailing block.
        tail = range(union_positions[0], len(self.steps))
        if all(isinstance(self.steps[i], UnionOp) for i in tail):
            return "UCQ"
        return "EFO+"

    def explain(self) -> str:
        lines = [f"plan {self.name}:"]
        for index, op in enumerate(self.steps):
            lines.append(f"  T{index} = {op}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()
