"""Columnar physical-plan execution with access accounting.

The executor runs :class:`~repro.engine.optimizer.physical.PhysicalPlan`
steps batch-at-a-time over *encoded* columns: every intermediate is a
:class:`~repro.engine.columns.Batch` of dictionary codes (see
:class:`~repro.storage.encoding.ValueDictionary`), fetched rows arrive
from storage as pre-encoded ``array('q')`` columns, joins hash int
codes instead of value tuples, and the only Python-value work in a
request is decoding the final batch.  Before its first run a plan is
*specialized* (:mod:`~repro.engine.optimizer.specialize`): one closure
per op with positions, key widths and constant codes baked in, so the
warm path interprets nothing per batch.  Handed a *logical*
:class:`~repro.engine.plan.Plan`, it first runs the one-time optimizer
(memoized on the plan object).

Crucially, the accounting semantics are unchanged from the
tuple-at-a-time executors this replaces: every tuple that crosses the
storage boundary is counted, so the numbers reported here — fetch
calls, index lookups, tuples fetched — are still the paper's
``|D_Q|``-style quantities (Section 2) and what EXP-1/EXP-4 plot.
Code-distinctness equals value-distinctness (the dictionary is a
bijection), so per-distinct-X lookup counts are identical too.

:class:`LegacyTupleExecutor` keeps the previous value-tuple batch
implementation on the unencoded ``fetch_flat`` surface — benchmarks
use it as the columnar path's wall-clock baseline, and recording
harnesses that interpose on ``_fetch_flat`` subclass it.
:func:`interpret_logical` keeps the direct tuple-at-a-time
interpretation of the logical IR (no optimizer, no fusion) as the
reference semantics — property tests and the EXP-9 benchmark compare
the optimized pipeline against it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from ..deadline import current_deadline
from ..errors import ExecutionError
from ..obs.trace import span
from ..storage.database import Database
from ..storage.statistics import TableStatistics
from .columns import Batch, column_index, deduped_batch
from .optimizer.physical import (BatchFetchOp, ConstCheck, ConstScanOp,
                                 CrossJoinOp, DifferenceOp,
                                 DistinctUnionOp, EmptyScanOp, FilterOp,
                                 FusedFetchOp, GatherOp, HashJoinOp,
                                 PhysicalOp, PhysicalPlan, UnitScanOp,
                                 op_label)
from .optimizer.pipeline import ensure_physical
from .optimizer.specialize import specialized_plan
from .plan import (ColEq, ConstEq, ConstOp, DiffOp, EmptyOp, FetchOp, Op,
                   Plan, ProductOp, ProjectOp, RenameOp, SelectOp, UnionOp,
                   UnitOp)

__all__ = [
    "AccessStats", "Batch", "ExecutionResult", "Executor",
    "LegacyTupleExecutor", "Table", "execute_plan", "interpret_logical",
]


@dataclass
class Table:
    """A named-column table with set semantics (the result format)."""

    columns: tuple[str, ...]
    rows: set[tuple]

    def column_index(self, name: str) -> int:
        return column_index(self.columns, name)

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class AccessStats:
    """What the plan touched: the empirical ``|D_Q|`` ingredients."""

    fetch_calls: int = 0
    #: Distinct index lookups (one per distinct X-value per fetch op).
    index_lookups: int = 0
    #: Tuples returned by *cold* index lookups — the data genuinely
    #: accessed in storage; this is the honest ``|D_Q|`` number even
    #: when a fetch cache is in front of the index.
    tuples_fetched: int = 0
    #: Lookups answered by a fetch cache without touching storage
    #: (always 0 under the plain executor).
    fetch_cache_hits: int = 0
    #: Lookups that went through a fetch cache but missed.
    fetch_cache_misses: int = 0
    #: Tuples served from the fetch cache instead of storage.
    tuples_from_cache: int = 0
    #: Largest intermediate batch (plan-side work, not data access).
    max_intermediate: int = 0
    ops_executed: int = 0
    #: Batches executed per physical-op kind (``hash_join``,
    #: ``batch_fetch``, ...) — the shape of the work, not its size.
    op_counts: dict = field(default_factory=dict)

    def observe_table(self, table) -> None:
        self.max_intermediate = max(self.max_intermediate, len(table))

    def merge(self, other: "AccessStats") -> None:
        """Fold another request's accounting into this one (batch totals)."""
        self.fetch_calls += other.fetch_calls
        self.index_lookups += other.index_lookups
        self.tuples_fetched += other.tuples_fetched
        self.fetch_cache_hits += other.fetch_cache_hits
        self.fetch_cache_misses += other.fetch_cache_misses
        self.tuples_from_cache += other.tuples_from_cache
        self.max_intermediate = max(self.max_intermediate,
                                    other.max_intermediate)
        self.ops_executed += other.ops_executed
        for key, count in other.op_counts.items():
            self.op_counts[key] = self.op_counts.get(key, 0) + count


@dataclass
class ExecutionResult:
    """The final table plus accounting."""

    table: Table
    stats: AccessStats

    @property
    def answers(self) -> set[tuple]:
        return self.table.rows

    @property
    def boolean(self) -> bool:
        """For Boolean (zero-column) results: is the answer 'true'?"""
        return bool(self.table.rows)


def _passes(row: tuple, checks) -> bool:
    for check in checks:
        if isinstance(check, ConstCheck):
            if row[check.position] != check.value:
                return False
        else:
            if row[check.left] != row[check.right]:
                return False
    return True


class Executor:
    """Executes plans against one database instance — the columnar path.

    Accepts a logical :class:`Plan` (optimized once, memoized on the
    plan) or a ready :class:`PhysicalPlan` (e.g. from a service's plan
    cache — no optimizer work at all).  The plan is specialized against
    the database's value dictionary on first contact; warm executions
    run pre-built closures over encoded batches and decode only the
    final result.
    """

    def __init__(self, db: Database):
        self.db = db

    def _resolve(self, plan) -> PhysicalPlan:
        if isinstance(plan, Plan):
            if not plan.steps:
                raise ExecutionError("cannot execute an empty plan")
            return ensure_physical(
                plan, lambda: TableStatistics.from_database(self.db))
        if isinstance(plan, PhysicalPlan):
            return plan
        raise ExecutionError(
            f"cannot execute a {type(plan).__name__}; expected a "
            "logical Plan or a PhysicalPlan")

    def execute(self, plan) -> ExecutionResult:
        physical = self._resolve(plan)
        dictionary = self.db.dictionary
        spec = specialized_plan(physical, dictionary)
        stats = AccessStats()
        op_counts = stats.op_counts
        batches: list[Batch] = []
        append = batches.append
        largest = 0
        deadline = current_deadline()
        with span("execute"):
            for step, label in zip(spec.steps, spec.labels):
                if deadline is not None:
                    # Between-steps is the executor's cancellation
                    # point: a batch in flight always completes (the
                    # storage layer has its own finer-grained checks),
                    # partial pipelines never leak out.
                    deadline.check(f"executor:{label}")
                batch = step(batches, self, stats)
                op_counts[label] = op_counts.get(label, 0) + 1
                if batch.length > largest:
                    largest = batch.length
                append(batch)
        stats.ops_executed += len(spec.steps)
        stats.max_intermediate = max(stats.max_intermediate, largest)
        final = batches[-1]
        with span("decode"):
            rows = dictionary.decode_rows(final.cols, final.length)
        return ExecutionResult(Table(final.columns, rows), stats)

    # -- the storage boundary -------------------------------------------------

    def _fetch_flat(self, constraint, x_values: Sequence[tuple],
                    stats: AccessStats) -> list[tuple]:
        """One batched trip to storage in the *value* domain: every row
        for the batch of distinct X-values, in one unordered list.
        Accounting is unchanged from the per-value days: one index
        lookup per distinct X-value, every returned tuple counted.
        Subclasses may interpose a per-X cache here (see
        ``repro.service.fetchcache.CachingExecutor``)."""
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fetch_flat")
        rows = self.db.fetch_flat(constraint, x_values)
        stats.index_lookups += len(x_values)
        stats.tuples_fetched += len(rows)
        return rows

    def _fetch_flat_encoded(self, constraint, keys: Sequence,
                            stats: AccessStats):
        """The encoded twin of :meth:`_fetch_flat`: code keys in,
        concatenated ``(code columns, length)`` out.  Identical
        accounting — the dictionary is a bijection, so the batch of
        distinct codes is exactly the batch of distinct X-values.

        This call is also the process-sharding RPC surface: under a
        :class:`~repro.storage.procshard.ProcessShardedBackend` the key
        batch fans out to shard worker processes and the columns come
        back over pipes — with the same answers and the same
        ``AccessStats``, because accounting happens here and in the
        specialized fetch step, never inside an engine.  (``fetch_calls``
        and the ``fetch`` span are counted at the call sites: the
        specialized step closures and ``_run_fetch``.)"""
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fetch_flat_encoded")
        cols, length = self.db.fetch_flat_encoded(constraint, keys)
        stats.index_lookups += len(keys)
        stats.tuples_fetched += length
        return cols, length


class LegacyTupleExecutor(Executor):
    """The pre-columnar batch executor: value tuples end to end.

    Kept as the wall-clock baseline the columnar path is benchmarked
    against (EXP-9/EXP-10) and as the harness base class for recorders
    that interpose on the unencoded ``_fetch_flat`` boundary.  Answers
    and :class:`AccessStats` are identical to the columnar path's by
    construction — property tests enforce it.
    """

    def execute(self, plan) -> ExecutionResult:
        physical = self._resolve(plan)
        stats = AccessStats()
        batches: list[Batch] = []
        op_counts = stats.op_counts
        with span("execute"):
            for op in physical.steps:
                batch = self._run_op(op, batches, stats)
                stats.ops_executed += 1
                kind = op_label(type(op))
                op_counts[kind] = op_counts.get(kind, 0) + 1
                stats.max_intermediate = max(stats.max_intermediate,
                                             batch.length)
                batches.append(batch)
        final = batches[-1]
        return ExecutionResult(Table(final.columns, final.rows()), stats)

    # -- op dispatch ----------------------------------------------------------

    def _run_op(self, op: PhysicalOp, batches: list[Batch],
                stats: AccessStats) -> Batch:
        if isinstance(op, UnitScanOp):
            return Batch((), [], 1, True)
        if isinstance(op, EmptyScanOp):
            return Batch(op.out_columns,
                         [[] for _ in op.out_columns], 0, True)
        if isinstance(op, ConstScanOp):
            return Batch(op.out_columns, [[op.value]], 1, True)
        if isinstance(op, GatherOp):
            return self._run_gather(op, batches[op.source])
        if isinstance(op, FilterOp):
            return self._run_filter(op, batches[op.source])
        if isinstance(op, (BatchFetchOp, FusedFetchOp)):
            return self._run_fetch(op, batches[op.source], stats)
        if isinstance(op, HashJoinOp):
            return self._run_hash_join(op, batches[op.left],
                                       batches[op.right])
        if isinstance(op, CrossJoinOp):
            return self._run_cross(op, batches[op.left], batches[op.right])
        if isinstance(op, DistinctUnionOp):
            return self._run_union(op, batches)
        if isinstance(op, DifferenceOp):
            left, right = batches[op.left], batches[op.right]
            rows = list(left.rows() - right.rows())
            if rows and op.out_columns:
                cols = [list(column) for column in zip(*rows)]
            else:
                cols = [[] for _ in op.out_columns]
            return Batch(op.out_columns, cols,
                         len(rows) if op.out_columns else
                         (1 if rows else 0), True)
        raise ExecutionError(f"unknown physical op {op!r}")

    @staticmethod
    def _run_gather(op: GatherOp, source: Batch) -> Batch:
        if not op.positions:
            return Batch(op.out_columns, [], 1 if source.length else 0, True)
        cols = [source.cols[p] for p in op.positions]
        permutation = (len(op.positions) == len(source.columns)
                       and sorted(op.positions) ==
                       list(range(len(source.columns))))
        if source.distinct and permutation:
            # Reorder/rename of distinct rows: column lists are shared,
            # nothing is copied, distinctness is preserved.
            return Batch(op.out_columns, cols, source.length, True)
        return deduped_batch(op.out_columns, cols, source.length)

    @staticmethod
    def _run_filter(op: FilterOp, source: Batch) -> Batch:
        selected = range(source.length)
        for check in op.checks:
            if isinstance(check, ConstCheck):
                column, value = source.cols[check.position], check.value
                selected = [i for i in selected if column[i] == value]
            else:
                left, right = source.cols[check.left], source.cols[check.right]
                selected = [i for i in selected if left[i] == right[i]]
        selected = list(selected)
        cols = [[column[i] for i in selected] for column in source.cols]
        return Batch(op.out_columns, cols, len(selected), source.distinct)

    def _run_fetch(self, op, source: Batch,
                   stats: AccessStats) -> Batch:
        if op.x_positions:
            key_cols = [source.cols[p] for p in op.x_positions]
            x_values = list(dict.fromkeys(zip(*key_cols)))
        else:
            x_values = [()] if source.length else []
        stats.fetch_calls += 1
        # The whole batch of distinct X-values crosses the storage
        # boundary in ONE vectorized call — the executor never loops
        # single lookups against the backend.
        with span("fetch"):
            fetched = self._fetch_flat(op.constraint, x_values, stats)
        checks = op.checks if isinstance(op, FusedFetchOp) else ()
        if checks:
            out_rows = [row for row in fetched if _passes(row, checks)]
        else:
            out_rows = fetched
        if out_rows:
            cols = [list(column) for column in zip(*out_rows)]
        else:
            cols = [[] for _ in op.out_columns]
        # Per-X results are distinct and carry their X-prefix, so the
        # concatenation over distinct X-values is duplicate-free.
        return Batch(op.out_columns, cols, len(out_rows), True)

    @staticmethod
    def _run_hash_join(op: HashJoinOp, left: Batch, right: Batch) -> Batch:
        if op.build == "left":
            build, probe = left, right
            build_key, probe_key = op.left_key, op.right_key
        else:
            build, probe = right, left
            build_key, probe_key = op.right_key, op.left_key
        build_cols = [build.cols[p] for p in build_key]
        buckets: dict[tuple, list[int]] = {}
        for i in range(build.length):
            buckets.setdefault(tuple(col[i] for col in build_cols),
                               []).append(i)
        probe_cols = [probe.cols[p] for p in probe_key]
        left_index: list[int] = []
        right_index: list[int] = []
        probe_is_left = probe is left
        for j in range(probe.length):
            matches = buckets.get(tuple(col[j] for col in probe_cols))
            if not matches:
                continue
            for i in matches:
                if probe_is_left:
                    left_index.append(j)
                    right_index.append(i)
                else:
                    left_index.append(i)
                    right_index.append(j)
        cols = ([[column[i] for i in left_index] for column in left.cols]
                + [[column[j] for j in right_index]
                   for column in right.cols])
        return Batch(op.out_columns, cols, len(left_index),
                     left.distinct and right.distinct)

    @staticmethod
    def _run_cross(op: CrossJoinOp, left: Batch, right: Batch) -> Batch:
        l_count, r_count = left.length, right.length
        cols = ([[column[i] for i in range(l_count)
                  for _ in range(r_count)] for column in left.cols]
                + [column * l_count for column in right.cols])
        return Batch(op.out_columns, cols, l_count * r_count,
                     left.distinct and right.distinct)

    @staticmethod
    def _run_union(op: DistinctUnionOp, batches: list[Batch]) -> Batch:
        sources = [batches[s] for s in op.sources]
        if len(sources) == 1 and sources[0].distinct:
            only = sources[0]
            return Batch(op.out_columns, only.cols, only.length, True)
        width = len(op.out_columns)
        cols = [[] for _ in range(width)]
        total = 0
        for source in sources:
            for position in range(width):
                cols[position].extend(source.cols[position])
            total += source.length
        return deduped_batch(op.out_columns, cols, total)


# -- the logical reference interpreter ---------------------------------------


def interpret_logical(plan: Plan, db: Database,
                      stats: AccessStats | None = None) -> ExecutionResult:
    """Direct tuple-at-a-time interpretation of the *logical* IR.

    No optimizer, no join fusion, no batches: every step materializes a
    row set exactly as the paper's plan semantics reads.  This is the
    reference the optimized pipeline is property-tested against, and
    the "unoptimized" baseline of the EXP-9 benchmark.
    """
    stats = stats if stats is not None else AccessStats()
    tables: list[Table] = []

    def run(op: Op) -> Table:
        if isinstance(op, UnitOp):
            return Table((), {()})
        if isinstance(op, EmptyOp):
            return Table(op.columns, set())
        if isinstance(op, ConstOp):
            return Table((op.column,), {(op.value,)})
        if isinstance(op, FetchOp):
            source = tables[op.source]
            positions = [source.column_index(c) for c in op.x_columns]
            x_values = {tuple(row[p] for p in positions)
                        for row in source.rows}
            stats.fetch_calls += 1
            rows: set[tuple] = set()
            for x_value in x_values:
                fetched = db.fetch(op.constraint, x_value)
                stats.index_lookups += 1
                stats.tuples_fetched += len(fetched)
                rows.update(fetched)
            return Table(op.out_columns, rows)
        if isinstance(op, ProjectOp):
            source = tables[op.source]
            positions = [source.column_index(c) for c in op.src_columns]
            rows = {tuple(row[p] for p in positions) for row in source.rows}
            columns = (op.out_columns if op.out_columns is not None
                       else op.src_columns)
            return Table(tuple(columns), rows)
        if isinstance(op, SelectOp):
            source = tables[op.source]
            checks = []
            for condition in op.conditions:
                if isinstance(condition, ColEq):
                    checks.append((source.column_index(condition.left),
                                   source.column_index(condition.right),
                                   None))
                elif isinstance(condition, ConstEq):
                    checks.append((source.column_index(condition.column),
                                   condition.value))
                else:
                    raise ExecutionError(
                        f"unknown condition {condition!r}")
            rows = {row for row in source.rows
                    if all(row[c[0]] == row[c[1]] if len(c) == 3
                           else row[c[0]] == c[1] for c in checks)}
            return Table(source.columns, rows)
        if isinstance(op, RenameOp):
            mapping = dict(op.mapping)
            source = tables[op.source]
            return Table(tuple(mapping.get(c, c) for c in source.columns),
                         set(source.rows))
        if isinstance(op, ProductOp):
            left, right = tables[op.left], tables[op.right]
            rows = {l + r for l in left.rows for r in right.rows}
            return Table(left.columns + right.columns, rows)
        if isinstance(op, UnionOp):
            rows = set()
            for source in op.sources:
                rows |= tables[source].rows
            return Table(tables[op.sources[0]].columns, rows)
        if isinstance(op, DiffOp):
            left, right = tables[op.left], tables[op.right]
            return Table(left.columns, left.rows - right.rows)
        raise ExecutionError(f"unknown op {op!r}")

    if not plan.steps:
        raise ExecutionError("cannot execute an empty plan")
    for op in plan.steps:
        table = run(op)
        stats.ops_executed += 1
        stats.observe_table(table)
        tables.append(table)
    return ExecutionResult(tables[-1], stats)


def execute_plan(plan, db: Database) -> ExecutionResult:
    """Convenience wrapper: optimize (if needed) and run against ``db``."""
    return Executor(db).execute(plan)
