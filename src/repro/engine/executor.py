"""Plan execution with access accounting.

The executor materializes each plan step as a named-column table (set
semantics) and, crucially, counts every tuple that crosses the storage
boundary: bounded evaluability is an *access* guarantee, so the numbers
reported here — fetch calls, tuples fetched — are the paper's
``|D_Q|``-style quantities (Section 2) and what EXP-1/EXP-4 plot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..errors import ExecutionError
from ..storage.database import Database
from .plan import (ColEq, Condition, ConstEq, ConstOp, DiffOp, EmptyOp,
                   FetchOp, Op, Plan, ProductOp, ProjectOp, RenameOp,
                   SelectOp, UnionOp, UnitOp)


@dataclass
class Table:
    """A named-column table with set semantics."""

    columns: tuple[str, ...]
    rows: set[tuple]

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise ExecutionError(
                f"no column {name!r}; columns are {self.columns}"
            ) from None

    def __len__(self) -> int:
        return len(self.rows)


@dataclass
class AccessStats:
    """What the plan touched: the empirical ``|D_Q|`` ingredients."""

    fetch_calls: int = 0
    #: Distinct index lookups (one per distinct X-value per fetch op).
    index_lookups: int = 0
    #: Tuples returned by *cold* index lookups — the data genuinely
    #: accessed in storage; this is the honest ``|D_Q|`` number even
    #: when a fetch cache is in front of the index.
    tuples_fetched: int = 0
    #: Lookups answered by a fetch cache without touching storage
    #: (always 0 under the plain executor).
    fetch_cache_hits: int = 0
    #: Lookups that went through a fetch cache but missed.
    fetch_cache_misses: int = 0
    #: Tuples served from the fetch cache instead of storage.
    tuples_from_cache: int = 0
    #: Largest intermediate table (plan-side work, not data access).
    max_intermediate: int = 0
    ops_executed: int = 0

    def observe_table(self, table: Table) -> None:
        self.max_intermediate = max(self.max_intermediate, len(table))

    def merge(self, other: "AccessStats") -> None:
        """Fold another request's accounting into this one (batch totals)."""
        self.fetch_calls += other.fetch_calls
        self.index_lookups += other.index_lookups
        self.tuples_fetched += other.tuples_fetched
        self.fetch_cache_hits += other.fetch_cache_hits
        self.fetch_cache_misses += other.fetch_cache_misses
        self.tuples_from_cache += other.tuples_from_cache
        self.max_intermediate = max(self.max_intermediate,
                                    other.max_intermediate)
        self.ops_executed += other.ops_executed


@dataclass
class ExecutionResult:
    """The final table plus accounting."""

    table: Table
    stats: AccessStats

    @property
    def answers(self) -> set[tuple]:
        return self.table.rows

    @property
    def boolean(self) -> bool:
        """For Boolean (zero-column) results: is the answer 'true'?"""
        return bool(self.table.rows)


class Executor:
    """Executes plans against one database instance."""

    def __init__(self, db: Database):
        self.db = db

    def execute(self, plan: Plan) -> ExecutionResult:
        stats = AccessStats()
        fusable = plan.fused_join_products()
        tables: list[Table] = []
        for index, op in enumerate(plan.steps):
            if index in fusable:
                # Materialized lazily by the select that consumes it.
                stats.ops_executed += 1
                tables.append(None)  # type: ignore[arg-type]
                continue
            if isinstance(op, SelectOp) and op.source in fusable:
                table = self._run_join(plan.steps[op.source], op, tables)
            else:
                table = self._run_op(op, tables, stats)
            stats.ops_executed += 1
            stats.observe_table(table)
            tables.append(table)
        if not tables:
            raise ExecutionError("cannot execute an empty plan")
        return ExecutionResult(tables[-1], stats)

    def _run_join(self, product: ProductOp, op: SelectOp,
                  tables: list[Table]) -> Table:
        """``σ_conds(left × right)`` as a filtered hash join."""
        left, right = tables[product.left], tables[product.right]
        columns = left.columns + right.columns
        split = len(left.columns)

        def index_of(name: str) -> int:
            try:
                return columns.index(name)
            except ValueError:
                raise ExecutionError(
                    f"no column {name!r}; columns are {columns}") from None

        left_checks: list = []   # (position, const) or (pos, pos) in left
        right_checks: list = []
        join_pairs: list[tuple[int, int]] = []  # (left pos, right pos)
        for condition in op.conditions:
            if isinstance(condition, ConstEq):
                position = index_of(condition.column)
                if position < split:
                    left_checks.append((position, condition.value))
                else:
                    right_checks.append((position - split, condition.value))
            elif isinstance(condition, ColEq):
                a, b = index_of(condition.left), index_of(condition.right)
                if a < split and b < split:
                    left_checks.append((a, b, None))
                elif a >= split and b >= split:
                    right_checks.append((a - split, b - split, None))
                else:
                    if a >= split:
                        a, b = b, a
                    join_pairs.append((a, b - split))
            else:
                raise ExecutionError(f"unknown condition {condition!r}")

        def filtered(rows, checks):
            if not checks:
                return rows
            kept = []
            for row in rows:
                for check in checks:
                    if len(check) == 3:
                        if row[check[0]] != row[check[1]]:
                            break
                    elif row[check[0]] != check[1]:
                        break
                else:
                    kept.append(row)
            return kept

        left_rows = filtered(left.rows, left_checks)
        right_rows = filtered(right.rows, right_checks)
        rows: set[tuple] = set()
        if join_pairs:
            left_key = [p for p, _ in join_pairs]
            right_key = [p for _, p in join_pairs]
            buckets: dict[tuple, list[tuple]] = {}
            for row in right_rows:
                buckets.setdefault(
                    tuple(row[p] for p in right_key), []).append(row)
            for row in left_rows:
                for match in buckets.get(
                        tuple(row[p] for p in left_key), ()):
                    rows.add(row + match)
        else:
            for lrow in left_rows:
                for rrow in right_rows:
                    rows.add(lrow + rrow)
        return Table(columns, rows)

    # -- op dispatch ------------------------------------------------------------

    def _run_op(self, op: Op, tables: list[Table],
                stats: AccessStats) -> Table:
        if isinstance(op, UnitOp):
            return Table((), {()})
        if isinstance(op, EmptyOp):
            return Table(op.columns, set())
        if isinstance(op, ConstOp):
            return Table((op.column,), {(op.value,)})
        if isinstance(op, FetchOp):
            return self._run_fetch(op, tables[op.source], stats)
        if isinstance(op, ProjectOp):
            return self._run_project(op, tables[op.source])
        if isinstance(op, SelectOp):
            return self._run_select(op, tables[op.source])
        if isinstance(op, RenameOp):
            mapping = dict(op.mapping)
            source = tables[op.source]
            return Table(tuple(mapping.get(c, c) for c in source.columns),
                         set(source.rows))
        if isinstance(op, ProductOp):
            left, right = tables[op.left], tables[op.right]
            rows = {l + r for l in left.rows for r in right.rows}
            return Table(left.columns + right.columns, rows)
        if isinstance(op, UnionOp):
            first = tables[op.sources[0]]
            rows: set[tuple] = set()
            for source in op.sources:
                rows |= tables[source].rows
            return Table(first.columns, rows)
        if isinstance(op, DiffOp):
            left, right = tables[op.left], tables[op.right]
            return Table(left.columns, left.rows - right.rows)
        raise ExecutionError(f"unknown op {op!r}")

    def _run_fetch(self, op: FetchOp, source: Table,
                   stats: AccessStats) -> Table:
        positions = [source.column_index(c) for c in op.x_columns]
        x_values = {tuple(row[p] for p in positions) for row in source.rows}
        stats.fetch_calls += 1
        rows: set[tuple] = set()
        for x_value in x_values:
            rows.update(self._fetch_rows(op.constraint, x_value, stats))
        return Table(op.out_columns, rows)

    def _fetch_rows(self, constraint, x_value: tuple,
                    stats: AccessStats) -> Sequence[tuple]:
        """One index lookup.  Subclasses may interpose a cache here
        (see ``repro.service.fetchcache.CachingExecutor``)."""
        fetched = self.db.fetch(constraint, x_value)
        stats.index_lookups += 1
        stats.tuples_fetched += len(fetched)
        return fetched

    @staticmethod
    def _run_project(op: ProjectOp, source: Table) -> Table:
        positions = [source.column_index(c) for c in op.src_columns]
        rows = {tuple(row[p] for p in positions) for row in source.rows}
        columns = op.out_columns if op.out_columns is not None else op.src_columns
        return Table(tuple(columns), rows)

    @staticmethod
    def _run_select(op: SelectOp, source: Table) -> Table:
        checks: list = []
        for condition in op.conditions:
            if isinstance(condition, ColEq):
                li = source.column_index(condition.left)
                ri = source.column_index(condition.right)
                checks.append(("col", li, ri))
            elif isinstance(condition, ConstEq):
                ci = source.column_index(condition.column)
                checks.append(("const", ci, condition.value))
            else:
                raise ExecutionError(f"unknown condition {condition!r}")
        rows = set()
        for row in source.rows:
            ok = True
            for kind, a, b in checks:
                if kind == "col":
                    if row[a] != row[b]:
                        ok = False
                        break
                else:
                    if row[a] != b:
                        ok = False
                        break
            if ok:
                rows.add(row)
        return Table(source.columns, rows)


def execute_plan(plan: Plan, db: Database) -> ExecutionResult:
    """Convenience wrapper: run ``plan`` against ``db``."""
    return Executor(db).execute(plan)
