"""The executor's column model: encoded batches and column helpers.

Intermediate results flow through the physical operators as
:class:`Batch` objects — one integer column per attribute, row-aligned,
carrying dictionary *codes* rather than Python values (see
:class:`~repro.storage.encoding.ValueDictionary`).  Columns at the
storage boundary are ``array('q')`` (or readonly memoryviews over
them, when served from a cache); columns built by operators are plain
lists of codes.  Every operator treats columns as immutable once a
batch is published — sharing column references across batches is the
normal case, never a copy hazard.

Also here: :func:`column_index`, the shared column-name resolution used
by every layer that still addresses columns by name (result tables,
the logical reference interpreter, physical lowering), so a missing
column always raises the same :class:`~repro.errors.ExecutionError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..errors import ExecutionError
from ..storage.encoding import (ValueDictionary, extend_column, int_column,
                                readonly_view)

__all__ = [
    "Batch", "deduped_batch", "column_index",
    "ValueDictionary", "int_column", "extend_column", "readonly_view",
]


@dataclass
class Batch:
    """A columnar intermediate: one code column per attribute.

    ``distinct`` records whether the rows are known duplicate-free;
    ops that cannot introduce duplicates propagate it, so deduplication
    runs only where projection or union may actually have merged rows.
    """

    columns: tuple[str, ...]
    cols: list
    length: int
    distinct: bool

    def rows(self) -> set[tuple]:
        """The batch's rows as a set of tuples, in whatever domain the
        columns carry (codes on the columnar path, values on the legacy
        tuple path)."""
        if not self.columns:
            return {()} if self.length else set()
        return set(zip(*self.cols))

    def __len__(self) -> int:
        return self.length


def deduped_batch(columns: tuple[str, ...], cols: list, length: int) -> Batch:
    """Rebuild ``cols`` with duplicate rows removed (first-seen order).

    Dedup keys are the column entries themselves — integer codes on the
    columnar path, so no row tuples are built at all in the common
    single-column case, and multi-column keys are small int tuples.
    """
    if not columns:
        return Batch(columns, [], 1 if length else 0, True)
    if len(cols) == 1:
        column = list(dict.fromkeys(cols[0]))
        return Batch(columns, [column], len(column), True)
    rows = list(dict.fromkeys(zip(*cols)))
    if rows:
        new_cols = [list(column) for column in zip(*rows)]
    else:
        new_cols = [[] for _ in columns]
    return Batch(columns, new_cols, len(rows), True)


def column_index(columns: Sequence[str], name: str) -> int:
    """Position of ``name`` in ``columns``; :class:`ExecutionError` if absent."""
    try:
        return list(columns).index(name)
    except ValueError:
        raise ExecutionError(
            f"no column {name!r}; columns are {tuple(columns)}"
        ) from None
