"""Shared column-name resolution.

One helper, one error shape: every layer that maps a column name to a
position — the batch executor's :class:`~repro.engine.executor.Table`,
the logical reference interpreter, and the optimizer's physical
lowering — resolves through :func:`column_index` so a missing column
always raises the same :class:`~repro.errors.ExecutionError`.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ExecutionError


def column_index(columns: Sequence[str], name: str) -> int:
    """Position of ``name`` in ``columns``; :class:`ExecutionError` if absent."""
    try:
        return list(columns).index(name)
    except ValueError:
        raise ExecutionError(
            f"no column {name!r}; columns are {tuple(columns)}"
        ) from None
