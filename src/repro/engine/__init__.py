"""Query execution: naive baseline, logical plans, the rule-based
optimizer, the batch-oriented physical executor, and cost bounds."""

from .builder import build_bounded_plan, build_empty_plan, build_union_plan
from .cost import FetchBound, PlanCost, static_bounds
from .executor import (AccessStats, Batch, ExecutionResult, Executor,
                       LegacyTupleExecutor, Table, execute_plan,
                       interpret_logical)
from .naive import (ScanStats, evaluate, evaluate_cq, evaluate_fo,
                    evaluate_positive, evaluate_ucq)
from .optimizer import (OptimizationTrace, PhysicalPlan, ensure_physical,
                        optimize)
from .plan import (ColEq, ConstEq, ConstOp, DiffOp, EmptyOp, FetchOp, Plan,
                   ProductOp, ProjectOp, RenameOp, SelectOp, UnionOp, UnitOp)

__all__ = [
    "Plan", "UnitOp", "EmptyOp", "ConstOp", "FetchOp", "ProjectOp",
    "SelectOp", "RenameOp", "ProductOp", "UnionOp", "DiffOp",
    "ColEq", "ConstEq",
    "PhysicalPlan", "OptimizationTrace", "optimize", "ensure_physical",
    "Executor", "LegacyTupleExecutor", "ExecutionResult", "AccessStats",
    "Table", "Batch", "execute_plan", "interpret_logical",
    "build_bounded_plan", "build_union_plan", "build_empty_plan",
    "static_bounds", "PlanCost", "FetchBound",
    "ScanStats", "evaluate", "evaluate_cq", "evaluate_ucq",
    "evaluate_positive", "evaluate_fo",
]
