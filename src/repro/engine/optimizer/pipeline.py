"""The optimizer pipeline: lower → rules → finalize, with a trace.

``optimize(plan)`` is the one-time static step that replaces the old
executor's per-execution pattern scanning.  Its output — a
:class:`~repro.engine.optimizer.physical.PhysicalPlan` — is what plan
caches store and what the batch executor runs; re-running a cached
physical plan never touches the optimizer again.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ...obs.trace import span
from ..plan import Plan
from .graph import finalize, lower_plan
from .physical import PhysicalPlan
from .rules import (CommonSubplanElimination, DeadStepElimination,
                    JoinInputOrdering, ProductSelectToHashJoin,
                    ProjectionPushdown, Rule, SelectIntoFetchPushdown,
                    TrivialProductElimination)

#: The default pass order.  Trivial products go first (they put filters
#: directly over fetches), then join discovery (it exposes fetch-side
#: filters).  Sharing runs *before* fetch fusion: a fetch merged across
#: disjuncts saves an index lookup — the paper's currency — which beats
#: fusing a residual filter into each copy; fusion then applies only to
#: fetches that stayed single-consumer.  Pruning, cleanup and build-side
#: ordering close the pipeline.
DEFAULT_RULES: tuple[type, ...] = (
    TrivialProductElimination,
    ProductSelectToHashJoin,
    CommonSubplanElimination,
    SelectIntoFetchPushdown,
    ProjectionPushdown,
    DeadStepElimination,
    JoinInputOrdering,
)


@dataclass
class RuleFiring:
    """One rule's pass over the graph."""

    rule: str
    fired: int
    steps_before: int
    steps_after: int

    def __str__(self) -> str:
        note = f"{self.fired} rewrite(s)" if self.fired else "no match"
        return (f"{self.rule}: {note}, "
                f"{self.steps_before} -> {self.steps_after} steps")


@dataclass
class OptimizationTrace:
    """What the pipeline did to one plan, rule by rule."""

    logical_steps: int
    physical_steps: int = 0
    firings: list[RuleFiring] = field(default_factory=list)

    def fired_rules(self) -> list[str]:
        return [firing.rule for firing in self.firings if firing.fired]

    def total_rewrites(self) -> int:
        return sum(firing.fired for firing in self.firings)

    def explain(self) -> str:
        lines = [f"optimizer: {self.logical_steps} logical -> "
                 f"{self.physical_steps} physical steps, "
                 f"{self.total_rewrites()} rewrite(s)"]
        for firing in self.firings:
            lines.append(f"  {firing}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.explain()


def _instantiate(rules, statistics) -> list[Rule]:
    instances: list[Rule] = []
    for rule in rules:
        if rule is JoinInputOrdering:
            instances.append(JoinInputOrdering(statistics))
        elif isinstance(rule, Rule):
            instances.append(rule)
        else:
            instances.append(rule())
    return instances


def optimize(plan: Plan, statistics=None,
             rules=DEFAULT_RULES) -> PhysicalPlan:
    """Lower ``plan``, run the rule pipeline, emit a physical plan.

    ``statistics`` is an optional
    :class:`~repro.storage.statistics.TableStatistics` — or a zero-arg
    callable producing one, resolved only now that optimization is
    actually happening (cache-hit paths never pay for a snapshot).  It
    sharpens the row estimates behind join ordering and the per-step
    bounds shown by ``repro explain``.  ``rules`` may be overridden
    (e.g. with ``()``) to get a direct, unoptimized lowering for A/B
    comparison.
    """
    with span("optimize"):
        if callable(statistics):
            statistics = statistics()
        graph = lower_plan(plan)
        trace = OptimizationTrace(logical_steps=len(plan))
        for rule in _instantiate(rules, statistics):
            before = len(graph.topo())
            fired = rule.apply(graph)
            trace.firings.append(RuleFiring(rule.name, fired, before,
                                            len(graph.topo())))
        physical = finalize(graph, logical=plan, trace=trace,
                            statistics=statistics)
        trace.physical_steps = len(physical)
        return physical


def ensure_physical(plan, statistics=None) -> PhysicalPlan:
    """``plan`` as a physical plan, optimizing (and memoizing on the
    logical plan object) when needed.

    Logical plans are append-only, so the memo is keyed by step count —
    the same discipline the old ``fused_join_products`` cache used.
    """
    if isinstance(plan, PhysicalPlan):
        return plan
    cached = getattr(plan, "_physical_cache", None)
    if cached is not None and cached[0] == len(plan.steps):
        return cached[1]
    physical = optimize(plan, statistics)
    plan._physical_cache = (len(plan.steps), physical)
    return physical
