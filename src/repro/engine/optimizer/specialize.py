"""Per-plan operator specialization: compile once, interpret nothing.

When a :class:`~repro.engine.optimizer.physical.PhysicalPlan` first
executes (or enters the service's plan cache), this module lowers it to
a :class:`SpecializedPlan`: one closure per physical op, with every
shape-dependent decision — column positions, key widths, check layout,
permutation-vs-dedup, build side — resolved *at closure-creation time*.
The warm path then runs ``step(batches, executor, stats)`` per op and
never isinstance-dispatches, never re-reads op fields, never touches a
column name.

Specialization is split in two so ``$param`` binding stays free:

* the **program** (a list of ``(n_consts, make_step, label)`` entries)
  depends only on op *shapes* and is memoized on the template plan —
  bound copies produced by
  :meth:`~repro.engine.optimizer.physical.PhysicalPlan.map_constants`
  share it via ``_spec_template``;
* the **specialized plan** additionally bakes in the plan's constants
  as dictionary *codes* (one ``encode`` per constant against the
  database's :class:`~repro.storage.encoding.ValueDictionary`) and is
  memoized per ``(plan, dictionary)`` pair.

Steps consume and produce encoded :class:`~repro.engine.columns.Batch`
objects; the only Python-value work left in an execution is decoding
the final batch.
"""

from __future__ import annotations

from ...errors import ExecutionError
from ...obs.trace import span
from ..columns import Batch, deduped_batch
from .physical import (BatchFetchOp, ConstCheck, ConstScanOp, CrossJoinOp,
                       DifferenceOp, DistinctUnionOp, EmptyScanOp, FilterOp,
                       FusedFetchOp, GatherOp, HashJoinOp, PhysicalPlan,
                       UnitScanOp, op_label)

__all__ = ["SpecializedPlan", "specialized_plan"]


class SpecializedPlan:
    """A plan compiled to per-op closures over encoded batches."""

    __slots__ = ("steps", "labels", "result_columns")

    def __init__(self, steps: list, labels: list[str],
                 result_columns: tuple[str, ...]):
        self.steps = steps
        self.labels = labels
        self.result_columns = result_columns

    def __len__(self) -> int:
        return len(self.steps)


# -- step factories -----------------------------------------------------------
#
# Each ``_make_*`` runs once per plan *shape* and returns
# ``(n_consts, make_step)`` where ``make_step(consts)`` runs once per
# (plan, dictionary) and returns the actual per-batch step closure.
# ``consts`` holds the op's constants as dictionary codes, in
# ``PhysicalPlan.constant_values()`` order.


def _make_unit(op, plan):
    def make(consts):
        def step(batches, executor, stats):
            return Batch((), [], 1, True)
        return step
    return 0, make


def _make_empty(op, plan):
    out_columns = op.out_columns

    def make(consts):
        def step(batches, executor, stats):
            return Batch(out_columns, [[] for _ in out_columns], 0, True)
        return step
    return 0, make


def _make_const(op, plan):
    out_columns = op.out_columns

    def make(consts):
        code = consts[0]

        def step(batches, executor, stats):
            return Batch(out_columns, [[code]], 1, True)
        return step
    return 1, make


def _make_gather(op, plan):
    source, positions = op.source, op.positions
    out_columns = op.out_columns
    source_width = len(plan.steps[source].out_columns)
    # A permutation gather of distinct rows shares columns untouched;
    # whether it IS a permutation is a shape fact, decided here once.
    permutation = (len(positions) == source_width
                   and sorted(positions) == list(range(source_width)))

    if not positions:
        def make(consts):
            def step(batches, executor, stats):
                src = batches[source]
                return Batch(out_columns, [], 1 if src.length else 0, True)
            return step
    elif permutation:
        def make(consts):
            def step(batches, executor, stats):
                src = batches[source]
                cols = [src.cols[p] for p in positions]
                if src.distinct:
                    return Batch(out_columns, cols, src.length, True)
                return deduped_batch(out_columns, cols, src.length)
            return step
    else:
        def make(consts):
            def step(batches, executor, stats):
                src = batches[source]
                return deduped_batch(
                    out_columns, [src.cols[p] for p in positions],
                    src.length)
            return step
    return 0, make


def _compile_checks(checks):
    """Split a check tuple into shape facts: const-check positions (in
    slot order) and col-check position pairs."""
    const_positions = [c.position for c in checks
                       if isinstance(c, ConstCheck)]
    col_pairs = [(c.left, c.right) for c in checks
                 if not isinstance(c, ConstCheck)]
    return const_positions, col_pairs


def _make_filter(op, plan):
    source, out_columns = op.source, op.out_columns
    const_positions, col_pairs = _compile_checks(op.checks)
    n_consts = len(const_positions)

    if n_consts == 1 and not col_pairs:
        position = const_positions[0]

        def make(consts):
            code = consts[0]

            def step(batches, executor, stats):
                src = batches[source]
                selected = [i for i, value in enumerate(src.cols[position])
                            if value == code]
                return Batch(out_columns,
                             [list(map(col.__getitem__, selected))
                              for col in src.cols],
                             len(selected), src.distinct)
            return step
    elif not const_positions and len(col_pairs) == 1:
        left_pos, right_pos = col_pairs[0]

        def make(consts):
            def step(batches, executor, stats):
                src = batches[source]
                selected = [i for i, pair in enumerate(
                    zip(src.cols[left_pos], src.cols[right_pos]))
                    if pair[0] == pair[1]]
                return Batch(out_columns,
                             [list(map(col.__getitem__, selected))
                              for col in src.cols],
                             len(selected), src.distinct)
            return step
    else:
        def make(consts):
            resolved = list(zip(const_positions, consts))

            def step(batches, executor, stats):
                src = batches[source]
                cols = src.cols
                selected = range(src.length)
                for position, code in resolved:
                    column = cols[position]
                    selected = [i for i in selected if column[i] == code]
                for left_pos, right_pos in col_pairs:
                    left, right = cols[left_pos], cols[right_pos]
                    selected = [i for i in selected if left[i] == right[i]]
                selected = list(selected)
                return Batch(out_columns,
                             [list(map(col.__getitem__, selected))
                              for col in cols],
                             len(selected), src.distinct)
            return step
    return n_consts, make


def _make_fetch(op, plan):
    source, x_positions = op.source, op.x_positions
    constraint, out_columns = op.constraint, op.out_columns
    checks = op.checks if isinstance(op, FusedFetchOp) else ()
    const_positions, col_pairs = _compile_checks(checks)
    n_consts = len(const_positions)

    if len(x_positions) == 1:
        key_position = x_positions[0]

        def keys_of(src):
            # Scalar X: bare int codes, deduped in one C-level pass.
            return list(dict.fromkeys(src.cols[key_position]))
    elif not x_positions:
        def keys_of(src):
            return [()] if src.length else []
    else:
        def keys_of(src):
            return list(dict.fromkeys(
                zip(*[src.cols[p] for p in x_positions])))

    def make(consts):
        resolved = list(zip(const_positions, consts))

        def step(batches, executor, stats):
            keys = keys_of(batches[source])
            stats.fetch_calls += 1
            # The whole batch of distinct X-codes crosses the storage
            # boundary in ONE vectorized call.
            with span("fetch"):
                cols, length = executor._fetch_flat_encoded(
                    constraint, keys, stats)
            if resolved or col_pairs:
                selected = range(length)
                for position, code in resolved:
                    column = cols[position]
                    selected = [i for i in selected if column[i] == code]
                for left_pos, right_pos in col_pairs:
                    left, right = cols[left_pos], cols[right_pos]
                    selected = [i for i in selected
                                if left[i] == right[i]]
                selected = list(selected)
                cols = [list(map(col.__getitem__, selected))
                        for col in cols]
                length = len(selected)
            # Per-X results are distinct and carry their X-prefix, so
            # the concatenation over distinct X-codes is duplicate-free
            # (and filtering cannot introduce duplicates).
            return Batch(out_columns, cols, length, True)
        return step
    return n_consts, make


def _make_hash_join(op, plan):
    left_source, right_source = op.left, op.right
    out_columns = op.out_columns
    build_left = op.build == "left"
    if build_left:
        build_key, probe_key = op.left_key, op.right_key
    else:
        build_key, probe_key = op.right_key, op.left_key
    single = len(build_key) == 1
    if single:
        build_pos, probe_pos = build_key[0], probe_key[0]

    def make(consts):
        def step(batches, executor, stats):
            left, right = batches[left_source], batches[right_source]
            build, probe = (left, right) if build_left else (right, left)
            buckets = {}
            duplicates = False
            if single:
                # Int-code keys: no per-row tuple construction at all.
                for i, code in enumerate(build.cols[build_pos]):
                    prev = buckets.get(code)
                    if prev is None:
                        buckets[code] = i
                    elif type(prev) is int:
                        buckets[code] = [prev, i]
                        duplicates = True
                    else:
                        prev.append(i)
                probe_keys = probe.cols[probe_pos]
            else:
                build_cols = [build.cols[p] for p in build_key]
                for i, key in enumerate(zip(*build_cols)):
                    prev = buckets.get(key)
                    if prev is None:
                        buckets[key] = i
                    elif type(prev) is int:
                        buckets[key] = [prev, i]
                        duplicates = True
                    else:
                        prev.append(i)
                probe_keys = zip(*[probe.cols[p] for p in probe_key])
            build_index: list[int] = []
            probe_index: list[int] = []
            if not duplicates:
                # Key-distinct build side (the common case): every
                # bucket is a bare int, the probe loop does one C-level
                # dict probe (via map) and two appends per match.
                build_append = build_index.append
                probe_append = probe_index.append
                for j, i in enumerate(map(buckets.get, probe_keys)):
                    if i is not None:
                        build_append(i)
                        probe_append(j)
            else:
                for j, key in enumerate(probe_keys):
                    bucket = buckets.get(key)
                    if bucket is None:
                        continue
                    if type(bucket) is int:
                        build_index.append(bucket)
                        probe_index.append(j)
                    else:
                        build_index.extend(bucket)
                        probe_index.extend([j] * len(bucket))
            if build_left:
                left_index, right_index = build_index, probe_index
            else:
                left_index, right_index = probe_index, build_index
            # map(__getitem__) gathers run the row loop in C.
            cols = ([list(map(column.__getitem__, left_index))
                     for column in left.cols]
                    + [list(map(column.__getitem__, right_index))
                       for column in right.cols])
            return Batch(out_columns, cols, len(build_index),
                         left.distinct and right.distinct)
        return step
    return 0, make


def _make_cross(op, plan):
    left_source, right_source = op.left, op.right
    out_columns = op.out_columns

    def make(consts):
        def step(batches, executor, stats):
            left, right = batches[left_source], batches[right_source]
            l_count, r_count = left.length, right.length
            cols = [[column[i] for i in range(l_count)
                     for _ in range(r_count)] for column in left.cols]
            for column in right.cols:
                # memoryview (cache-served columns) lacks ``*``.
                if type(column) is memoryview:
                    column = list(column)
                cols.append(column * l_count)
            return Batch(out_columns, cols, l_count * r_count,
                         left.distinct and right.distinct)
        return step
    return 0, make


def _make_union(op, plan):
    sources, out_columns = op.sources, op.out_columns
    width = len(out_columns)

    if len(sources) == 1:
        only = sources[0]

        def make(consts):
            def step(batches, executor, stats):
                src = batches[only]
                if src.distinct:
                    return Batch(out_columns, src.cols, src.length, True)
                return deduped_batch(out_columns, src.cols, src.length)
            return step
    else:
        def make(consts):
            def step(batches, executor, stats):
                cols = [[] for _ in range(width)]
                total = 0
                for source in sources:
                    src = batches[source]
                    for position in range(width):
                        cols[position].extend(src.cols[position])
                    total += src.length
                return deduped_batch(out_columns, cols, total)
            return step
    return 0, make


def _make_difference(op, plan):
    left_source, right_source = op.left, op.right
    out_columns = op.out_columns
    width = len(out_columns)

    def make(consts):
        def step(batches, executor, stats):
            left, right = batches[left_source], batches[right_source]
            rows = left.rows() - right.rows()
            if not width:
                return Batch(out_columns, [], 1 if rows else 0, True)
            if rows:
                cols = [list(column) for column in zip(*rows)]
            else:
                cols = [[] for _ in range(width)]
            return Batch(out_columns, cols, len(rows), True)
        return step
    return 0, make


_FACTORIES = {
    UnitScanOp: _make_unit,
    EmptyScanOp: _make_empty,
    ConstScanOp: _make_const,
    GatherOp: _make_gather,
    FilterOp: _make_filter,
    BatchFetchOp: _make_fetch,
    FusedFetchOp: _make_fetch,
    HashJoinOp: _make_hash_join,
    CrossJoinOp: _make_cross,
    DistinctUnionOp: _make_union,
    DifferenceOp: _make_difference,
}


def _program_for(template: PhysicalPlan) -> list:
    """The template's compiled program, built at most once per shape."""
    cached = getattr(template, "_spec_program", None)
    if cached is not None and cached[0] == len(template.steps):
        return cached[1]
    program = []
    for op in template.steps:
        factory = _FACTORIES.get(type(op))
        if factory is None:
            raise ExecutionError(f"unknown physical op {op!r}")
        n_consts, make = factory(op, template)
        program.append((n_consts, make, op_label(type(op))))
    template._spec_program = (len(template.steps), program)
    return program


def specialized_plan(plan: PhysicalPlan,
                     dictionary) -> SpecializedPlan:
    """The plan's specialized form against ``dictionary``, memoized.

    The memo is keyed on dictionary *object identity*: a plan executed
    against a different database re-specializes (constants must be that
    database's codes), and re-executing against the same database is a
    two-attribute check.
    """
    cached = getattr(plan, "_spec_cache", None)
    if cached is not None and cached[0] is dictionary:
        return cached[1]
    with span("specialize"):
        template = getattr(plan, "_spec_template", None) or plan
        program = _program_for(template)
        encode = dictionary.encode
        consts = [encode(value) for value in plan.constant_values()]
        steps, labels = [], []
        position = 0
        for n_consts, make, label in program:
            steps.append(make(consts[position:position + n_consts]))
            labels.append(label)
            position += n_consts
        spec = SpecializedPlan(steps, labels, plan.result_columns)
    plan._spec_cache = (dictionary, spec)
    return spec
