"""The optimizer's working IR: a mutable DAG of name-addressed nodes.

Lowering turns the logical :class:`~repro.engine.plan.Plan` (a step
list) into a graph of :class:`Node` objects; rewrite rules mutate the
graph by replacing nodes; finalization emits the positional
:class:`~repro.engine.optimizer.physical.PhysicalPlan`.  Keeping names
during rewriting (and resolving positions only once, at the end) is
what lets rules insert, fuse and share nodes without index bookkeeping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ...errors import PlanError
from ...schema.access import AccessConstraint
from ..columns import column_index
from ..plan import (ColEq, Condition, ConstEq, ConstOp, DiffOp, EmptyOp,
                    FetchOp, Plan, ProductOp, ProjectOp, RenameOp, SelectOp,
                    UnionOp, UnitOp)
from .physical import (BatchFetchOp, Check, ColCheck, ConstCheck,
                       ConstScanOp, CrossJoinOp, DifferenceOp,
                       DistinctUnionOp, EmptyScanOp, FilterOp, FusedFetchOp,
                       GatherOp, HashJoinOp, PhysicalOp, PhysicalPlan,
                       UnitScanOp)

# Node kinds; "rename" disappears at lowering (it becomes a project).
KINDS = ("unit", "empty", "const", "fetch", "project", "filter",
         "cross", "hashjoin", "union", "diff")


@dataclass(eq=False)
class Node:
    """One operator in the working DAG.  Identity (not value) equality:
    two structurally equal nodes are distinct until a rule merges them."""

    kind: str
    inputs: list["Node"]
    columns: tuple[str, ...]
    # Kind-specific payload (unused fields stay at their defaults):
    value: Hashable = None                        # const
    constraint: AccessConstraint | None = None    # fetch
    x_columns: tuple[str, ...] = ()               # fetch
    filters: tuple[Condition, ...] = ()           # fetch (fused residuals)
    src_columns: tuple[str, ...] = ()             # project
    conditions: tuple[Condition, ...] = ()        # filter
    pairs: tuple[tuple[str, str], ...] = ()       # hashjoin (lcol, rcol)
    build: str = "right"                          # hashjoin


class Graph:
    """A rewritable DAG with a designated result node.

    ``registry`` holds every node ever added (lowered or rule-created);
    the dead-step rule compares it against what is reachable from
    ``result``.
    """

    def __init__(self, result: Node, name: str, registry: list[Node]):
        self.result = result
        self.name = name
        self.registry = registry

    def add(self, node: Node) -> Node:
        self.registry.append(node)
        return node

    def topo(self) -> list[Node]:
        """Reachable nodes, inputs before consumers (iterative DFS)."""
        order: list[Node] = []
        seen: set[int] = set()
        stack: list[tuple[Node, bool]] = [(self.result, False)]
        while stack:
            node, expanded = stack.pop()
            if expanded:
                order.append(node)
                continue
            if id(node) in seen:
                continue
            seen.add(id(node))
            stack.append((node, True))
            for child in node.inputs:
                if id(child) not in seen:
                    stack.append((child, False))
        return order

    def consumers(self) -> dict[int, list[Node]]:
        """``id(node) -> consumers`` over the reachable graph."""
        uses: dict[int, list[Node]] = {}
        for node in self.topo():
            for child in node.inputs:
                uses.setdefault(id(child), []).append(node)
        return uses

    def replace(self, old: Node, new: Node) -> None:
        """Redirect every reference to ``old`` (including the result) to
        ``new``.  ``new``'s own inputs are left alone, so wrapping a
        node (``new`` consuming ``old``) does not create a cycle."""
        if self.result is old:
            self.result = new
        for node in self.registry:
            if node is new:
                continue
            node.inputs = [new if child is old else child
                           for child in node.inputs]


# -- lowering -----------------------------------------------------------------


def lower_plan(plan: Plan) -> Graph:
    """Translate a logical plan into the working DAG, one node per live
    step.  Renames become projections (a gather is free in the batch
    executor), every other op maps one-to-one."""
    nodes: list[Node] = []
    registry: list[Node] = []

    def make(node: Node) -> Node:
        registry.append(node)
        return node

    for index, op in enumerate(plan.steps):
        columns = plan.columns_of(index)
        if isinstance(op, UnitOp):
            node = make(Node("unit", [], ()))
        elif isinstance(op, EmptyOp):
            node = make(Node("empty", [], columns))
        elif isinstance(op, ConstOp):
            node = make(Node("const", [], columns, value=op.value))
        elif isinstance(op, FetchOp):
            node = make(Node("fetch", [nodes[op.source]], op.out_columns,
                             constraint=op.constraint,
                             x_columns=op.x_columns))
        elif isinstance(op, ProjectOp):
            node = make(Node("project", [nodes[op.source]], columns,
                             src_columns=op.src_columns))
        elif isinstance(op, SelectOp):
            node = make(Node("filter", [nodes[op.source]], columns,
                             conditions=op.conditions))
        elif isinstance(op, RenameOp):
            source = nodes[op.source]
            node = make(Node("project", [source], columns,
                             src_columns=source.columns))
        elif isinstance(op, ProductOp):
            node = make(Node("cross", [nodes[op.left], nodes[op.right]],
                             columns))
        elif isinstance(op, UnionOp):
            node = make(Node("union", [nodes[s] for s in op.sources],
                             columns))
        elif isinstance(op, DiffOp):
            node = make(Node("diff", [nodes[op.left], nodes[op.right]],
                             columns))
        else:
            raise PlanError(f"cannot lower unknown op {op!r}")
        nodes.append(node)
    if not nodes:
        raise PlanError("cannot lower an empty plan")
    return Graph(nodes[-1], plan.name, registry)


# -- row estimation -----------------------------------------------------------


def estimate_rows(graph: Graph, statistics=None) -> dict[int, int | None]:
    """Static per-node row bounds, ``id(node) -> bound`` (None when a
    non-constant constraint cannot be evaluated).

    The same abstract interpretation as
    :func:`repro.engine.cost.static_bounds`' generic path, evaluated at
    the statistics' database size and capped by relation sizes when a
    :class:`~repro.storage.statistics.TableStatistics` is supplied.
    """
    from ..cost import constraint_lookup_bound

    db_size = getattr(statistics, "db_size", None)
    bounds: dict[int, int | None] = {}
    for node in graph.topo():
        ins = [bounds[id(child)] for child in node.inputs]
        if node.kind in ("unit", "const"):
            bound = 1
        elif node.kind == "empty":
            bound = 0
        elif node.kind == "fetch":
            per_lookup = constraint_lookup_bound(node.constraint, db_size)
            bound = (None if per_lookup is None or ins[0] is None
                     else ins[0] * per_lookup)
            if statistics is not None and bound is not None:
                relation_size = statistics.relation_size(
                    node.constraint.relation_name)
                if relation_size is not None:
                    bound = min(bound, relation_size)
        elif node.kind in ("project", "filter"):
            bound = ins[0]
        elif node.kind in ("cross", "hashjoin"):
            bound = (None if ins[0] is None or ins[1] is None
                     else ins[0] * ins[1])
        elif node.kind == "union":
            bound = None if any(b is None for b in ins) else sum(ins)
        elif node.kind == "diff":
            bound = ins[0]
        else:
            raise PlanError(f"cannot estimate unknown node kind {node.kind}")
        bounds[id(node)] = bound
    return bounds


# -- finalization -------------------------------------------------------------


def _checks(conditions: tuple[Condition, ...],
            columns: tuple[str, ...]) -> tuple[Check, ...]:
    checks: list[Check] = []
    for condition in conditions:
        if isinstance(condition, ConstEq):
            checks.append(ConstCheck(column_index(columns, condition.column),
                                     condition.value))
        elif isinstance(condition, ColEq):
            checks.append(ColCheck(column_index(columns, condition.left),
                                   column_index(columns, condition.right)))
        else:
            raise PlanError(f"unknown condition {condition!r}")
    return tuple(checks)


def finalize(graph: Graph, *, logical=None, trace=None,
             statistics=None) -> PhysicalPlan:
    """Resolve names to positions and emit the physical plan."""
    order = graph.topo()
    index_of = {id(node): i for i, node in enumerate(order)}
    row_bounds = estimate_rows(graph, statistics)
    steps: list[PhysicalOp] = []
    estimates: list[int | None] = []
    for node in order:
        if node.kind == "unit":
            op: PhysicalOp = UnitScanOp()
        elif node.kind == "empty":
            op = EmptyScanOp(node.columns)
        elif node.kind == "const":
            op = ConstScanOp(node.columns, node.value)
        elif node.kind == "fetch":
            source = node.inputs[0]
            x_positions = tuple(column_index(source.columns, c)
                                for c in node.x_columns)
            if node.filters:
                op = FusedFetchOp(index_of[id(source)], x_positions,
                                  node.constraint, node.columns,
                                  _checks(node.filters, node.columns))
            else:
                op = BatchFetchOp(index_of[id(source)], x_positions,
                                  node.constraint, node.columns)
        elif node.kind == "project":
            source = node.inputs[0]
            positions = tuple(column_index(source.columns, c)
                              for c in node.src_columns)
            op = GatherOp(index_of[id(source)], positions, node.columns)
        elif node.kind == "filter":
            source = node.inputs[0]
            op = FilterOp(index_of[id(source)],
                          _checks(node.conditions, source.columns),
                          node.columns)
        elif node.kind == "cross":
            left, right = node.inputs
            op = CrossJoinOp(index_of[id(left)], index_of[id(right)],
                             node.columns)
        elif node.kind == "hashjoin":
            left, right = node.inputs
            op = HashJoinOp(
                index_of[id(left)], index_of[id(right)],
                tuple(column_index(left.columns, a) for a, _ in node.pairs),
                tuple(column_index(right.columns, b) for _, b in node.pairs),
                node.build, node.columns)
        elif node.kind == "union":
            op = DistinctUnionOp(tuple(index_of[id(s)] for s in node.inputs),
                                 node.columns)
        elif node.kind == "diff":
            left, right = node.inputs
            op = DifferenceOp(index_of[id(left)], index_of[id(right)],
                              node.columns)
        else:
            raise PlanError(f"cannot finalize unknown node kind {node.kind}")
        steps.append(op)
        estimates.append(row_bounds[id(node)])
    certificate = getattr(logical, "certificate", None)
    return PhysicalPlan(graph.name, steps, logical=logical,
                        certificate=certificate, trace=trace,
                        estimates=estimates)
