"""Rewrite rules over the optimizer DAG.

Each rule is independent: it inspects the graph, rewrites what it can,
and reports how many times it fired.  Rules preserve *set-semantics
results* — every rewrite is one of the classical algebraic identities
(σ distributes over ×; σ commutes with fetch materialization; π can be
pushed below ⨝ for columns nothing downstream reads; identical
subexpressions denote identical tables) — so optimized and unoptimized
plans are answer-identical on every instance (property-tested in
``tests/engine/test_optimizer_property.py``).

None of the rules adds data access: fetches are only merged (hash
consing), narrowed (fused residual checks filter *after* the index
lookup, which the access accounting already counted), or dropped (dead
steps), so the builder's cost certificate remains a sound bound for the
physical plan.
"""

from __future__ import annotations

from ..plan import ColEq, Condition, ConstEq
from .graph import Graph, Node


class Rule:
    """Base class; ``apply`` returns how many rewrites fired."""

    name: str = "rule"

    def apply(self, graph: Graph) -> int:
        raise NotImplementedError


class TrivialProductElimination(Rule):
    """``unit × X`` (or ``X × unit``) → ``X``.

    The builder seeds every CQ with the unit table and products against
    it on each expansion, so the identity fires on nearly every bounded
    plan; removing the product early lets the filter above it sit
    directly on a fetch, where ``select-into-fetch`` can fuse it.
    """

    name = "unit-product"

    def apply(self, graph: Graph) -> int:
        fired = 0
        changed = True
        while changed:
            changed = False
            for node in graph.topo():
                if node.kind != "cross":
                    continue
                left, right = node.inputs
                if left.kind == "unit":
                    survivor = right
                elif right.kind == "unit":
                    survivor = left
                else:
                    continue
                graph.replace(node, survivor)
                fired += 1
                changed = True
                break
        return fired


class ProductSelectToHashJoin(Rule):
    """``σ(A × B)`` → per-side residual filters + hash join.

    Conditions over one side's columns move below the product; ColEq
    conditions spanning both sides become equi-join pairs.  With no
    cross-side pair the product survives, but the pushed-down side
    filters still shrink it.  This subsumes the old executor's
    ``Plan.fused_join_products`` pattern scan — and, unlike it, also
    fires when the product has other consumers or the plan was written
    by hand.
    """

    name = "product-to-hash-join"

    def apply(self, graph: Graph) -> int:
        fired = 0
        changed = True
        while changed:
            changed = False
            for node in graph.topo():
                if node.kind != "filter" or node.inputs[0].kind != "cross":
                    continue
                cross = node.inputs[0]
                left, right = cross.inputs
                split = self._split(node.conditions, set(left.columns),
                                    set(right.columns))
                if split is None:
                    continue
                left_conds, right_conds, pairs = split
                if not pairs and not left_conds and not right_conds:
                    continue
                left_in = left
                if left_conds:
                    left_in = graph.add(Node("filter", [left], left.columns,
                                             conditions=tuple(left_conds)))
                right_in = right
                if right_conds:
                    right_in = graph.add(
                        Node("filter", [right], right.columns,
                             conditions=tuple(right_conds)))
                if pairs:
                    new = graph.add(Node("hashjoin", [left_in, right_in],
                                         cross.columns, pairs=tuple(pairs)))
                else:
                    new = graph.add(Node("cross", [left_in, right_in],
                                         cross.columns))
                graph.replace(node, new)
                fired += 1
                changed = True
                break
        return fired

    @staticmethod
    def _split(conditions, left_columns: set, right_columns: set):
        left_conds: list[Condition] = []
        right_conds: list[Condition] = []
        pairs: list[tuple[str, str]] = []
        for condition in conditions:
            if isinstance(condition, ConstEq):
                if condition.column in left_columns:
                    left_conds.append(condition)
                elif condition.column in right_columns:
                    right_conds.append(condition)
                else:
                    return None
            elif isinstance(condition, ColEq):
                a, b = condition.left, condition.right
                if a in left_columns and b in left_columns:
                    left_conds.append(condition)
                elif a in right_columns and b in right_columns:
                    right_conds.append(condition)
                elif a in left_columns and b in right_columns:
                    pairs.append((a, b))
                elif a in right_columns and b in left_columns:
                    pairs.append((b, a))
                else:
                    return None
            else:
                return None
        return left_conds, right_conds, pairs


class SelectIntoFetchPushdown(Rule):
    """``σ(fetch(...))`` → a fetch with fused residual checks.

    Conditions over the fetch's own output columns are applied to each
    row as it arrives from the index, before it is materialized into a
    batch.  Only fires when the filter is the fetch's sole consumer —
    otherwise fusing would change what the shared fetch feeds others.
    """

    name = "select-into-fetch"

    def apply(self, graph: Graph) -> int:
        fired = 0
        changed = True
        while changed:
            changed = False
            uses = graph.consumers()
            for node in graph.topo():
                if node.kind != "filter" or node.inputs[0].kind != "fetch":
                    continue
                fetch = node.inputs[0]
                if len(uses.get(id(fetch), ())) != 1:
                    continue
                fetch_columns = set(fetch.columns)
                fusable = [c for c in node.conditions
                           if self._over(c, fetch_columns)]
                if not fusable:
                    continue
                residual = tuple(c for c in node.conditions
                                 if not self._over(c, fetch_columns))
                fused = graph.add(Node(
                    "fetch", list(fetch.inputs), fetch.columns,
                    constraint=fetch.constraint, x_columns=fetch.x_columns,
                    filters=fetch.filters + tuple(fusable)))
                if residual:
                    new = graph.add(Node("filter", [fused], node.columns,
                                         conditions=residual))
                else:
                    new = fused
                graph.replace(node, new)
                fired += 1
                changed = True
                break
        return fired

    @staticmethod
    def _over(condition: Condition, columns: set) -> bool:
        if isinstance(condition, ConstEq):
            return condition.column in columns
        if isinstance(condition, ColEq):
            return condition.left in columns and condition.right in columns
        return False


class ProjectionPushdown(Rule):
    """Collapse projection chains and prune columns nothing reads.

    A required-columns analysis runs over the DAG (conservatively
    treating ∪/− as needing every column); join inputs and fetch
    sources carrying unrequired columns are wrapped in (or narrowed to)
    a projection.  Narrower batches mean smaller hash tables and more
    duplicate collapses before joins — sound under set semantics
    because the dropped columns feed no downstream condition, key or
    output.
    """

    name = "projection-pushdown"

    def apply(self, graph: Graph) -> int:
        fired = self._collapse_chains(graph)
        fired += self._prune(graph)
        fired += self._collapse_chains(graph)
        return fired

    # -- π(π(x)) → π(x), and identity-π elimination ------------------------

    def _collapse_chains(self, graph: Graph) -> int:
        fired = 0
        changed = True
        while changed:
            changed = False
            for node in graph.topo():
                if node.kind != "project":
                    continue
                source = node.inputs[0]
                if node.src_columns == node.columns \
                        and node.src_columns == source.columns:
                    graph.replace(node, source)
                    fired += 1
                    changed = True
                    break
                if source.kind == "project":
                    # Compose: this project's src names are the inner's
                    # out names; rewrite in terms of the inner's source.
                    inner_of = dict(zip(source.columns, source.src_columns))
                    composed = graph.add(Node(
                        "project", list(source.inputs), node.columns,
                        src_columns=tuple(inner_of[c]
                                          for c in node.src_columns)))
                    graph.replace(node, composed)
                    fired += 1
                    changed = True
                    break
        return fired

    # -- column pruning -----------------------------------------------------

    def _required(self, graph: Graph) -> dict[int, set]:
        order = graph.topo()
        required: dict[int, set] = {id(node): set() for node in order}
        required[id(graph.result)] = set(graph.result.columns)
        for node in reversed(order):
            needs = required[id(node)]
            if node.kind == "project":
                src = required[id(node.inputs[0])]
                for src_column, out_column in zip(node.src_columns,
                                                  node.columns):
                    if out_column in needs:
                        src.add(src_column)
            elif node.kind == "filter":
                src = required[id(node.inputs[0])]
                src |= needs
                for condition in node.conditions:
                    if isinstance(condition, ConstEq):
                        src.add(condition.column)
                    elif isinstance(condition, ColEq):
                        src.add(condition.left)
                        src.add(condition.right)
            elif node.kind == "fetch":
                required[id(node.inputs[0])] |= set(node.x_columns)
            elif node.kind in ("cross", "hashjoin"):
                left, right = node.inputs
                required[id(left)] |= needs & set(left.columns)
                required[id(right)] |= needs & set(right.columns)
                for a, b in node.pairs:
                    required[id(left)].add(a)
                    required[id(right)].add(b)
            else:
                # union/diff members and anything else: keep every column.
                for child in node.inputs:
                    required[id(child)] |= set(child.columns)
        return required

    @staticmethod
    def _refresh_columns(graph: Graph) -> None:
        """Recompute derived column tuples after inputs were narrowed.

        Filters mirror their input's columns; joins concatenate their
        inputs'.  Everything else carries intrinsic columns.
        """
        for node in graph.topo():
            if node.kind == "filter":
                node.columns = node.inputs[0].columns
            elif node.kind in ("cross", "hashjoin"):
                node.columns = (node.inputs[0].columns
                                + node.inputs[1].columns)

    def _prune(self, graph: Graph) -> int:
        fired = 0
        required = self._required(graph)
        # Narrow the inputs of joins and fetches (where batch width costs).
        for node in graph.topo():
            if node.kind not in ("cross", "hashjoin", "fetch"):
                continue
            for child in list(node.inputs):
                needs = required.get(id(child))
                if needs is None or needs >= set(child.columns):
                    continue
                keep = tuple(c for c in child.columns if c in needs)
                if child.kind == "project":
                    keep_src = tuple(s for s, o in zip(child.src_columns,
                                                       child.columns)
                                     if o in needs)
                    narrowed = graph.add(Node(
                        "project", list(child.inputs), keep,
                        src_columns=keep_src))
                else:
                    narrowed = graph.add(Node("project", [child], keep,
                                              src_columns=keep))
                graph.replace(child, narrowed)
                required[id(narrowed)] = set(keep)
                fired += 1
        if fired:
            self._reconcile(graph)
        return fired

    def _reconcile(self, graph: Graph) -> None:
        """Propagate narrowed columns downstream.

        Derived columns (filters, joins) refresh directly.  A live
        projection may still list a dropped source column — by the
        required-columns analysis that can only happen when the
        corresponding *output* is needed by no consumer (union/diff
        consumers demand every column, so their arms are never
        narrowed) — drop those (src, out) pairs and repeat until the
        graph is consistent."""
        changed = True
        while changed:
            self._refresh_columns(graph)
            changed = False
            for node in graph.topo():
                if node.kind != "project":
                    continue
                available = set(node.inputs[0].columns)
                if all(c in available for c in node.src_columns):
                    continue
                kept = [(src, out) for src, out
                        in zip(node.src_columns, node.columns)
                        if src in available]
                node.src_columns = tuple(src for src, _ in kept)
                node.columns = tuple(out for _, out in kept)
                changed = True


class CommonSubplanElimination(Rule):
    """Hash-consing over the DAG, up to column renaming.

    The plan builder fresh-names every step, so duplicate sub-plans
    across UCQ disjuncts are *alpha-equivalent*, never textually equal.
    Node signatures therefore trace through projection chains down to
    base positions: two nodes with the same signature denote the same
    table up to column names.  The duplicate is replaced by the
    original — behind a rename-projection when names differ, which the
    batch executor runs as zero-copy column relabeling.  Each merged
    fetch is an index lookup the executor no longer repeats.

    One topo pass suffices: merges happen bottom-up, and signatures see
    *through* the rename-projections earlier merges inserted.
    """

    name = "common-subplan"

    def apply(self, graph: Graph) -> int:
        fired = 0
        seen: dict[tuple, Node] = {}
        for node in graph.topo():
            signature = self._signature(node)
            if signature is None:
                continue
            existing = seen.get(signature)
            if existing is None:
                seen[signature] = node
                continue
            if existing is node:
                continue
            if existing.columns == node.columns:
                graph.replace(node, existing)
            else:
                rename = graph.add(Node(
                    "project", [existing], node.columns,
                    src_columns=existing.columns))
                graph.replace(node, rename)
            fired += 1
        return fired

    # -- signatures ---------------------------------------------------------

    @staticmethod
    def _through_projects(node: Node):
        """``(base, positions)``: the nearest non-projection ancestor
        and, per output column, its position there — or ``None`` when a
        duplicate-named intermediate makes the mapping ambiguous."""
        positions = list(range(len(node.columns)))
        current = node
        while current.kind == "project":
            source = current.inputs[0]
            if len(set(source.columns)) != len(source.columns):
                return None
            mapping = [source.columns.index(c)
                       for c in current.src_columns]
            positions = [mapping[p] for p in positions]
            current = source
        return current, tuple(positions)

    @classmethod
    def _traced_input(cls, child: Node):
        traced = cls._through_projects(child)
        if traced is None:
            return None
        base, positions = traced
        return (id(base), positions)

    @staticmethod
    def _positional(conditions, columns: tuple[str, ...]):
        if len(set(columns)) != len(columns):
            return None
        resolved = []
        for condition in conditions:
            if isinstance(condition, ConstEq):
                resolved.append(("c", columns.index(condition.column),
                                 condition.value))
            elif isinstance(condition, ColEq):
                resolved.append(("k", columns.index(condition.left),
                                 columns.index(condition.right)))
            else:
                return None
        return tuple(resolved)

    def _signature(self, node: Node):
        inputs = []
        for child in node.inputs:
            traced = self._traced_input(child)
            if traced is None:
                return None
            inputs.append(traced)
        if node.kind == "unit":
            payload = ()
        elif node.kind == "empty":
            payload = (len(node.columns),)
        elif node.kind == "const":
            payload = (node.value,)
        elif node.kind == "fetch":
            # A fetch reads only its X-projection of the source, so the
            # signature composes the X-positions through to the base.
            source = node.inputs[0]
            if len(set(source.columns)) != len(source.columns):
                return None
            traced = self._through_projects(source)
            if traced is None:
                return None
            base, base_positions = traced
            x_positions = tuple(
                base_positions[source.columns.index(c)]
                for c in node.x_columns)
            filters = self._positional(node.filters, node.columns)
            if filters is None:
                return None
            payload = (node.constraint, x_positions, filters)
            inputs = [id(base)]
        elif node.kind == "project":
            traced = self._through_projects(node)
            if traced is None:
                return None
            base, positions = traced
            payload = (positions,)
            inputs = [id(base)]
        elif node.kind == "filter":
            payload = (self._positional(node.conditions,
                                        node.inputs[0].columns),)
            if payload[0] is None:
                return None
        elif node.kind == "hashjoin":
            left, right = node.inputs
            try:
                payload = (tuple(
                    (left.columns.index(a), right.columns.index(b))
                    for a, b in node.pairs),)
            except ValueError:
                return None
        elif node.kind in ("cross", "union", "diff"):
            payload = ()
        else:
            return None
        signature = (node.kind, tuple(inputs), payload)
        try:
            hash(signature)
        except TypeError:  # unhashable payload (e.g. exotic constant)
            return None
        return signature


class DeadStepElimination(Rule):
    """Drop registered nodes no longer reachable from the result.

    Other rules strand nodes (a product replaced by a hash join, a
    fetch merged into its twin); this rule is where the strands are
    counted and physically removed from the registry, so the trace
    reports how much of the plan each rewrite made redundant.
    """

    name = "dead-step"

    def apply(self, graph: Graph) -> int:
        live = {id(node) for node in graph.topo()}
        dead = [node for node in graph.registry if id(node) not in live]
        graph.registry = [node for node in graph.registry
                          if id(node) in live]
        return len(dead)


class JoinInputOrdering(Rule):
    """Pick each hash join's build side from row estimates.

    The build side should be the smaller input: a smaller hash table,
    and probing streams the bigger batch through.  Estimates come from
    the same Q-and-A bounds the cost certificate uses, evaluated
    against :class:`~repro.storage.statistics.TableStatistics` when
    provided (relation sizes cap fetch estimates).  Fires only when
    both sides are estimable and disagree with the current choice.
    """

    name = "join-ordering"

    def __init__(self, statistics=None):
        self.statistics = statistics

    def apply(self, graph: Graph) -> int:
        from .graph import estimate_rows

        bounds = estimate_rows(graph, self.statistics)
        fired = 0
        for node in graph.topo():
            if node.kind != "hashjoin":
                continue
            left_rows = bounds[id(node.inputs[0])]
            right_rows = bounds[id(node.inputs[1])]
            if left_rows is None or right_rows is None:
                continue
            build = "left" if left_rows < right_rows else "right"
            if build != node.build:
                node.build = build
                fired += 1
        return fired
