"""Rule-based optimizer: logical bounded plans -> physical plans.

The logical :class:`~repro.engine.plan.Plan` is the paper-facing IR —
what :func:`~repro.engine.builder.build_bounded_plan` emits and
:meth:`~repro.engine.plan.Plan.check_bounded_under` certifies.  This
package turns it into a :class:`~repro.engine.optimizer.physical.
PhysicalPlan` of batch-oriented physical operators via a pipeline of
independent rewrite rules, each recorded in an
:class:`~repro.engine.optimizer.pipeline.OptimizationTrace`:

* ``product-to-hash-join`` — σ over × becomes a hash join with
  per-side residual filters (subsumes the executor's old
  ``fused_join_products`` pattern scan);
* ``select-into-fetch`` — σ directly over a fetch is fused into the
  fetch, filtering rows as they arrive from storage;
* ``projection-pushdown`` — collapses projection chains and prunes
  columns that no downstream op reads, narrowing join inputs;
* ``common-subplan`` — hash-consing over the DAG, eliminating
  duplicate fetches and shared sub-plans across UCQ disjuncts;
* ``dead-step`` — drops steps no longer reachable from the result;
* ``join-ordering`` — picks each hash join's build side from
  statistics-derived row estimates.

Optimization happens *once* per (query, access schema); the physical
plan is what services cache and executors run.
"""

from .physical import (BatchFetchOp, ColCheck, ConstCheck, ConstScanOp,
                       CrossJoinOp, DifferenceOp, DistinctUnionOp,
                       EmptyScanOp, FilterOp, FusedFetchOp, GatherOp,
                       HashJoinOp, PhysicalOp, PhysicalPlan, UnitScanOp)
from .pipeline import (DEFAULT_RULES, OptimizationTrace, RuleFiring,
                       ensure_physical, optimize)
from .specialize import SpecializedPlan, specialized_plan

__all__ = [
    "PhysicalPlan", "PhysicalOp", "UnitScanOp", "EmptyScanOp",
    "ConstScanOp", "BatchFetchOp", "FusedFetchOp", "GatherOp", "FilterOp",
    "HashJoinOp", "CrossJoinOp", "DistinctUnionOp", "DifferenceOp",
    "ConstCheck", "ColCheck",
    "optimize", "ensure_physical", "OptimizationTrace", "RuleFiring",
    "DEFAULT_RULES",
    "SpecializedPlan", "specialized_plan",
]
