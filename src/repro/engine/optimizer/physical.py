"""The physical plan IR: positional, batch-oriented operators.

Where logical ops address columns by *name*, physical ops carry
pre-resolved *positions*, so the executor never does string lookups on
the hot path.  Selections appear as tuples of checks
(:class:`ConstCheck` / :class:`ColCheck`); equi-joins as
:class:`HashJoinOp` with key positions and a chosen build side; fetches
optionally carry fused residual checks (:class:`FusedFetchOp`) applied
to rows as they arrive from storage.

A :class:`PhysicalPlan` is the unit the service's plan cache stores and
the batch executor runs.  Like the logical plan it supports
:meth:`PhysicalPlan.map_constants`, so ``$param`` templates bind
directly into the *optimized* plan — the warm path never re-optimizes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Hashable, Union

from ...errors import PlanError
from ...schema.access import AccessConstraint

#: Physical-op class -> metric label (``HashJoinOp`` -> ``hash_join``),
#: filled lazily so new op kinds need no registration here.
_OP_LABELS: dict[type, str] = {}


def op_label(op_type: type) -> str:
    """The metric/profiling label for a physical-op class."""
    label = _OP_LABELS.get(op_type)
    if label is None:
        name = op_type.__name__
        if name.endswith("Op"):
            name = name[:-2]
        label = re.sub(r"(?<!^)(?=[A-Z])", "_", name).lower()
        _OP_LABELS[op_type] = label
    return label


@dataclass(frozen=True)
class ConstCheck:
    """Row passes when the value at ``position`` equals ``value``."""

    position: int
    value: Hashable

    def describe(self, columns: tuple[str, ...]) -> str:
        return f"{columns[self.position]} = {self.value!r}"


@dataclass(frozen=True)
class ColCheck:
    """Row passes when the values at ``left`` and ``right`` are equal."""

    left: int
    right: int

    def describe(self, columns: tuple[str, ...]) -> str:
        return f"{columns[self.left]} = {columns[self.right]}"


Check = Union[ConstCheck, ColCheck]


class PhysicalOp:
    """Base class: every physical op names its output columns."""

    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return ()


@dataclass(frozen=True)
class UnitScanOp(PhysicalOp):
    """One row, no columns (the nullary unit)."""

    out_columns: tuple[str, ...] = ()

    def __str__(self) -> str:
        return "unit()"


@dataclass(frozen=True)
class EmptyScanOp(PhysicalOp):
    """No rows at all."""

    out_columns: tuple[str, ...]

    def __str__(self) -> str:
        return f"empty({', '.join(self.out_columns)})"


@dataclass(frozen=True)
class ConstScanOp(PhysicalOp):
    """A single-row, single-column constant."""

    out_columns: tuple[str, ...]
    value: Hashable

    def __str__(self) -> str:
        return f"const {self.value!r} as {self.out_columns[0]}"


@dataclass(frozen=True)
class BatchFetchOp(PhysicalOp):
    """Index fetch: one lookup per distinct X-value in the source batch."""

    source: int
    x_positions: tuple[int, ...]
    constraint: AccessConstraint
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def __str__(self) -> str:
        xs = ", ".join(str(p) for p in self.x_positions) or "()"
        return (f"fetch(T{self.source}[{xs}], {self.constraint}) "
                f"as ({', '.join(self.out_columns)})")


@dataclass(frozen=True)
class FusedFetchOp(PhysicalOp):
    """Fetch with fused residual checks, applied per fetched row before
    the row enters the batch (``select-into-fetch`` pushdown)."""

    source: int
    x_positions: tuple[int, ...]
    constraint: AccessConstraint
    out_columns: tuple[str, ...]
    checks: tuple[Check, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def __str__(self) -> str:
        xs = ", ".join(str(p) for p in self.x_positions) or "()"
        conds = " and ".join(c.describe(self.out_columns)
                             for c in self.checks)
        return (f"fused-fetch(T{self.source}[{xs}], {self.constraint}; "
                f"{conds}) as ({', '.join(self.out_columns)})")


@dataclass(frozen=True)
class GatherOp(PhysicalOp):
    """Column gather: projection (and renaming) by position."""

    source: int
    positions: tuple[int, ...]
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def __str__(self) -> str:
        cols = ", ".join(str(p) for p in self.positions)
        return (f"gather(T{self.source}; [{cols}]) "
                f"as ({', '.join(self.out_columns)})")


@dataclass(frozen=True)
class FilterOp(PhysicalOp):
    """Filter a batch by a conjunction of positional checks."""

    source: int
    checks: tuple[Check, ...]
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.source,)

    def __str__(self) -> str:
        conds = " and ".join(c.describe(self.out_columns)
                             for c in self.checks)
        return f"filter(T{self.source}; {conds})"


@dataclass(frozen=True)
class HashJoinOp(PhysicalOp):
    """Equi-join: build a hash table on ``build`` side keys, probe the
    other.  Output columns are left's then right's, as the logical
    ``σ(×)`` pair it replaces would produce."""

    left: int
    right: int
    left_key: tuple[int, ...]
    right_key: tuple[int, ...]
    build: str  # "left" | "right"
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        pairs = ", ".join(f"L{a}=R{b}"
                          for a, b in zip(self.left_key, self.right_key))
        return (f"hash-join(T{self.left}, T{self.right}; {pairs}; "
                f"build={self.build})")


@dataclass(frozen=True)
class CrossJoinOp(PhysicalOp):
    """Cartesian product of two batches."""

    left: int
    right: int
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"cross(T{self.left}, T{self.right})"


@dataclass(frozen=True)
class DistinctUnionOp(PhysicalOp):
    """Union of same-arity batches with duplicate elimination."""

    sources: tuple[int, ...]
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return self.sources

    def __str__(self) -> str:
        return "union(" + ", ".join(f"T{s}" for s in self.sources) + ")"


@dataclass(frozen=True)
class DifferenceOp(PhysicalOp):
    """Set difference of two same-arity batches."""

    left: int
    right: int
    out_columns: tuple[str, ...]

    def inputs(self) -> tuple[int, ...]:
        return (self.left, self.right)

    def __str__(self) -> str:
        return f"difference(T{self.left}, T{self.right})"


class PhysicalPlan:
    """An executable physical plan: a topo-ordered list of physical ops.

    Carries the logical plan it was lowered from, the builder's cost
    certificate (optimization never increases data access, so the
    certificate's bounds stay valid), the optimizer's rule trace, and
    optional per-step row estimates.
    """

    def __init__(self, name: str, steps: list[PhysicalOp], *,
                 logical=None, certificate=None, trace=None,
                 estimates: list | None = None):
        if not steps:
            raise PlanError("physical plan has no steps")
        self.name = name
        self.steps = steps
        self.logical = logical
        self.certificate = certificate
        self.trace = trace
        self.estimates = estimates

    @property
    def result_index(self) -> int:
        return len(self.steps) - 1

    @property
    def result_columns(self) -> tuple[str, ...]:
        return self.steps[-1].out_columns

    def fetch_ops(self) -> list[PhysicalOp]:
        return [op for op in self.steps
                if isinstance(op, (BatchFetchOp, FusedFetchOp))]

    def map_constants(self, fn) -> "PhysicalPlan":
        """A structurally shared copy with ``fn`` applied to every
        constant (const scans and ``ConstCheck`` values).

        The physical-plan analogue of
        :meth:`repro.engine.plan.Plan.map_constants`: binding a
        ``$param`` template is one pass over the op list — parsing,
        coverage, plan building *and optimization* are all skipped on
        the warm path.  Shape, positions, certificate, trace and
        estimates are value-independent and carried over unchanged.
        """

        def map_checks(checks: tuple[Check, ...]) -> tuple[Check, ...]:
            return tuple(
                ConstCheck(c.position, fn(c.value))
                if isinstance(c, ConstCheck) else c
                for c in checks)

        steps: list[PhysicalOp] = []
        for op in self.steps:
            if isinstance(op, ConstScanOp):
                value = fn(op.value)
                if value is not op.value:
                    op = replace(op, value=value)
            elif isinstance(op, (FilterOp, FusedFetchOp)):
                checks = map_checks(op.checks)
                if checks != op.checks:
                    op = replace(op, checks=checks)
            steps.append(op)
        mapped = PhysicalPlan(self.name, steps, logical=self.logical,
                              certificate=self.certificate, trace=self.trace,
                              estimates=self.estimates)
        # Bound copies share the template's specialized program: the
        # op shapes are identical, only constant values differ, and the
        # specializer resolves constants per plan (see
        # ``optimizer.specialize``).  Chains collapse to the root.
        mapped._spec_template = getattr(self, "_spec_template", None) or self
        return mapped

    def constant_values(self) -> list[Hashable]:
        """Every constant the plan mentions, in step order with repeats."""
        values: list[Hashable] = []
        for op in self.steps:
            if isinstance(op, ConstScanOp):
                values.append(op.value)
            elif isinstance(op, (FilterOp, FusedFetchOp)):
                values.extend(c.value for c in op.checks
                              if isinstance(c, ConstCheck))
        return values

    def explain(self) -> str:
        lines = [f"physical plan {self.name}:"]
        for index, op in enumerate(self.steps):
            estimate = ""
            if self.estimates is not None and self.estimates[index] is not None:
                estimate = f"  [rows <= {self.estimates[index]}]"
            lines.append(f"  T{index} = {op}{estimate}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.steps)

    def __str__(self) -> str:
        return self.explain()
