"""Naive (scan-based) query evaluation — the costly baseline.

Bounded evaluation's whole point is to beat this module: here queries
are answered by scanning and joining entire relations, so work grows
with ``|D|``.  It doubles as the reference semantics for every other
component (plans, envelopes, specializations are all property-tested
against it).

* CQ/UCQ/∃FO+ are evaluated with a pipelined hash join over resolved
  tableaux — an idealized in-memory stand-in for the paper's MySQL
  baseline (DESIGN.md, substitution table).
* FO is evaluated by active-domain recursion, exponential in the number
  of quantifiers; fine for the small instances the tests use, and the
  best one can do generically for full FO.

``ScanStats`` counts every tuple read, so benchmarks can contrast
scan-based access volume with the bounded plans' fetch counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

from ..errors import QueryError
from ..query.ast import (CQ, UCQ, FAnd, FAtom, FEq, FExists, FForAll, FNot,
                         FOQuery, FOr, Formula, PositiveQuery)
from ..query.normalize import as_ucq
from ..query.tableau import Row, resolved_tableau
from ..query.terms import Var, is_const, is_var
from ..query.varclasses import analyze_variables
from ..storage.database import Database


@dataclass
class ScanStats:
    """Accounting for scan-based evaluation."""

    tuples_scanned: int = 0
    relations_scanned: int = 0
    intermediate_rows: int = 0

    def merge(self, other: "ScanStats") -> None:
        self.tuples_scanned += other.tuples_scanned
        self.relations_scanned += other.relations_scanned
        self.intermediate_rows += other.intermediate_rows


def evaluate_cq(q: CQ, db: Database,
                stats: ScanStats | None = None) -> set[tuple]:
    """Evaluate a normalized CQ by hash-joining full relation scans.

    Returns the answer set ``Q(D)`` as a set of value tuples (one per
    head position; ``set()`` vs ``{()}`` distinguishes false/true for
    Boolean queries).
    """
    stats = stats if stats is not None else ScanStats()
    analysis = analyze_variables(q)
    if not analysis.classically_satisfiable:
        return set()
    tableau = resolved_tableau(q, analysis)

    # Partial bindings over representative variables, built row by row.
    bindings: list[dict[Var, Hashable]] = [{}]
    bound: set[Var] = set()

    for row in _join_order(tableau.rows):
        bindings = _hash_join_step(row, bindings, bound, db, stats)
        if not bindings:
            return set()
        bound.update(t for t in row.terms if is_var(t))

    answers: set[tuple] = set()
    for binding in bindings:
        answer = []
        for term in tableau.summary:
            if is_const(term):
                answer.append(term.value)
            else:
                if term not in binding:
                    raise QueryError(
                        f"head variable {term} of {q.name} is unbound after "
                        "evaluation; the query is unsafe"
                    )
                answer.append(binding[term])
        answers.add(tuple(answer))
    return answers


def _join_order(rows: Sequence[Row]) -> list[Row]:
    """Greedy ordering: prefer rows sharing variables with what is bound."""
    remaining = list(rows)
    ordered: list[Row] = []
    bound: set[Var] = set()
    while remaining:
        def score(row: Row) -> tuple:
            row_vars = {t for t in row.terms if is_var(t)}
            consts = sum(1 for t in row.terms if is_const(t))
            return (-len(row_vars & bound), -consts, len(row_vars))
        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound.update(t for t in best.terms if is_var(t))
    return ordered


def _hash_join_step(row: Row, bindings: list[dict[Var, Hashable]],
                    bound: set[Var], db: Database,
                    stats: ScanStats) -> list[dict[Var, Hashable]]:
    """Join current partial bindings with one relation scan."""
    shared: list[Var] = []
    seen_positions: dict[Var, int] = {}
    for position, term in enumerate(row.terms):
        if is_var(term):
            if term in bound and term not in seen_positions:
                shared.append(term)
            seen_positions.setdefault(term, position)

    # Build the hash table over the scanned relation.
    table: dict[tuple, list[tuple]] = {}
    tuples = db.relation_tuples(row.relation)
    stats.relations_scanned += 1
    stats.tuples_scanned += len(tuples)
    for data_row in tuples:
        if not _matches_pattern(data_row, row):
            continue
        key = tuple(data_row[seen_positions[v]] for v in shared)
        table.setdefault(key, []).append(data_row)

    new_vars = [v for v in seen_positions if v not in bound]
    result: list[dict[Var, Hashable]] = []
    for binding in bindings:
        key = tuple(binding[v] for v in shared)
        for data_row in table.get(key, ()):
            extended = dict(binding)
            for v in new_vars:
                extended[v] = data_row[seen_positions[v]]
            result.append(extended)
    stats.intermediate_rows += len(result)
    return result


def _matches_pattern(data_row: tuple, row: Row) -> bool:
    """Check constants and repeated variables within one tableau row."""
    first_seen: dict[Var, Hashable] = {}
    for value, term in zip(data_row, row.terms):
        if is_const(term):
            if value != term.value:
                return False
        else:
            previous = first_seen.setdefault(term, value)
            if previous != value:
                return False
    return True


def evaluate_ucq(q: UCQ, db: Database,
                 stats: ScanStats | None = None) -> set[tuple]:
    """Evaluate a UCQ: union of disjunct answers."""
    answers: set[tuple] = set()
    for disjunct in q.disjuncts:
        answers |= evaluate_cq(disjunct, db, stats)
    return answers


def evaluate_positive(q: PositiveQuery, db: Database,
                      stats: ScanStats | None = None) -> set[tuple]:
    """Evaluate an ∃FO+ query via its UCQ normal form."""
    return evaluate_ucq(as_ucq(q), db, stats)


def evaluate_fo(q: FOQuery, db: Database,
                stats: ScanStats | None = None) -> set[tuple]:
    """Active-domain evaluation of a full FO query.

    ``Q(D) = {ā ∈ adom(D)^m | D |= Q(ā)}`` with ``adom`` extended by the
    query's constants (paper, Section 2).  Exponential; test-scale only.
    """
    stats = stats if stats is not None else ScanStats()
    constants = _formula_constants(q.body)
    domain = sorted(db.active_domain(constants), key=repr)
    answers: set[tuple] = set()
    free = list(q.head)

    def assign(index: int, env: dict[Var, Hashable]) -> None:
        if index == len(free):
            if _holds(q.body, env, db, domain, stats):
                answers.add(tuple(env[v] for v in q.head))
            return
        var = free[index]
        if var in env:  # Repeated head variable.
            assign(index + 1, env)
            return
        for value in domain:
            env[var] = value
            assign(index + 1, env)
        del env[var]

    assign(0, {})
    return answers


def _formula_constants(formula: Formula) -> set[Hashable]:
    if isinstance(formula, FAtom):
        return {c.value for c in formula.atom.constants()}
    if isinstance(formula, FEq):
        values = set()
        for side in (formula.equality.left, formula.equality.right):
            if is_const(side):
                values.add(side.value)
        return values
    if isinstance(formula, (FAnd, FOr)):
        result: set[Hashable] = set()
        for child in formula.children:
            result |= _formula_constants(child)
        return result
    if isinstance(formula, (FExists, FForAll, FNot)):
        return _formula_constants(formula.child)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def _holds(formula: Formula, env: dict[Var, Hashable], db: Database,
           domain: Sequence[Hashable], stats: ScanStats) -> bool:
    if isinstance(formula, FAtom):
        atom = formula.atom
        values = []
        for term in atom.terms:
            if is_const(term):
                values.append(term.value)
            elif term in env:
                values.append(env[term])
            else:
                raise QueryError(f"free variable {term} not in scope in {atom}")
        stats.tuples_scanned += 1
        return (atom.relation, tuple(values)) in db
    if isinstance(formula, FEq):
        sides = []
        for side in (formula.equality.left, formula.equality.right):
            sides.append(side.value if is_const(side) else env[side])
        return sides[0] == sides[1]
    if isinstance(formula, FAnd):
        return all(_holds(c, env, db, domain, stats) for c in formula.children)
    if isinstance(formula, FOr):
        return any(_holds(c, env, db, domain, stats) for c in formula.children)
    if isinstance(formula, FNot):
        return not _holds(formula.child, env, db, domain, stats)
    if isinstance(formula, (FExists, FForAll)):
        is_exists = isinstance(formula, FExists)
        variables = formula.variables

        def sweep(index: int) -> bool:
            if index == len(variables):
                return _holds(formula.child, env, db, domain, stats)
            var = variables[index]
            saved = env.get(var)
            had = var in env
            for value in domain:
                env[var] = value
                result = sweep(index + 1)
                if is_exists and result:
                    _restore(env, var, saved, had)
                    return True
                if not is_exists and not result:
                    _restore(env, var, saved, had)
                    return False
            _restore(env, var, saved, had)
            return not is_exists

        return sweep(0)
    raise QueryError(f"unknown formula node {type(formula).__name__}")


def _restore(env: dict, var: Var, saved, had: bool) -> None:
    if had:
        env[var] = saved
    else:
        env.pop(var, None)


def evaluate(query, db: Database, stats: ScanStats | None = None) -> set[tuple]:
    """Evaluate any supported query class naively."""
    if isinstance(query, CQ):
        return evaluate_cq(query, db, stats)
    if isinstance(query, UCQ):
        return evaluate_ucq(query, db, stats)
    if isinstance(query, PositiveQuery):
        return evaluate_positive(query, db, stats)
    if isinstance(query, FOQuery):
        return evaluate_fo(query, db, stats)
    raise QueryError(f"cannot evaluate {type(query).__name__}")
