"""Building bounded query plans from covered queries.

This is the constructive half of Theorem 3.11: *if a CQ is covered by
A, it is boundedly evaluable under A*.  The builder replays the coverage
fixpoint trace (``repro.core.coverage``) as plan operations:

1. start from the unit table and the query's pinned constants;
2. for each recorded constraint application, emit
   ``fetch → × → σ → π`` steps that extend the environment table with
   the newly covered variables (one column per eq-class);
3. verify every relation atom through its condition-(c) witness
   constraint (a ``fetch`` + semijoin) — this is what Example 3.1(1)
   shows cannot be skipped in general: without it, x- and y-values need
   not come from the *same* tuple.  Two plan-quality refinements mirror
   the paper's Example 1.1 plan:

   * a verification is emitted *as soon as* its inputs are covered, so
     selective conditions (district = "Queen's Park") prune the
     environment before further expansion;
   * it is skipped entirely when some application on the same atom
     already checked all needed positions (the application's fetch
     returns genuine ``X∪Y`` projections, so the witnessing tuple
     exists) — this is why Example 1.1 needs ``610 + 610·192·2``
     fetches rather than a second pass per relation;

4. project the head.

Every data access goes through ``fetch``.  The builder also issues a
:class:`~repro.engine.cost.CostCertificate`: after each application the
environment bound multiplies by that constraint's cardinality bound, so
each fetch retrieves at most ``(∏ earlier bounds) · N`` tuples — the
paper's "determined by Q and A only" guarantee, checkable without
executing the plan.

Correctness (plan result == naive evaluation on every instance
satisfying A) is property-tested in ``tests/engine/test_builder.py``.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from .._util import FreshNames
from ..errors import PlanError
from ..query.ast import CQ, Atom
from ..query.terms import Var
from ..query.varclasses import VariableAnalysis
from ..schema.access import AccessConstraint
from .cost import CostCertificate
from .plan import (ColEq, Condition, ConstEq, ConstOp, EmptyOp, FetchOp,
                   Plan, ProductOp, ProjectOp, SelectOp, UnionOp, UnitOp)


class _CQPlanBuilder:
    """Appends the bounded plan of one covered CQ to a :class:`Plan`."""

    def __init__(self, plan: Plan, coverage, eager_verification: bool = True,
                 skip_subsumed_verification: bool = True) -> None:
        self.plan = plan
        self.coverage = coverage
        # Plan-quality switches (benchmarked in bench_ablation_builder.py):
        # eager_verification schedules each atom check as soon as its
        # inputs are covered (pruning before expansion); skip_subsumed_
        # verification drops checks an application fetch already proved.
        self.eager_verification = eager_verification
        self.skip_subsumed_verification = skip_subsumed_verification
        self.query: CQ = coverage.query
        self.analysis: VariableAnalysis = coverage.analysis
        self.schema = coverage.access_schema.schema
        self.fresh = FreshNames(
            {v.name for v in self.query.variables()} | {"q"}
        )
        # Environment state: step index + column name per eq-class rep.
        self.env: int | None = None
        self.env_columns: dict[Var, str] = {}
        self.env_order: list[Var] = []
        # Cost certificate bookkeeping: the environment-size bound is the
        # product of the constraint bounds applied so far.
        self.certificate = plan.certificate
        self.env_factors: list[AccessConstraint] = []
        # Which (atom, checked-position-span) pairs applications proved.
        self.applied_spans: dict[int, list[set[int]]] = {}

    # -- small helpers ---------------------------------------------------------

    def _rep(self, var: Var) -> Var:
        return self.analysis.eq.find(var)

    def _pinned(self, var: Var):
        constant = self.analysis.constant_of(var)
        return None if constant is None else constant.value

    def _materialized(self, term) -> bool:
        """Is this term usable right now (pinned or has a column)?"""
        if self._pinned(term) is not None:
            return True
        return self._rep(term) in self.env_columns

    def _head_column_names(self) -> tuple[str, ...]:
        return tuple(f"q_{i}" for i in range(len(self.query.head)))

    def _record_fetch_term(self, constraint: AccessConstraint) -> None:
        if self.certificate is not None:
            self.certificate.fetch_terms.append(
                tuple(self.env_factors) + (constraint,))

    # -- main entry --------------------------------------------------------------

    def build(self) -> int:
        if not self.coverage.is_covered:
            raise PlanError(
                f"{self.query.name} is not covered by the access schema; "
                f"{self.coverage.decision().reason}"
            )
        if not self.analysis.classically_satisfiable:
            # Example 3.12: a query equating two constants is empty on
            # every instance; the empty plan answers it.
            return self.plan.add(EmptyOp(self._head_column_names()))

        self.env = self.plan.add(UnitOp())
        pending = set(range(len(self.query.atoms)))
        if self.eager_verification:
            self._flush_verifications(pending)
        for application in self.coverage.applications:
            self._emit_application(application)
            if self.eager_verification:
                self._flush_verifications(pending)
        if not self.eager_verification:
            self._flush_verifications(pending)
        if pending:
            raise PlanError(
                f"internal: atoms {sorted(pending)} of {self.query.name} "
                "never became verifiable; coverage witness inconsistent")
        return self._emit_head()

    # -- verification scheduling ------------------------------------------------

    def _flush_verifications(self, pending: set[int]) -> None:
        """Emit (or skip) every verification whose inputs are ready.

        Early verification prunes the environment before later, more
        expensive expansions — the Example 1.1 plan shape.
        """
        progress = True
        while progress:
            progress = False
            for atom_index in sorted(pending):
                atom = self.query.atoms[atom_index]
                witness = self.coverage.atom_witnesses[atom_index]
                needed = set(witness.checked_positions)
                if self.skip_subsumed_verification and any(
                        span >= needed
                        for span in self.applied_spans.get(atom_index, ())):
                    # An application on this atom already matched every
                    # needed position against a real tuple projection.
                    pending.remove(atom_index)
                    progress = True
                    break
                if not self._verification_ready(atom, witness):
                    continue
                self._emit_verification(atom, witness)
                pending.remove(atom_index)
                progress = True
                break

    def _verification_ready(self, atom: Atom, witness) -> bool:
        relation = self.schema.relation(atom.relation)
        constraint = witness.constraint
        for position in constraint.x_positions(relation):
            if not self._materialized(atom.terms[position]):
                return False
        for position in witness.checked_positions:
            if not self._materialized(atom.terms[position]):
                return False
        return True

    # -- fetch plumbing ------------------------------------------------------------

    def _emit_fetch(self, atom: Atom, constraint: AccessConstraint
                    ) -> tuple[int, list[str], list[int], list[int]]:
        """Emit TX = π(env × consts), F = fetch(TX, constraint).

        Returns ``(join_index, fetch_columns, x_positions, y_positions)``
        where ``join_index`` is env × F and ``fetch_columns`` name F's
        ``X ∪ Y`` output inside the joined table (X attrs first).
        """
        relation = self.schema.relation(atom.relation)
        x_positions = list(constraint.x_positions(relation))
        y_positions = list(constraint.y_positions(relation))

        aux = self.env
        aux_entry_columns: list[str] = []
        for position in x_positions:
            term = atom.terms[position]
            pinned = self._pinned(term)
            if pinned is not None:
                column = self.fresh.fresh("k")
                const_index = self.plan.add(ConstOp(column, pinned))
                aux = self.plan.add(ProductOp(aux, const_index))
                aux_entry_columns.append(column)
            else:
                rep = self._rep(term)
                if rep not in self.env_columns:
                    raise PlanError(
                        f"internal: X-side variable {term} of {atom} not "
                        "yet materialized; coverage trace out of order"
                    )
                aux_entry_columns.append(self.env_columns[rep])

        x_out = [self.fresh.fresh("x") for _ in x_positions]
        tx = self.plan.add(ProjectOp(aux, tuple(aux_entry_columns),
                                     tuple(x_out)))
        f_columns = [self.fresh.fresh("f") for _ in
                     range(len(x_positions) + len(y_positions))]
        self._record_fetch_term(constraint)
        fetch_index = self.plan.add(FetchOp(
            tx, tuple(x_out), constraint, tuple(f_columns)))
        join_index = self.plan.add(ProductOp(self.env, fetch_index))
        return join_index, f_columns, x_positions, y_positions

    def _x_match_conditions(self, atom: Atom, x_positions: Sequence[int],
                            f_columns: Sequence[str]) -> list[Condition]:
        """Equate F's X-columns with the environment (or constants)."""
        conditions: list[Condition] = []
        for offset, position in enumerate(x_positions):
            term = atom.terms[position]
            f_column = f_columns[offset]
            pinned = self._pinned(term)
            if pinned is not None:
                conditions.append(ConstEq(f_column, pinned))
            else:
                rep = self._rep(term)
                conditions.append(ColEq(f_column, self.env_columns[rep]))
        return conditions

    # -- coverage-application replay ---------------------------------------------------

    def _emit_application(self, application) -> None:
        atom = self.query.atoms[application.atom_index]
        constraint = application.constraint
        join_index, f_columns, x_positions, y_positions = self._emit_fetch(
            atom, constraint)

        conditions = self._x_match_conditions(atom, x_positions, f_columns)
        new_reps: dict[Var, str] = {}
        for offset, position in enumerate(y_positions):
            term = atom.terms[position]
            f_column = f_columns[len(x_positions) + offset]
            pinned = self._pinned(term)
            if pinned is not None:
                conditions.append(ConstEq(f_column, pinned))
                continue
            rep = self._rep(term)
            if rep in self.env_columns:
                conditions.append(ColEq(f_column, self.env_columns[rep]))
            elif rep in new_reps:
                conditions.append(ColEq(f_column, new_reps[rep]))
            else:
                new_reps[rep] = f_column

        selected = self.plan.add(SelectOp(join_index, tuple(conditions)))

        keep_src = [self.env_columns[rep] for rep in self.env_order]
        keep_out = list(keep_src)
        for rep, f_column in new_reps.items():
            keep_src.append(f_column)
            keep_out.append(rep.name)
        self.env = self.plan.add(ProjectOp(selected, tuple(keep_src),
                                           tuple(keep_out)))
        for rep in new_reps:
            self.env_columns[rep] = rep.name
            self.env_order.append(rep)

        # After the X-match selection, every environment row pairs with
        # at most N fetched rows, so the environment bound multiplies by
        # N — and every position in X ∪ Y was matched against a genuine
        # tuple projection, which the verification scheduler exploits.
        self.env_factors.append(constraint)
        relation = self.schema.relation(atom.relation)
        span = (set(constraint.x_positions(relation))
                | set(constraint.y_positions(relation)))
        self.applied_spans.setdefault(application.atom_index, []).append(span)

    # -- atom verification -----------------------------------------------------------

    def _emit_verification(self, atom: Atom, witness) -> None:
        constraint = witness.constraint
        join_index, f_columns, x_positions, y_positions = self._emit_fetch(
            atom, constraint)

        conditions = self._x_match_conditions(atom, x_positions, f_columns)
        checked = set(witness.checked_positions)
        for offset, position in enumerate(y_positions):
            if position not in checked:
                continue
            term = atom.terms[position]
            f_column = f_columns[len(x_positions) + offset]
            pinned = self._pinned(term)
            if pinned is not None:
                conditions.append(ConstEq(f_column, pinned))
            else:
                rep = self._rep(term)
                conditions.append(ColEq(f_column, self.env_columns[rep]))

        selected = self.plan.add(SelectOp(join_index, tuple(conditions)))
        keep = tuple(self.env_columns[rep] for rep in self.env_order)
        self.env = self.plan.add(ProjectOp(selected, keep, keep))
        # A semijoin never grows the environment: no new factor.

    # -- head ---------------------------------------------------------------------

    def _emit_head(self) -> int:
        aux = self.env
        const_columns: dict[Hashable, str] = {}
        source_columns: list[str] = []
        for head_var in self.query.head:
            pinned = self._pinned(head_var)
            if pinned is not None:
                if pinned not in const_columns:
                    column = self.fresh.fresh("h")
                    const_index = self.plan.add(ConstOp(column, pinned))
                    aux = self.plan.add(ProductOp(aux, const_index))
                    const_columns[pinned] = column
                source_columns.append(const_columns[pinned])
            else:
                rep = self._rep(head_var)
                if rep not in self.env_columns:
                    raise PlanError(
                        f"internal: covered head variable {head_var} has no "
                        "column"
                    )
                source_columns.append(self.env_columns[rep])
        if self.certificate is not None:
            self.certificate.output_terms.append(tuple(self.env_factors))
        return self.plan.add(ProjectOp(aux, tuple(source_columns),
                                       self._head_column_names()))


def build_bounded_plan(coverage, name: str | None = None,
                       eager_verification: bool = True,
                       skip_subsumed_verification: bool = True) -> Plan:
    """Build the bounded plan of one covered CQ.

    ``coverage`` is a :class:`repro.core.coverage.CoverageResult` whose
    ``is_covered`` is True; :class:`PlanError` otherwise.  The returned
    plan carries a :class:`~repro.engine.cost.CostCertificate`.

    The two keyword switches disable the plan-quality refinements
    (early verification scheduling / subsumed-verification skipping);
    correctness is unaffected, only the access bounds change — see the
    ablation benchmark.
    """
    plan = Plan(name or f"bounded[{coverage.query.name}]")
    plan.certificate = CostCertificate()
    _CQPlanBuilder(plan, coverage, eager_verification,
                   skip_subsumed_verification).build()
    return plan


def build_union_plan(coverages: Sequence, name: str = "bounded-union") -> Plan:
    """Bounded plan for a union of covered CQs (Lemma 3.6 / Section 2).

    Appends each disjunct's plan and a single trailing union block, so
    the result stays within the UCQ plan fragment (unions only at the
    end).
    """
    if not coverages:
        raise PlanError("union plan needs at least one disjunct")
    plan = Plan(name)
    plan.certificate = CostCertificate()
    results = []
    for coverage in coverages:
        results.append(_CQPlanBuilder(plan, coverage).build())
    if len(results) > 1:
        plan.add(UnionOp(tuple(results)))
    return plan


def build_empty_plan(arity: int, name: str = "empty") -> Plan:
    """A plan returning the empty answer (for A-unsatisfiable queries:
    Example 3.1(2) — a plan for the empty query suffices)."""
    plan = Plan(name)
    plan.certificate = CostCertificate()
    plan.add(EmptyOp(tuple(f"q_{i}" for i in range(arity))))
    return plan
