"""Synthetic UK road-accident data (the stand-in for dataset [1]).

The paper's Example 1.1 runs on the UK traffic-accident data 1979–2005:
Accident (7.5M), Casualty (10M), Vehicle (13.5M) tuples, satisfying

    ψ1: Accident(date -> aid, 610)        # <= 610 accidents per day
    ψ2: Casualty(aid -> vid, 192)         # <= 192 vehicles per accident
    ψ3: Accident(aid -> (district, date), 1)
    ψ4: Vehicle(vid -> (driver, age), 1)

We cannot ship the data, so this generator produces instances *of any
size* that satisfy exactly those constraints (plus realistic skew: two
vehicles per accident on average, matching the paper's "the chances are
that we need to access 610 × 2 × 2 tuples only").  Bounded evaluation
depends on the constraints a dataset satisfies, not on its values, so
plan shapes and access counts transfer (DESIGN.md, substitution table).

Two flavours:

* :func:`simple_accidents` — the paper's simplified 3-relation schema,
  used by Q0 and the EXP-1/EXP-4 benchmarks;
* :func:`extended_accidents` — a wider schema (severity, weather, road
  class, age bands, ...) whose discovered access schema has dozens of
  constraints, standing in for the paper's "84 simple access
  constraints" (EXP-2).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from ..schema.access import AccessConstraint, AccessSchema
from ..schema.relation import Schema
from ..storage.backend import StorageBackend
from ..storage.database import Database

#: Optional storage-engine hook shared by the workload generators: a
#: callable from the generated schema to the backend the instance
#: should live on.
BackendFactory = Optional[Callable[[Schema], StorageBackend]]

DISTRICTS = [
    "Queens Park", "Soho", "Camden", "Islington", "Hackney", "Brixton",
    "Greenwich", "Croydon", "Ealing", "Harrow", "Ilford", "Sutton",
    "Leith", "Morningside", "Partick", "Didsbury", "Jericho", "Heaton",
]
SEVERITIES = ["fatal", "serious", "slight"]
WEATHER = ["fine", "rain", "snow", "fog", "wind"]
ROAD_TYPES = ["motorway", "a-road", "b-road", "minor"]
CASUALTY_CLASSES = ["driver", "passenger", "pedestrian"]
AGE_BANDS = ["0-15", "16-25", "26-45", "46-65", "66+"]
MAKES = ["ford", "vauxhall", "bmw", "toyota", "honda", "rover", "mini"]


def simple_schema() -> Schema:
    """The 3-relation schema of Example 1.1."""
    return Schema.from_dict({
        "Accident": ("aid", "district", "date"),
        "Casualty": ("cid", "aid", "class", "vid"),
        "Vehicle": ("vid", "driver", "age"),
    })


def canonical_access_schema(schema: Schema | None = None,
                            per_day: int = 610,
                            per_accident: int = 192) -> AccessSchema:
    """ψ1–ψ4 of Example 1.1 (bounds adjustable, as the paper allows:
    "possibly with cardinality bounds mildly adjusted")."""
    schema = schema or simple_schema()
    return AccessSchema(schema, [
        AccessConstraint("Accident", ("date",), ("aid",), per_day),
        AccessConstraint("Casualty", ("aid",), ("vid",), per_accident),
        AccessConstraint("Accident", ("aid",), ("district", "date"), 1),
        AccessConstraint("Vehicle", ("vid",), ("driver", "age"), 1),
    ])


@dataclass
class AccidentScale:
    """Size knobs for the generator."""

    days: int = 30
    max_accidents_per_day: int = 40
    mean_casualties: float = 2.0
    max_casualties: int = 12
    seed: int = 20150531  # PODS'15 started May 31 2015.


def _dates(days: int) -> list[str]:
    dates = []
    day, month, year = 1, 1, 1979
    for _ in range(days):
        dates.append(f"{day}/{month}/{year}")
        day += 1
        if day > 28:
            day = 1
            month += 1
            if month > 12:
                month = 1
                year += 1
    return dates


def simple_accidents(scale: AccidentScale | None = None,
                     access_schema: AccessSchema | None = None,
                     backend_factory: BackendFactory = None) -> Database:
    """Generate a simple-schema instance satisfying ψ1–ψ4.

    Total size is roughly ``days * max_accidents_per_day / 2 *
    (1 + 2 * mean_casualties)`` tuples.  ``backend_factory`` picks the
    storage engine, e.g. ``lambda s: ShardedBackend(s, shards=16)``
    (default: the in-memory engine).
    """
    scale = scale or AccidentScale()
    rng = random.Random(scale.seed)
    schema = simple_schema()
    db = Database(schema, access_schema or canonical_access_schema(schema),
                  backend=backend_factory(schema) if backend_factory
                  else None)

    aid = cid = vid = 0
    for date in _dates(scale.days):
        accidents_today = rng.randint(1, scale.max_accidents_per_day)
        for _ in range(accidents_today):
            aid += 1
            district = rng.choice(DISTRICTS)
            db.insert("Accident", (f"a{aid}", district, date))
            n_casualties = min(scale.max_casualties, max(1, round(
                rng.expovariate(1.0 / scale.mean_casualties))))
            for _ in range(n_casualties):
                cid += 1
                vid += 1
                db.insert("Vehicle", (
                    f"v{vid}",
                    f"driver{rng.randrange(10 ** 6)}",
                    rng.randint(17, 90),
                ))
                db.insert("Casualty", (
                    f"c{cid}", f"a{aid}",
                    rng.choice(CASUALTY_CLASSES), f"v{vid}",
                ))
    return db


def extended_schema() -> Schema:
    """A wider accident schema for constraint discovery (EXP-2)."""
    return Schema.from_dict({
        "Accident": ("aid", "district", "date", "severity", "weather",
                     "road_type"),
        "Casualty": ("cid", "aid", "class", "age_band", "vid"),
        "Vehicle": ("vid", "make", "driver", "age"),
    })


def extended_access_schema(schema: Schema | None = None,
                           per_day: int = 610,
                           per_accident: int = 192) -> AccessSchema:
    """A curated access schema over the extended schema.

    The analogue of the paper's "84 simple access constraints": keys on
    every relation, the per-day and per-accident fan-out bounds, and the
    FK back-pointers.  Deliberately *not* every discoverable constraint:
    a query whose only selection is, say, ``weather`` stays uncovered,
    which is what produces a coverage *rate* below 100% (EXP-2) — on a
    toy-sized instance blind discovery finds a tight bound for every
    attribute pair and trivializes the experiment.
    """
    schema = schema or extended_schema()
    return AccessSchema(schema, [
        AccessConstraint("Accident", ("aid",),
                         ("district", "date", "severity", "weather",
                          "road_type"), 1),
        AccessConstraint("Accident", ("date",), ("aid",), per_day),
        AccessConstraint("Casualty", ("cid",),
                         ("aid", "class", "age_band", "vid"), 1),
        AccessConstraint("Casualty", ("aid",),
                         ("cid", "class", "age_band", "vid"), per_accident),
        AccessConstraint("Casualty", ("vid",),
                         ("cid", "aid", "class", "age_band"), 2),
        AccessConstraint("Vehicle", ("vid",), ("make", "driver", "age"), 1),
    ])


def extended_accidents(scale: AccidentScale | None = None,
                       backend_factory: BackendFactory = None) -> Database:
    """Generate an extended-schema instance (no access schema attached;
    callers usually discover one)."""
    scale = scale or AccidentScale()
    rng = random.Random(scale.seed + 1)
    schema = extended_schema()
    db = Database(schema, backend=backend_factory(schema)
                  if backend_factory else None)

    aid = cid = vid = 0
    for date in _dates(scale.days):
        for _ in range(rng.randint(1, scale.max_accidents_per_day)):
            aid += 1
            db.insert("Accident", (
                f"a{aid}", rng.choice(DISTRICTS), date,
                rng.choices(SEVERITIES, weights=[1, 5, 20])[0],
                rng.choices(WEATHER, weights=[10, 5, 1, 1, 2])[0],
                rng.choice(ROAD_TYPES),
            ))
            n_casualties = min(scale.max_casualties, max(1, round(
                rng.expovariate(1.0 / scale.mean_casualties))))
            for _ in range(n_casualties):
                cid += 1
                vid += 1
                db.insert("Vehicle", (
                    f"v{vid}", rng.choice(MAKES),
                    f"driver{rng.randrange(10 ** 6)}",
                    rng.randint(17, 90),
                ))
                db.insert("Casualty", (
                    f"c{cid}", f"a{aid}", rng.choice(CASUALTY_CLASSES),
                    rng.choice(AGE_BANDS), f"v{vid}",
                ))
    return db
