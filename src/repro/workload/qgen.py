"""Random conjunctive-query workloads.

Used to reproduce the paper's workload-level claim (Section 1):
"77% of conjunctive queries are actually boundedly evaluable under a
set of 84 simple access constraints".  The generator emits FK-join-
shaped CQs — the dominant shape of user queries on the accident data:
pick a connected join path along declared foreign-key edges, add
equality selections on a random subset of selectable attributes, and
project a few variables.

Whether a particular query is covered depends on which selections it
happens to include (e.g. a ``date`` selection unlocks ψ1), so a
workload yields a *coverage rate*; EXP-2 measures it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from ..query.ast import CQ, Atom, Equality
from ..query.terms import Const, Var
from ..schema.relation import Schema


@dataclass(frozen=True)
class JoinEdge:
    """A foreign-key style join: ``left.left_attr = right.right_attr``."""

    left: str
    left_attr: str
    right: str
    right_attr: str


@dataclass
class WorkloadConfig:
    """Shape parameters for the random workload."""

    schema: Schema
    join_edges: Sequence[JoinEdge]
    #: Attribute -> pool of constants a selection may use.
    selectable: dict[tuple[str, str], Sequence[Hashable]] = field(
        default_factory=dict)
    #: Probability that any given selectable attribute of a chosen
    #: relation receives an equality selection.
    p_select: float = 0.25
    #: Per-attribute overrides of ``p_select`` (e.g. date selections are
    #: far more common in accident analytics than weather selections).
    p_select_override: dict[tuple[str, str], float] = field(
        default_factory=dict)
    #: Maximum relations joined in one query.
    max_atoms: int = 3
    #: Maximum head variables.
    max_head: int = 2

    def selection_probability(self, relation: str, attribute: str) -> float:
        return self.p_select_override.get((relation, attribute),
                                          self.p_select)


def accident_workload_config(schema: Schema) -> WorkloadConfig:
    """The configuration used by EXP-2 over the extended accident schema."""
    from .accidents import (AGE_BANDS, CASUALTY_CLASSES, DISTRICTS, MAKES,
                            ROAD_TYPES, SEVERITIES, WEATHER, _dates)
    dates = _dates(60)
    return WorkloadConfig(
        schema=schema,
        join_edges=[
            JoinEdge("Accident", "aid", "Casualty", "aid"),
            JoinEdge("Casualty", "vid", "Vehicle", "vid"),
        ],
        selectable={
            ("Accident", "date"): dates,
            ("Accident", "district"): DISTRICTS,
            ("Accident", "severity"): SEVERITIES,
            ("Accident", "weather"): WEATHER,
            ("Accident", "road_type"): ROAD_TYPES,
            ("Casualty", "class"): CASUALTY_CLASSES,
            ("Casualty", "age_band"): AGE_BANDS,
            ("Vehicle", "make"): MAKES,
            ("Vehicle", "age"): list(range(17, 91)),
            # Entity lookups: personalized searches pin a concrete
            # accident/vehicle id (the "me" of Graph Search).
            ("Accident", "aid"): [f"a{i}" for i in range(1, 400)],
            ("Casualty", "aid"): [f"a{i}" for i in range(1, 400)],
            ("Vehicle", "vid"): [f"v{i}" for i in range(1, 800)],
        },
        p_select_override={
            # Personalized accident analytics almost always pin a day
            # (the paper's Q0 and the Graph Search analogy) or a
            # concrete entity; secondary dimensions occasionally.
            ("Accident", "date"): 0.8,
            ("Accident", "district"): 0.4,
            ("Accident", "aid"): 0.15,
            ("Casualty", "class"): 0.3,
            ("Casualty", "aid"): 0.35,
            ("Vehicle", "vid"): 0.55,
        },
    )


def _join_path(rng: random.Random, config: WorkloadConfig) -> list[str]:
    """A connected relation path along the join edges."""
    relations = config.schema.relation_names()
    start = rng.choice(relations)
    path = [start]
    while len(path) < config.max_atoms:
        frontier = [e for e in config.join_edges
                    if (e.left in path) != (e.right in path)]
        if not frontier or rng.random() < 0.35:
            break
        edge = rng.choice(frontier)
        path.append(edge.right if edge.left in path else edge.left)
    return path


def random_cq(rng: random.Random, config: WorkloadConfig,
              name: str = "W") -> CQ:
    """One random FK-join CQ with equality selections and a small head."""
    path = _join_path(rng, config)
    var_of: dict[tuple[str, str], Var] = {}

    def variable(relation: str, attribute: str) -> Var:
        key = (relation, attribute)
        if key not in var_of:
            var_of[key] = Var(f"{attribute}_{relation[:2].lower()}")
        return var_of[key]

    atoms = []
    for relation_name in path:
        relation = config.schema.relation(relation_name)
        atoms.append(Atom(relation_name, tuple(
            variable(relation_name, a) for a in relation.attributes)))

    equalities: list[Equality] = []
    # Join conditions along the chosen path.
    for edge in config.join_edges:
        if edge.left in path and edge.right in path:
            left = variable(edge.left, edge.left_attr)
            right = variable(edge.right, edge.right_attr)
            if left != right:
                equalities.append(Equality(left, right))

    # Random selections.
    for (relation_name, attribute), pool in config.selectable.items():
        probability = config.selection_probability(relation_name, attribute)
        if relation_name in path and rng.random() < probability:
            equalities.append(Equality(
                variable(relation_name, attribute),
                Const(rng.choice(list(pool)))))

    # Head: up to max_head variables not already pinned by selections.
    pinned = {eq.left for eq in equalities if eq.is_var_const}
    candidates = [v for v in var_of.values() if v not in pinned]
    rng.shuffle(candidates)
    head = candidates[:rng.randint(1, config.max_head)] or \
        [next(iter(var_of.values()))]
    return CQ(name, head, atoms, equalities)


def generate_workload(n: int, config: WorkloadConfig,
                      seed: int = 7) -> list[CQ]:
    """A reproducible workload of ``n`` random CQs."""
    rng = random.Random(seed)
    return [random_cq(rng, config, name=f"W{i}") for i in range(n)]
