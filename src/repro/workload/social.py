"""Synthetic social graphs and Graph-Search-style patterns.

Stands in for the web graphs of [11] (billions of nodes) behind the
paper's graph claims: "60% of graph pattern queries via subgraph
isomorphism are boundedly evaluable ... outperforms conventional
subgraph isomorphism methods by 4 orders of magnitude" (Section 1).

The generated graph mimics a social network:

* ``person`` nodes with ``friend`` edges (bounded degree — the
  real-world cap Facebook enforces, 5000),
* ``city`` nodes with ``lives_in`` edges (exactly one per person),
* ``interest`` nodes with ``likes`` edges (bounded per person).

``graph_search_pattern`` is the paper's personalized-search example:
"find me all my friends in NYC who like cycling" — a pattern whose only
expensive node ("friends") is reachable from the designated constant
"me" through a degree-bounded edge.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..graph.access import (DegreeConstraint, GraphAccessSchema,
                            LabelCountConstraint)
from ..graph.graph import Graph
from ..graph.pattern import Pattern, PatternEdge, PatternNode
from ..schema.access import AccessConstraint, AccessSchema
from ..schema.relation import Schema
from ..storage.database import Database
from .accidents import BackendFactory

CITIES = ["nyc", "london", "paris", "tokyo", "berlin", "sydney",
          "toronto", "madrid"]
INTERESTS = ["cycling", "chess", "jazz", "climbing", "cooking",
             "photography", "sailing", "gardening"]


@dataclass
class SocialScale:
    """Size knobs for the social-graph generator."""

    persons: int = 500
    max_friends: int = 20
    max_likes: int = 5
    seed: int = 11


def social_graph(scale: SocialScale | None = None) -> Graph:
    """Generate a social graph honouring the degree bounds.

    Friendship is stored as two directed edges (both directions), so a
    single out-degree constraint covers traversal either way.
    """
    scale = scale or SocialScale()
    rng = random.Random(scale.seed)
    graph = Graph()
    for city in CITIES:
        graph.add_node(("city", city), "city")
    for interest in INTERESTS:
        graph.add_node(("interest", interest), "interest")
    for person in range(scale.persons):
        graph.add_node(("person", person), "person")

    friend_count = {p: 0 for p in range(scale.persons)}
    for person in range(scale.persons):
        graph.add_edge(("person", person), "lives_in",
                       ("city", rng.choice(CITIES)))
        for interest in rng.sample(INTERESTS,
                                   rng.randint(1, scale.max_likes)):
            graph.add_edge(("person", person), "likes",
                           ("interest", interest))
        # Friendships: preferential-attachment flavoured, capped.
        budget = rng.randint(0, scale.max_friends // 2)
        for _ in range(budget):
            other = rng.randrange(scale.persons)
            if other == person:
                continue
            if (friend_count[person] >= scale.max_friends
                    or friend_count[other] >= scale.max_friends):
                continue
            if graph.has_edge(("person", person), "friend",
                              ("person", other)):
                continue
            graph.add_edge(("person", person), "friend", ("person", other))
            graph.add_edge(("person", other), "friend", ("person", person))
            friend_count[person] += 1
            friend_count[other] += 1
    return graph


def social_access_schema(scale: SocialScale | None = None
                         ) -> GraphAccessSchema:
    """The access constraints the generated graph satisfies by design."""
    scale = scale or SocialScale()
    return GraphAccessSchema([
        LabelCountConstraint("city", len(CITIES)),
        LabelCountConstraint("interest", len(INTERESTS)),
        DegreeConstraint("friend", scale.max_friends, "out", "person"),
        DegreeConstraint("lives_in", 1, "out", "person"),
        DegreeConstraint("likes", scale.max_likes, "out", "person"),
    ])


def social_relational_schema() -> Schema:
    """The social graph as relations, for the bounded *relational*
    engine (edge lists per label)."""
    return Schema.from_dict({
        "Friend": ("src", "dst"),
        "LivesIn": ("person", "city"),
        "Likes": ("person", "interest"),
    })


def social_relational_access(scale: SocialScale | None = None,
                             schema: Schema | None = None) -> AccessSchema:
    """The relational reading of :func:`social_access_schema`."""
    scale = scale or SocialScale()
    schema = schema or social_relational_schema()
    return AccessSchema(schema, [
        AccessConstraint("Friend", ("src",), ("dst",), scale.max_friends),
        AccessConstraint("LivesIn", ("person",), ("city",), 1),
        AccessConstraint("Likes", ("person",), ("interest",),
                         scale.max_likes),
    ])


def relational_social(scale: SocialScale | None = None,
                      backend_factory: BackendFactory = None) -> Database:
    """The social graph of :func:`social_graph`, encoded relationally
    so the bounded engine (rather than the graph matcher) serves
    Graph-Search traffic.  ``backend_factory`` picks the storage
    engine, e.g. ``lambda s: ShardedBackend(s, shards=16)``.
    """
    scale = scale or SocialScale()
    graph = social_graph(scale)
    schema = social_relational_schema()
    db = Database(schema, social_relational_access(scale, schema),
                  backend=backend_factory(schema) if backend_factory
                  else None)
    friends, lives, likes = [], [], []
    for node in graph.nodes_by_label("person"):
        person = f"p{node[1]}"
        for other in graph.out_neighbors(node, "friend"):
            friends.append((person, f"p{other[1]}"))
        for city in graph.out_neighbors(node, "lives_in"):
            lives.append((person, city[1]))
        for interest in graph.out_neighbors(node, "likes"):
            likes.append((person, interest[1]))
    db.insert_many("Friend", friends)
    db.insert_many("LivesIn", lives)
    db.insert_many("Likes", likes)
    return db


def graph_search_pattern(me, city: str = "nyc",
                         interest: str = "cycling") -> Pattern:
    """"Find me all my friends in ``city`` who like ``interest``"."""
    return Pattern(
        "graph_search",
        nodes=[
            PatternNode("me", "person", constant=me),
            PatternNode("f", "person"),
            PatternNode("c", "city", constant=("city", city)),
            PatternNode("i", "interest", constant=("interest", interest)),
        ],
        edges=[
            PatternEdge("me", "friend", "f"),
            PatternEdge("f", "lives_in", "c"),
            PatternEdge("f", "likes", "i"),
        ],
        output=("f",),
    )


def random_pattern(rng: random.Random, scale: SocialScale,
                   name: str = "P") -> Pattern:
    """A random Graph-Search-flavoured pattern.

    A mix of shapes: some anchored at a designated person ("me"), some
    anchored only at a city/interest, some floating (person-to-person
    paths without any anchor — typically *not* boundedly evaluable,
    which is how the workload reproduces a ~60% coverage rate rather
    than 100%).
    """
    me = ("person", rng.randrange(scale.persons))
    nodes = [PatternNode("p0", "person",
                         constant=me if rng.random() < 0.6 else None)]
    edges = []
    length = rng.randint(1, 2)
    for i in range(length):
        nodes.append(PatternNode(f"p{i + 1}", "person"))
        edges.append(PatternEdge(f"p{i}", "friend", f"p{i + 1}"))
    tail = f"p{length}"
    if rng.random() < 0.5:
        nodes.append(PatternNode("c", "city",
                                 constant=("city", rng.choice(CITIES))))
        edges.append(PatternEdge(tail, "lives_in", "c"))
    if rng.random() < 0.5:
        nodes.append(PatternNode("i", "interest"))
        edges.append(PatternEdge(tail, "likes", "i"))
    output = (tail,)
    return Pattern(name, nodes, edges, output)


def generate_patterns(n: int, scale: SocialScale | None = None,
                      seed: int = 23) -> list[Pattern]:
    scale = scale or SocialScale()
    rng = random.Random(seed)
    return [random_pattern(rng, scale, name=f"P{i}") for i in range(n)]
