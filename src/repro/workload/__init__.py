"""Workload and data generators standing in for the paper's datasets.

Every generator takes a ``backend_factory`` hook picking the storage
engine the instance is built on; ``disk_backend_factory`` (re-exported
here) builds straight onto the durable engine::

    simple_accidents(scale, backend_factory=disk_backend_factory(path))
"""

from ..storage.disk import disk_backend_factory
from .accidents import (AccidentScale, canonical_access_schema,
                        extended_access_schema, extended_accidents,
                        extended_schema, simple_accidents, simple_schema)
from .qgen import (JoinEdge, WorkloadConfig, accident_workload_config,
                   generate_workload, random_cq)
from .social import (SocialScale, generate_patterns, graph_search_pattern,
                     random_pattern, relational_social,
                     social_access_schema, social_graph,
                     social_relational_access, social_relational_schema)

__all__ = [
    "disk_backend_factory",
    "AccidentScale", "simple_schema", "simple_accidents",
    "extended_schema", "extended_accidents", "canonical_access_schema",
    "extended_access_schema",
    "JoinEdge", "WorkloadConfig", "accident_workload_config",
    "random_cq", "generate_workload",
    "SocialScale", "social_graph", "social_access_schema",
    "social_relational_schema", "social_relational_access",
    "relational_social",
    "graph_search_pattern", "random_pattern", "generate_patterns",
]
