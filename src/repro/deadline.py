"""Per-request deadlines, threaded ambiently through the stack.

A :class:`Deadline` is an absolute point on the monotonic clock.  The
serving tier mints one per request (from the client's ``timeout_ms`` or
the server default) and every layer below — service, executor, fetch
boundary, procshard RPC — consults the *ambient* deadline rather than
growing a ``deadline=`` parameter on every signature:

    with deadline_scope(Deadline.after(0.250)):
        service.execute(query)

Inside the scope, ``current_deadline()`` returns the innermost active
deadline (scopes nest; the innermost wins even if an outer scope is
tighter — the caller who narrowed the scope asked for exactly that).
The ambient stack is thread-local, matching how requests execute: one
request per worker thread, so the scope entered on the request thread
is visible to everything that request calls.  Work handed to *other*
threads or processes must re-enter the scope explicitly — the procshard
coordinator does this by converting ``remaining()`` into a poll timeout
at the pipe, which is the only place a deadline crosses a process
boundary.

Checks are two-tier on purpose: ``expired()`` is a cheap predicate for
hot loops, ``check(where)`` raises :class:`DeadlineExceeded` tagged
with the abort site so partial-work counters and logs say *where* the
request died, not just that it did.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import monotonic
from typing import Iterator, Optional

from .errors import DeadlineExceeded

__all__ = [
    "Deadline",
    "DeadlineExceeded",
    "current_deadline",
    "deadline_scope",
]


class Deadline:
    """An absolute monotonic-clock cutoff for one request.

    Built from a relative budget via :meth:`after`; absolute so that
    nested layers each burn from the *same* budget instead of
    restarting it (the classic timeout-per-hop bug where five hops at
    1s each turn a 1s request budget into 5s of wall clock).
    """

    __slots__ = ("at",)

    def __init__(self, at: float):
        self.at = at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        """A deadline ``seconds`` from now on the monotonic clock."""
        return cls(monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds left; negative once expired (callers clamp)."""
        return self.at - monotonic()

    def expired(self) -> bool:
        return monotonic() >= self.at

    def check(self, where: str = "") -> None:
        """Raise :class:`DeadlineExceeded` tagged ``where`` if expired."""
        overrun = monotonic() - self.at
        if overrun >= 0:
            raise DeadlineExceeded(where, overrun_s=overrun)

    def timeout(self, cap: float) -> float:
        """The poll/wait timeout honouring both this deadline and a
        per-operation ``cap`` (e.g. the RPC timeout): whichever is
        sooner, floored at zero so an expired deadline polls
        non-blocking and fails fast instead of raising here."""
        left = self.at - monotonic()
        if left < 0.0:
            left = 0.0
        return left if left < cap else cap

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Deadline(remaining={self.remaining():.3f}s)"


class _Ambient(threading.local):
    def __init__(self) -> None:
        self.stack: list[Deadline] = []


_AMBIENT = _Ambient()


def current_deadline() -> Optional[Deadline]:
    """The innermost active deadline on this thread, or ``None``."""
    stack = _AMBIENT.stack
    return stack[-1] if stack else None


@contextmanager
def deadline_scope(deadline: Optional[Deadline]) -> Iterator[Optional[Deadline]]:
    """Make ``deadline`` ambient for the duration of the block.

    ``None`` is accepted and pushes nothing, so call sites can write
    ``with deadline_scope(maybe_deadline):`` without branching.
    """
    if deadline is None:
        yield None
        return
    stack = _AMBIENT.stack
    stack.append(deadline)
    try:
        yield deadline
    finally:
        stack.pop()
