"""A-satisfiability: does some instance with ``D |= A`` satisfy ``Q``?

Lemma 3.2 proves this NP-complete for CQ (contrast with plain
satisfiability, which is PTIME): the access constraints rule out some
valuations of the tableau, so one must search over the (exponentially
many, up to isomorphism) *A-instances* ``θ(T_Q)`` with ``θ(T_Q) |= A``.

The enumeration follows the NP upper-bound proof: guess a valuation of
the tableau.  Up to isomorphism a valuation is

* a partition of the tableau's variable units and named constants
  (constants pairwise separated), plus
* fresh pairwise-distinct values for the blocks containing no constant
  (:class:`FreshValue` — guaranteed disjoint from real data values).

Each candidate is materialized as a tiny :class:`Database` and checked
against ``A`` — including general constraints ``R(X→Y, s(·))``, whose
bound is evaluated at the candidate instance's size, which suffices: if
``θ(T_Q)`` satisfies ``A`` then a witnessing instance exists.

Fast paths: the chase's contradiction/pigeonhole detection (sound NO),
and a constraint-free shortcut (classically satisfiable ⇒ YES).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Iterable, Iterator

from .._util import constrained_partitions
from ..errors import QueryError
from ..query.ast import CQ, UCQ
from ..query.normalize import normalize_cq
from ..query.tableau import resolved_tableau
from ..query.terms import Const, Term, Var, is_const
from ..query.varclasses import analyze_variables
from ..schema.access import AccessSchema
from ..storage.database import Database
from .chase import chase
from .decision import Budget, Decision, no, unknown, yes


@dataclass(frozen=True)
class FreshValue:
    """A labelled null: a fresh domain value distinct from all constants
    and from every other :class:`FreshValue` with a different index."""

    index: int

    def __repr__(self) -> str:
        return f"⊥{self.index}"


@dataclass
class AInstance:
    """One A-instance ``θ(T_Q)`` of a query.

    ``db`` is the materialized instance, ``head_value`` is ``θ(u)``,
    ``valuation`` maps each resolved variable to its value.
    """

    db: Database
    head_value: tuple
    valuation: dict[Var, object]

    def __str__(self) -> str:
        pairs = ", ".join(f"{v.name}={val!r}"
                          for v, val in sorted(self.valuation.items(),
                                               key=lambda kv: kv[0].name))
        return f"AInstance(head={self.head_value!r}, {{{pairs}}})"


def a_instances(q: CQ, access_schema: AccessSchema,
                extra_constants: Iterable[Const] = (),
                budget: Budget | None = None,
                normalized: bool = False) -> Iterator[AInstance]:
    """Enumerate the A-instances of ``q`` up to isomorphism.

    ``extra_constants`` extends the named-constant pool (needed by
    A-containment: a variable of ``Q1`` may be mapped onto a constant
    that only appears in ``Q2``).  Stops silently when the budget runs
    out; callers that need to distinguish exhaustion use
    :func:`a_satisfiable` / the containment APIs, which surface UNKNOWN.
    """
    if not normalized:
        q = normalize_cq(q, access_schema.schema)
    analysis = analyze_variables(q)
    if not analysis.classically_satisfiable:
        return
    tableau = resolved_tableau(q, analysis)

    variables = sorted(tableau.variables(), key=lambda v: v.name)
    constants = sorted(tableau.constants() | set(extra_constants),
                       key=lambda c: repr(c.value))
    units: list[Term] = list(variables) + list(constants)
    separate = [(a, b) for a, b in itertools.combinations(constants, 2)]

    for partition in constrained_partitions(units, must_differ=separate):
        if budget is not None and not budget.spend():
            return
        value_of: dict[Term, object] = {}
        fresh_index = 0
        ok = True
        for block in partition:
            block_constants = [u for u in block if is_const(u)]
            if len(block_constants) > 1:
                ok = False
                break
            if block_constants:
                value = block_constants[0].value
            else:
                value = FreshValue(fresh_index)
                fresh_index += 1
            for unit in block:
                value_of[unit] = value
        if not ok:
            continue

        db = Database(access_schema.schema)
        for row in tableau.rows:
            db.insert(row.relation, tuple(
                term.value if is_const(term) else value_of[term]
                for term in row.terms))
        if not db.satisfies(access_schema):
            continue
        head_value = tuple(
            term.value if is_const(term) else value_of[term]
            for term in tableau.summary)
        valuation = {v: value_of[v] for v in variables}
        yield AInstance(db=db, head_value=head_value, valuation=valuation)


def a_satisfiable(q, access_schema: AccessSchema,
                  budget: Budget | None = None) -> Decision:
    """Decide A-satisfiability (Lemma 3.2) for a CQ or UCQ.

    Exact within the enumeration budget; UNKNOWN if the budget runs out
    before a witness is found.
    """
    if isinstance(q, UCQ):
        saw_unknown = False
        for disjunct in q.disjuncts:
            decision = a_satisfiable(disjunct, access_schema, budget)
            if decision.is_yes:
                return decision
            if decision.is_unknown:
                saw_unknown = True
        if saw_unknown:
            return unknown("enumeration budget exhausted before a witness")
        return no(f"no disjunct of {q.name} is A-satisfiable")
    if not isinstance(q, CQ):
        raise QueryError(f"a_satisfiable expects CQ or UCQ, got {type(q).__name__}")

    q = normalize_cq(q, access_schema.schema)
    analysis = analyze_variables(q)
    if not analysis.classically_satisfiable:
        return no(f"{q.name} is classically unsatisfiable")

    # Sound fast path: chase contradiction / pigeonhole.
    chased = chase(q, access_schema, normalized=True)
    if chased.unsatisfiable:
        return no(f"{q.name} is A-unsatisfiable: {chased.steps[-1]}",
                  details={"chase_steps": chased.steps})

    if len(access_schema) == 0:
        witness = next(a_instances(q, access_schema, normalized=True), None)
        return yes("no access constraints: the canonical instance works",
                   witness=witness)

    budget = budget or Budget()
    for instance in a_instances(q, access_schema, budget=budget,
                                normalized=True):
        return yes(f"{q.name} has an A-instance", witness=instance)
    if budget.exhausted:
        return unknown("enumeration budget exhausted before a witness")
    return no(f"{q.name} has no A-instance: every valuation of its "
              "tableau violates some access constraint")
