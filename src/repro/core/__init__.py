"""The paper's decision procedures: coverage, BEP, CQP, UEP, LEP, QSP."""

from .bep import is_boundedly_evaluable, is_covered
from .chase import ChaseResult, chase, chase_and_core, core_of
from .containment import a_contained, a_equivalent
from .coverage import (AtomIndexWitness, ConstraintApplication,
                       CoverageResult, analyze_coverage, covered_disjuncts,
                       covered_variables, is_bounded_cq, is_covered_cq)
from .decision import Budget, Decision, Verdict, no, unknown, yes
from .envelopes import (Envelope, answer_count_bound, lower_envelope,
                        upper_envelope)
from .satisfiability import AInstance, FreshValue, a_instances, a_satisfiable
from .specialization import (all_parameters, can_boundedly_specialize,
                             fully_parameterized_specialization,
                             specialization_is_covered, specialize_minimally)

__all__ = [
    "Decision", "Verdict", "Budget", "yes", "no", "unknown",
    "analyze_coverage", "covered_variables", "is_covered_cq",
    "is_bounded_cq", "covered_disjuncts", "CoverageResult",
    "ConstraintApplication", "AtomIndexWitness",
    "chase", "chase_and_core", "core_of", "ChaseResult",
    "a_satisfiable", "a_instances", "AInstance", "FreshValue",
    "a_contained", "a_equivalent",
    "is_boundedly_evaluable", "is_covered",
    "upper_envelope", "lower_envelope", "Envelope", "answer_count_bound",
    "specialize_minimally", "can_boundedly_specialize",
    "specialization_is_covered", "fully_parameterized_specialization",
    "all_parameters",
]
