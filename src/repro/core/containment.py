"""A-containment and A-equivalence (Lemma 3.3).

``Q1 ⊑A Q2`` holds iff for every instance ``D |= A``,
``Q1(D) ⊆ Q2(D)``.  Lemma 3.3 characterizes it: either ``Q1`` is not
A-satisfiable, or every A-instance ``θ(T_Q1)`` satisfies
``θ(u) ∈ Q2(θ(T_Q1))`` — a departure from the classical Homomorphism
Theorem, where a single canonical instance suffices.  The presence of
access constraints pushes the complexity from NP-complete to
Πp2-complete, which shows up here as: enumerate all A-instances (the ∀
layer), and evaluate ``Q2`` on each (the NP layer, delegated to the
naive evaluator).

Example 3.5's failure of the Sagiv–Yannakakis union lemma under ``A``
is handled for free: for UCQ right-hand sides we check membership in
the *union's* answer, never per-disjunct.

Fast paths: classical containment (sound, Homomorphism Theorem) and
chase-based unsatisfiability of ``Q1``.
"""

from __future__ import annotations


from ..errors import QueryError
from ..query.ast import CQ, UCQ
from ..query.normalize import as_ucq, normalize_cq
from ..query.terms import Const
from ..schema.access import AccessSchema
from ..engine.naive import evaluate
from .chase import chase
from .decision import Budget, Decision, no, unknown, yes
from .satisfiability import a_instances


def _named_constants(query) -> set[Const]:
    if isinstance(query, CQ):
        return query.constants()
    if isinstance(query, UCQ):
        constants: set[Const] = set()
        for disjunct in query.disjuncts:
            constants |= disjunct.constants()
        return constants
    raise QueryError(f"expected CQ or UCQ, got {type(query).__name__}")


def a_contained(q1, q2, access_schema: AccessSchema,
                budget: Budget | None = None) -> Decision:
    """Decide ``Q1 ⊑A Q2`` for CQ/UCQ inputs (Lemma 3.3).

    Exact within the enumeration budget.  The witness of a NO decision
    is the counterexample A-instance (whose ``head_value`` lies in
    ``Q1`` but not ``Q2``).
    """
    schema = access_schema.schema
    left = as_ucq(q1, schema)
    right = as_ucq(q2, schema)
    if left.arity != right.arity:
        return no(f"arity mismatch: {left.arity} vs {right.arity}")

    budget = budget or Budget()
    extra = _named_constants(left) | _named_constants(right)
    saw_unknown = False

    for disjunct in left.disjuncts:
        disjunct = normalize_cq(disjunct, schema)
        # Fast path 1: disjunct A-unsatisfiable => contained trivially.
        if chase(disjunct, access_schema, normalized=True).unsatisfiable:
            continue
        # Fast path 2: classical containment in some right disjunct is
        # sound for A-containment (fewer instances to rule out).
        from ..query.tableau import classically_contained
        if any(classically_contained(disjunct, rd)
               for rd in right.disjuncts):
            continue

        exhausted = True
        for instance in a_instances(disjunct, access_schema,
                                    extra_constants=extra, budget=budget,
                                    normalized=True):
            answers = evaluate(right, instance.db)
            if instance.head_value not in answers:
                return no(
                    f"counterexample: A-instance of {disjunct.name} whose "
                    f"head value {instance.head_value!r} is not in "
                    f"{right.name}", witness=instance)
        if budget.exhausted:
            saw_unknown = True

    if saw_unknown:
        return unknown("enumeration budget exhausted; containment holds on "
                       "all A-instances examined")
    return yes(f"{left.name} is A-contained in {right.name}")


def a_equivalent(q1, q2, access_schema: AccessSchema,
                 budget: Budget | None = None) -> Decision:
    """Decide ``Q1 ≡A Q2``: mutual A-containment (Lemma 3.3(2))."""
    forward = a_contained(q1, q2, access_schema, budget)
    if not forward.is_yes:
        if forward.is_no:
            return no(f"not A-equivalent: {forward.reason}",
                      witness=forward.witness)
        return forward
    backward = a_contained(q2, q1, access_schema, budget)
    if not backward.is_yes:
        if backward.is_no:
            return no(f"not A-equivalent: {backward.reason}",
                      witness=backward.witness)
        return backward
    return yes("A-equivalent (mutual A-containment)")
