"""BEP — the bounded evaluability problem (Section 3).

``is_boundedly_evaluable(Q, A)`` decides whether ``Q`` has a boundedly
evaluable query plan under ``A``.  The paper proves BEP
EXPSPACE-complete for CQ/UCQ/∃FO+ (Theorem 3.4, Corollary 3.7) and
undecidable for FO [17], so no implementation can be both fast and
complete.  This one is the pipeline of DESIGN.md (S10):

1. **covered?** (PTIME, Theorem 3.11(2)) — YES with a constructed plan;
2. **A-unsatisfiable?** — YES with the empty plan (Example 3.1(2));
3. **chase + core rewriting** (A-equivalence preserving) — if the
   rewriting is covered, YES with its plan (Example 3.1(3));
4. otherwise **NO** — sound on every worked example in the paper and on
   the generated workloads, but heuristic in general (the ``details``
   carry ``complete: False`` and the coverage diagnosis).

For UCQ/∃FO+ the procedure follows Lemma 3.6 and the general covered
definition of Section 3.2: a CQ sub-query need not itself be bounded if
all its A-instances are answered by *other, covered* sub-queries
(Example 3.5's second half).  For FO it returns UNKNOWN unless the body
is positive (Table 1: undecidable).

``is_covered`` is the companion CQP procedure: PTIME for CQ
(Theorem 3.14), Πp2-style enumeration for UCQ/∃FO+.
"""

from __future__ import annotations

from typing import Iterable

from ..engine.builder import (build_bounded_plan, build_empty_plan,
                              build_union_plan)
from ..engine.naive import evaluate
from ..errors import QueryError
from ..obs.trace import span
from ..query.ast import CQ, UCQ, FOQuery, PositiveQuery
from ..query.normalize import as_ucq, normalize_cq
from ..query.terms import Var
from ..schema.access import AccessSchema
from .chase import chase_and_core
from .coverage import CoverageResult, analyze_coverage
from .decision import Budget, Decision, no, unknown, yes
from .satisfiability import a_instances, a_satisfiable


def _cq_bounded(q: CQ, access_schema: AccessSchema,
                budget: Budget | None = None) -> Decision:
    """The CQ pipeline; witness is a dict with the plan and rewriting."""
    q = normalize_cq(q, access_schema.schema)
    coverage = analyze_coverage(q, access_schema, normalized=True)
    if coverage.is_covered:
        plan = build_bounded_plan(coverage)
        return yes(f"{q.name} is covered by A (Theorem 3.11(2))",
                   witness={"plan": plan, "query": q, "coverage": coverage},
                   method="covered")

    sat = a_satisfiable(q, access_schema, budget)
    if sat.is_no:
        plan = build_empty_plan(q.arity, name=f"empty[{q.name}]")
        return yes(f"{q.name} is not A-satisfiable; the empty plan answers "
                   "it (Example 3.1(2))",
                   witness={"plan": plan, "query": q, "coverage": None},
                   method="unsatisfiable")

    rewritten = chase_and_core(q, access_schema, normalized=True)
    if rewritten.unsatisfiable:
        plan = build_empty_plan(q.arity, name=f"empty[{q.name}]")
        return yes(f"{q.name} is A-unsatisfiable by the chase",
                   witness={"plan": plan, "query": q, "coverage": None},
                   method="unsatisfiable")
    if rewritten.changed:
        coverage2 = analyze_coverage(rewritten.query, access_schema)
        if coverage2.is_covered:
            plan = build_bounded_plan(coverage2)
            return yes(
                f"{q.name} is A-equivalent to the covered query "
                f"{rewritten.query} (chase + core; Theorem 3.11(1))",
                witness={"plan": plan, "query": rewritten.query,
                         "coverage": coverage2},
                method="rewriting", chase_steps=rewritten.steps)

    diagnosis = coverage.decision().reason
    return no(f"no covered A-equivalent rewriting found for {q.name}: "
              f"{diagnosis}",
              witness={"coverage": coverage},
              complete=False, method="chase+core+coverage")


def _subsumed_by_covered(disjunct: CQ, covered_plans: list[CoverageResult],
                         access_schema: AccessSchema,
                         budget: Budget) -> Decision:
    """Check the general covered condition (Section 3.2, ∃FO+ case):
    every A-instance ``θ(T)`` of ``disjunct`` has ``θ(u)`` answered by
    some covered sub-query."""
    if not covered_plans:
        return no("no covered sub-queries available to subsume it")
    union = UCQ("covered_part", [c.query for c in covered_plans])
    extra = disjunct.constants()
    for coverage in covered_plans:
        extra |= coverage.query.constants()
    for instance in a_instances(disjunct, access_schema,
                                extra_constants=extra, budget=budget):
        answers = evaluate(union, instance.db)
        if instance.head_value not in answers:
            return no(f"A-instance of {disjunct.name} not answered by the "
                      "covered sub-queries", witness=instance)
    if budget.exhausted:
        return unknown("budget exhausted during subsumption check")
    return yes(f"every A-instance of {disjunct.name} is answered by "
               "covered sub-queries")


def _ucq_bounded(q: UCQ, access_schema: AccessSchema,
                 budget: Budget | None = None) -> Decision:
    """Lemma 3.6: Q is boundedly evaluable iff it is A-equivalent to a
    union of boundedly evaluable CQs."""
    budget = budget or Budget()
    schema = access_schema.schema
    covered_results: list[CoverageResult] = []
    pending: list[tuple[CQ, Decision]] = []
    notes: list[str] = []
    # True when a disjunct carrying $param placeholders was dropped by
    # reasoning that treats placeholders as pairwise-distinct constants
    # (A-unsatisfiability, subsumption): the verdict then holds for that
    # reading only, and a binding equating placeholder values can make
    # the dropped disjunct contribute answers.  Consumers serving
    # parameterized queries (repro.service) must not reuse the plan
    # across bindings in that case.
    value_dependent = False

    for disjunct in q.disjuncts:
        decision = _cq_bounded(disjunct, access_schema, budget)
        if decision.is_yes:
            if decision.details.get("method") == "unsatisfiable":
                notes.append(f"{disjunct.name}: A-unsatisfiable, dropped")
                if disjunct.parameters():
                    value_dependent = True
                continue
            covered_results.append(decision.witness["coverage"])
            notes.append(f"{disjunct.name}: bounded "
                         f"({decision.details.get('method')})")
        else:
            pending.append((normalize_cq(disjunct, schema), decision))

    unknown_seen = False
    for disjunct, original_decision in pending:
        subsumed = _subsumed_by_covered(disjunct, covered_results,
                                        access_schema, budget)
        if subsumed.is_yes:
            notes.append(f"{disjunct.name}: subsumed by covered sub-queries "
                         "(Example 3.5 pattern)")
            if disjunct.parameters():
                value_dependent = True
            continue
        if subsumed.is_unknown:
            unknown_seen = True
            continue
        return no(f"sub-query {disjunct.name} is neither bounded nor "
                  f"subsumed: {original_decision.reason}",
                  complete=False, notes=notes)

    if unknown_seen:
        return unknown("budget exhausted while checking sub-query "
                       "subsumption", notes=notes)
    if not covered_results:
        plan = build_empty_plan(q.arity, name=f"empty[{q.name}]")
        return yes(f"every sub-query of {q.name} is A-unsatisfiable",
                   witness={"plan": plan, "queries": []}, notes=notes,
                   method="unsatisfiable")
    plan = build_union_plan(covered_results, name=f"bounded[{q.name}]")
    return yes(f"{q.name} is A-equivalent to a union of covered CQs "
               "(Lemma 3.6)",
               witness={"plan": plan,
                        "queries": [c.query for c in covered_results]},
               notes=notes, value_dependent=value_dependent)


def is_boundedly_evaluable(query, access_schema: AccessSchema,
                           budget: Budget | None = None) -> Decision:
    """BEP for CQ, UCQ, ∃FO+ and (positively-bodied) FO queries.

    A YES decision carries a ready-to-execute bounded plan in
    ``decision.witness["plan"]``.
    """
    with span("bep_decision"):
        if isinstance(query, CQ):
            return _cq_bounded(query, access_schema, budget)
        if isinstance(query, UCQ):
            return _ucq_bounded(query, access_schema, budget)
        if isinstance(query, PositiveQuery):
            return _ucq_bounded(as_ucq(query, access_schema.schema),
                                access_schema, budget)
        if isinstance(query, FOQuery):
            if query.is_positive():
                positive = PositiveQuery(query.name, query.head, query.body)
                return is_boundedly_evaluable(positive, access_schema,
                                              budget)
            return unknown(
                "BEP is undecidable for FO (Table 1, [17]); this query "
                "uses negation or universal quantification")
        raise QueryError(f"cannot analyse {type(query).__name__}")


def is_covered(query, access_schema: AccessSchema,
               budget: Budget | None = None,
               extra_constants: Iterable[Var] = ()) -> Decision:
    """CQP — the covered query problem (Theorem 3.14).

    * CQ: the PTIME syntactic check of Section 3.2.
    * UCQ/∃FO+: the general definition — each CQ sub-query is covered,
      or all of its A-instances are answered by covered sub-queries
      (Πp2-style enumeration, exact within the budget).
    """
    if isinstance(query, CQ):
        return analyze_coverage(query, access_schema,
                                extra_constants=extra_constants).decision()
    if isinstance(query, PositiveQuery):
        query = as_ucq(query, access_schema.schema)
    if not isinstance(query, UCQ):
        raise QueryError(
            f"is_covered expects CQ/UCQ/PositiveQuery, got "
            f"{type(query).__name__} (the paper does not define covered "
            "queries for full FO)")

    budget = budget or Budget()
    covered_results: list[CoverageResult] = []
    uncovered: list[CQ] = []
    for disjunct in query.disjuncts:
        coverage = analyze_coverage(disjunct, access_schema,
                                    extra_constants=extra_constants)
        if coverage.is_covered:
            covered_results.append(coverage)
        else:
            uncovered.append(coverage.query)

    unknown_seen = False
    for disjunct in uncovered:
        subsumed = _subsumed_by_covered(disjunct, covered_results,
                                        access_schema, budget)
        if subsumed.is_no:
            return no(f"sub-query {disjunct.name} is not covered and not "
                      f"subsumed by covered sub-queries: {subsumed.reason}",
                      witness=subsumed.witness)
        if subsumed.is_unknown:
            unknown_seen = True
    if unknown_seen:
        return unknown("budget exhausted during the subsumption check")
    return yes(f"{query.name} is covered by A",
               witness={"covered": [c.query for c in covered_results]})
