"""Chasing CQs with the functional fragment of an access schema.

An ``N = 1`` access constraint ``R(X -> Y, 1)`` is a functional
dependency: on any instance satisfying ``A``, two tuples agreeing on
``X`` agree on ``Y``.  Chasing a query's tableau with these FDs derives
the equalities that *must* hold in every A-instance — the engine behind
Example 3.1's subtleties:

* Example 3.1(2): ``ϕ3 = R2(A → B, 1)`` forces ``x1 = x2`` in ``Q2``,
  contradicting ``x1 = 1 ∧ x2 = 2`` — the chase reports
  **A-unsatisfiable**, so ``Q2`` is answered by the empty plan.
* Example 3.1(3): ``ϕ4 = R3(∅ → C, 1)`` equates ``x, y, z3``; the atom
  ``R3(z1, z2, y)`` then folds into ``R3(1, 1, x)`` during core
  minimization, producing the covered query ``Q'3``.

The chase preserves A-equivalence (every derived equality holds on all
instances satisfying ``A``); core minimization preserves classical
equivalence, hence also A-equivalence.  Together they form the rewriting
step of the BEP pipeline (DESIGN.md, S10).

A pigeonhole fast path extends unsatisfiability detection to ``N ≥ 2``:
if more than ``N`` pairwise-distinct constant ``Y``-values share one
``X``-value, no instance can satisfy the constraint.  (Completeness of
A-satisfiability is the job of ``repro.core.satisfiability``.)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from .._util import UnionFind, stable_unique
from ..query.ast import CQ, Atom, Equality
from ..query.normalize import normalize_cq
from ..query.tableau import core_tableau, resolved_tableau, tableau_to_cq
from ..query.terms import Const, Term, Var, is_const
from ..query.varclasses import analyze_variables
from ..schema.access import AccessSchema


@dataclass
class ChaseResult:
    """Outcome of chasing one CQ."""

    original: CQ
    query: CQ
    unsatisfiable: bool = False
    steps: list[str] = field(default_factory=list)

    @property
    def changed(self) -> bool:
        return bool(self.steps) or self.unsatisfiable


class _ChaseState:
    """Union-find over variables plus constant pinning."""

    def __init__(self, variables: Iterable[Var]):
        self.uf = UnionFind(variables)
        self.pin: dict[Var, Const] = {}
        self.unsatisfiable = False

    def resolve(self, term: Term) -> Term:
        if is_const(term):
            return term
        root = self.uf.find(term)
        return self.pin.get(root, root)

    def equate(self, a: Term, b: Term) -> bool:
        """Merge two resolved terms; returns True when anything changed."""
        a, b = self.resolve(a), self.resolve(b)
        if a == b:
            return False
        if is_const(a) and is_const(b):
            self.unsatisfiable = True
            return True
        if is_const(a):
            a, b = b, a
        # a is a variable root now.
        if is_const(b):
            self.pin[self.uf.find(a)] = b
            return True
        root_a, root_b = self.uf.find(a), self.uf.find(b)
        pin_a, pin_b = self.pin.get(root_a), self.pin.get(root_b)
        new_root = self.uf.union(root_a, root_b)
        if pin_a is not None and pin_b is not None and pin_a != pin_b:
            self.unsatisfiable = True
            return True
        survivor = pin_a if pin_a is not None else pin_b
        for stale in (root_a, root_b):
            self.pin.pop(stale, None)
        if survivor is not None:
            self.pin[new_root] = survivor
        return True


def chase(q: CQ, access_schema: AccessSchema,
          normalized: bool = False) -> ChaseResult:
    """Chase ``q`` with the FD fragment of ``A``; detect unsatisfiability.

    Returns an A-equivalent query in which all forced equalities are
    applied, or the original query flagged ``unsatisfiable``.
    """
    if not normalized:
        q = normalize_cq(q, access_schema.schema)
    analysis = analyze_variables(q)
    if not analysis.classically_satisfiable:
        return ChaseResult(q, q, unsatisfiable=True,
                           steps=["classically unsatisfiable"])

    state = _ChaseState(q.variables())
    for equality in q.equalities:
        state.equate(equality.left, equality.right)
        if state.unsatisfiable:
            return ChaseResult(q, q, unsatisfiable=True,
                               steps=["contradictory equalities"])

    schema = access_schema.schema
    steps: list[str] = []
    fds = access_schema.functional_constraints()
    changed = True
    while changed and not state.unsatisfiable:
        changed = False
        for constraint in fds:
            relation = schema.relation(constraint.relation_name)
            x_positions = constraint.x_positions(relation)
            y_positions = constraint.y_positions(relation)
            groups: dict[tuple, list[Atom]] = {}
            for atom in q.atoms:
                if atom.relation != constraint.relation_name:
                    continue
                key = tuple(state.resolve(atom.terms[p]) for p in x_positions)
                groups.setdefault(key, []).append(atom)
            for key, members in groups.items():
                if len(members) < 2:
                    continue
                leader = members[0]
                for follower in members[1:]:
                    for position in y_positions:
                        if state.equate(leader.terms[position],
                                        follower.terms[position]):
                            changed = True
                            steps.append(
                                f"{constraint}: {leader} and {follower} "
                                f"agree on X, equate position {position}")
                        if state.unsatisfiable:
                            return ChaseResult(
                                q, q, unsatisfiable=True,
                                steps=steps + ["constant clash during chase"])

    # Pigeonhole unsatisfiability for N >= 2 (constant-cardinality only:
    # a non-constant bound can always be outgrown by a larger instance).
    for constraint in access_schema:
        if not constraint.is_constant:
            continue
        limit = constraint.bound(0)
        relation = schema.relation(constraint.relation_name)
        x_positions = constraint.x_positions(relation)
        y_positions = constraint.y_positions(relation)
        groups: dict[tuple, set[tuple]] = {}
        for atom in q.atoms:
            if atom.relation != constraint.relation_name:
                continue
            key = tuple(state.resolve(atom.terms[p]) for p in x_positions)
            y_value = tuple(state.resolve(atom.terms[p]) for p in y_positions)
            if all(is_const(t) for t in y_value):
                groups.setdefault(key, set()).add(y_value)
        for key, y_values in groups.items():
            if len(y_values) > limit:
                steps.append(
                    f"pigeonhole: {len(y_values)} distinct constant "
                    f"Y-values under one X-value exceed {constraint}")
                return ChaseResult(q, q, unsatisfiable=True, steps=steps)

    if not steps:
        return ChaseResult(q, q)
    return ChaseResult(q, _rebuild(q, state), steps=steps)


def _rebuild(q: CQ, state: _ChaseState) -> CQ:
    """Materialize the chase state as a normalized CQ."""
    mapping: dict[Term, Term] = {}
    for var in q.variables():
        mapping[var] = state.uf.find(var)
    atoms = stable_unique(a.substitute(mapping) for a in q.atoms)
    head = [mapping[v] for v in q.head]
    needed_roots = set(head)
    for atom in atoms:
        needed_roots.update(atom.variables())
    equalities = []
    emitted: set[Var] = set()
    for root, const in sorted(state.pin.items(), key=lambda kv: kv[0].name):
        if root in needed_roots and root not in emitted:
            equalities.append(Equality(root, const))
            emitted.add(root)
    return CQ(q.name, head, atoms, equalities)


def core_of(q: CQ) -> CQ:
    """Classical core of a CQ (fold redundant atoms; Homomorphism
    Theorem [13]).  Classical equivalence implies A-equivalence, so this
    is always a sound minimization step."""
    analysis = analyze_variables(q)
    if not analysis.classically_satisfiable:
        return q
    tableau = resolved_tableau(q, analysis)
    minimized = core_tableau(tableau)
    if len(minimized.rows) == len(tableau.rows):
        return q
    return tableau_to_cq(minimized, name=q.name)


def chase_and_core(q: CQ, access_schema: AccessSchema,
                   normalized: bool = False) -> ChaseResult:
    """The BEP rewriting pipeline: chase with A's FDs, then minimize.

    The result is A-equivalent to ``q``; when it is covered, ``q`` is
    boundedly evaluable (Theorem 3.11(1) direction "if").
    """
    result = chase(q, access_schema, normalized=normalized)
    if result.unsatisfiable:
        return result
    minimized = core_of(result.query)
    if minimized is not result.query:
        result.steps.append(
            f"core minimization: {len(result.query.atoms)} -> "
            f"{len(minimized.atoms)} atoms")
        result.query = minimized
    return result
