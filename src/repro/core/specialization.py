"""Bounded query specialization — QSP (Section 5).

A parameterized query ``Q`` with parameter set ``X`` can be *boundedly
specialized* with ``x̄ ⊆ X`` when (a) ``Q(x̄ = c̄)`` is boundedly
evaluable for **all** valuations ``c̄``, and (b) at least one valuation
keeps it A-satisfiable.  QSP asks for such an ``x̄`` with ``|x̄| ≤ k``
(NP-complete for CQ, Πp2-complete for UCQ/∃FO+, undecidable for FO —
Theorem 5.3).

Key implementation fact: instantiating a parameter turns it into a
*constant variable*, and the coverage analysis of Section 3.2 does not
depend on which constant is used — only on which variables are pinned.
So "covered for all valuations" reduces to one coverage check with the
chosen parameters marked as extra constants
(``repro.core.coverage.covered_variables``'s ``extra_constants``), and
the search over parameter subsets is exact.  (A coincidental valuation —
a user choosing a constant already in ``Q`` — only merges more eq+
classes and makes coverage easier, never breaks it.)

For UCQ/∃FO+ the specialized query must be covered; we use the
per-sub-query notion the paper itself offers as the tractable
alternative in Section 3.2 ("one can define a query in ∃FO+ to be
covered if each of its CQ sub-queries is covered"), which keeps the
check sound for bounded evaluability.

Condition (b) uses the lemma from the proof of Theorem 5.3: if ``Q`` is
A-satisfiable then for every parameter tuple some valuation keeps the
specialization A-satisfiable — so it suffices to check ``Q`` itself.

Proposition 5.4: when ``A`` *covers* the relational schema (every
relation has a constraint with ``X ∪ Y`` spanning all attributes),
every fully parameterized FO query can be boundedly specialized;
:func:`fully_parameterized_specialization` is the constructive version.
"""

from __future__ import annotations

import itertools
from typing import Iterable, Sequence

from ..errors import QueryError
from ..query.ast import CQ, UCQ, FOQuery, PositiveQuery
from ..query.normalize import as_ucq, normalize_cq
from ..query.terms import Var
from ..schema.access import AccessSchema
from .coverage import analyze_coverage
from .decision import Budget, Decision, no, unknown, yes
from .satisfiability import a_satisfiable


def _disjuncts_of(query, schema) -> list[CQ]:
    if isinstance(query, CQ):
        return [normalize_cq(query, schema)]
    if isinstance(query, (UCQ, PositiveQuery)):
        return [normalize_cq(d, schema) for d in as_ucq(query, schema)]
    raise QueryError(f"QSP expects CQ/UCQ/PositiveQuery, got "
                     f"{type(query).__name__}")


def specialization_is_covered(query, access_schema: AccessSchema,
                              parameters: Sequence[Var]) -> bool:
    """Is ``Q(x̄ = c̄)`` covered for all valuations ``c̄`` of ``x̄``?

    Valuation-independent: the parameters are treated as constant
    variables in the coverage analysis.
    """
    disjuncts = _disjuncts_of(query, access_schema.schema)
    return all(
        analyze_coverage(d, access_schema, extra_constants=parameters,
                         normalized=True).is_covered
        for d in disjuncts
    )


def all_parameters(query) -> tuple[Var, ...]:
    """Every variable of the query, as the default parameter set
    ("fully parameterized", Section 5)."""
    if isinstance(query, CQ):
        return tuple(sorted(query.variables(), key=lambda v: v.name))
    if isinstance(query, (UCQ, PositiveQuery)):
        names: set[Var] = set()
        query = query if isinstance(query, UCQ) else as_ucq(query)
        for disjunct in query:
            names |= disjunct.variables()
        return tuple(sorted(names, key=lambda v: v.name))
    if isinstance(query, FOQuery):
        return tuple(sorted(query.body.all_variables() | set(query.head),
                            key=lambda v: v.name))
    raise QueryError(f"unsupported query type {type(query).__name__}")


def specialize_minimally(query, access_schema: AccessSchema,
                         parameters: Iterable[Var] | None = None,
                         k: int | None = None,
                         budget: Budget | None = None) -> Decision:
    """QSP: find a smallest parameter tuple making ``Q`` covered.

    ``parameters`` defaults to all variables; ``k`` caps the tuple size
    (defaults to the full parameter count).  A YES decision's witness is
    the parameter tuple; its details carry the per-size search trace.
    """
    if isinstance(query, FOQuery):
        if query.is_positive():
            query = PositiveQuery(query.name, query.head, query.body)
        else:
            return unknown(
                "QSP is undecidable for FO (Theorem 5.3); this query uses "
                "negation or universal quantification.  If A covers the "
                "schema and the query is fully parameterized, use "
                "fully_parameterized_specialization (Proposition 5.4)")

    schema = access_schema.schema
    budget = budget or Budget()
    disjuncts = _disjuncts_of(query, schema)
    if parameters is None:
        params = list(all_parameters(query))
    else:
        params = list(dict.fromkeys(parameters))
        variables: set[Var] = set()
        for disjunct in disjuncts:
            variables |= disjunct.variables()
        for parameter in params:
            if parameter not in variables:
                raise QueryError(
                    f"parameter {parameter} does not occur in the query")
    limit = len(params) if k is None else min(k, len(params))

    # Condition (b): Q itself must be A-satisfiable; then some valuation
    # keeps every specialization A-satisfiable (proof of Theorem 5.3).
    sat = a_satisfiable(
        query if isinstance(query, (CQ, UCQ)) else as_ucq(query, schema),
        access_schema, budget)
    if sat.is_no:
        return no(f"{getattr(query, 'name', 'Q')} is not A-satisfiable; "
                  "no specialization is sensible (condition (b))")

    tried = 0
    for size in range(0, limit + 1):
        for subset in itertools.combinations(params, size):
            tried += 1
            if not budget.spend():
                return unknown("budget exhausted during the parameter "
                               f"search after {tried} subsets")
            if specialization_is_covered(query, access_schema, subset):
                reason = (f"instantiating {size} parameter(s) "
                          f"({', '.join(v.name for v in subset)}) makes "
                          "every specialization covered"
                          if subset else
                          "the query is already covered with no "
                          "instantiation")
                return yes(reason, witness=tuple(subset),
                           subsets_tried=tried,
                           satisfiability=sat.verdict.value)
    return no(f"no parameter tuple of size <= {limit} from "
              f"{{{', '.join(v.name for v in params)}}} yields a covered "
              "specialization", subsets_tried=tried)


def can_boundedly_specialize(query, access_schema: AccessSchema,
                             parameters: Sequence[Var], k: int,
                             budget: Budget | None = None) -> Decision:
    """The QSP decision problem verbatim: is there ``x̄ ⊆ X``, ``|x̄| ≤ k``?"""
    return specialize_minimally(query, access_schema, parameters, k, budget)


def fully_parameterized_specialization(query, access_schema: AccessSchema
                                       ) -> Decision:
    """Proposition 5.4, constructively.

    When ``A`` covers the relational schema, a fully parameterized FO
    query is boundedly specialized by instantiating **all** its
    variables: every relation atom's membership is then checkable
    through the covering constraint's index, and the remaining formula
    is a Boolean combination of those checks.  The witness is the
    variable tuple to instantiate.
    """
    if not access_schema.covers_schema():
        missing = [name for name in access_schema.schema.relation_names()
                   if not access_schema.covers_relation(name)]
        return no("A does not cover the schema: relations without a "
                  f"spanning constraint: {', '.join(missing)} "
                  "(Proposition 5.4 precondition)")
    parameters = all_parameters(query)
    return yes("A covers the schema; instantiating all "
               f"{len(parameters)} variables yields a boundedly "
               "evaluable specialization (Proposition 5.4)",
               witness=parameters)
