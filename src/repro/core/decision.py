"""Tri-state decisions with explanations and witnesses.

The paper's decision problems range from PTIME to undecidable
(Table 1).  Every analysis entry point in :mod:`repro.core` therefore
returns a :class:`Decision`:

* ``YES`` / ``NO`` — definite answers, with a ``witness`` where one
  exists (a bounded plan, a covered rewriting, an envelope, a parameter
  tuple, a counterexample A-instance, ...);
* ``UNKNOWN`` — only where completeness is provably out of reach
  (FO undecidability) or an enumeration budget was exhausted; the
  ``reason`` says which.

``Decision`` is truthy exactly when the verdict is ``YES``, so simple
callers can write ``if is_covered(q, a): ...``.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any


class Verdict(enum.Enum):
    YES = "yes"
    NO = "no"
    UNKNOWN = "unknown"

    def __str__(self) -> str:
        return self.value


@dataclass
class Decision:
    """Outcome of one decision procedure."""

    verdict: Verdict
    reason: str = ""
    #: Constructive evidence: plan, rewriting, envelope, parameters, ...
    witness: Any = None
    #: Free-form diagnostics (e.g. uncovered variables, failing atoms).
    details: dict = field(default_factory=dict)

    def __bool__(self) -> bool:
        return self.verdict is Verdict.YES

    @property
    def is_yes(self) -> bool:
        return self.verdict is Verdict.YES

    @property
    def is_no(self) -> bool:
        return self.verdict is Verdict.NO

    @property
    def is_unknown(self) -> bool:
        return self.verdict is Verdict.UNKNOWN

    def explain(self) -> str:
        return f"{self.verdict}: {self.reason}" if self.reason else str(self.verdict)

    def __str__(self) -> str:
        return self.explain()


def yes(reason: str = "", witness: Any = None, **details) -> Decision:
    return Decision(Verdict.YES, reason, witness, dict(details))


def no(reason: str = "", witness: Any = None, **details) -> Decision:
    return Decision(Verdict.NO, reason, witness, dict(details))


def unknown(reason: str = "", **details) -> Decision:
    return Decision(Verdict.UNKNOWN, reason, None, dict(details))


@dataclass
class Budget:
    """Enumeration budget for the exponential procedures.

    ``steps`` bounds the number of candidate objects (valuations,
    partitions, subsets, plans) a procedure may examine.  Procedures
    decrement via :meth:`spend`; exhaustion surfaces as an ``UNKNOWN``
    decision rather than an exception at API boundaries.
    """

    steps: int = 200_000

    def spend(self, amount: int = 1) -> bool:
        """Consume budget; returns False when exhausted."""
        self.steps -= amount
        return self.steps >= 0

    @property
    def exhausted(self) -> bool:
        return self.steps < 0
