"""Boundedly evaluable envelopes (Section 4).

When ``Q`` is not boundedly evaluable, envelopes approximate it with
covered (hence boundedly evaluable) queries with *constant* accuracy
bounds:

* an **upper envelope** ``Qu`` with ``Q ⊑A Qu`` and
  ``|Qu(D) − Q(D)| ≤ Nu`` — found among *relaxations* of ``Q``
  (atom/equality subsets, Section 4.2);
* a **lower envelope** ``Ql`` with ``Ql ⊑A Q`` and
  ``|Q(D) − Ql(D)| ≤ Nl`` — found among *k-expansions* (up to ``k``
  added atoms, Section 4.3), required A-satisfiable to rule out the
  trivial empty envelope.

Lemma 4.2 gates both: a query with an envelope must be *bounded* (its
free variables covered — Lemma 4.2(b)); queries like Q2 of Example 4.1
fail here and have no envelope at all.

Lower-envelope candidates include *FD-justified atom splits* in
addition to targeted covering atoms.  The paper's own Example 4.5
produces a lower envelope that replaces an atom by two fresh-variable
copies re-implying it under an ``N = 1`` constraint; literal
k-expansions (supersets of ``Q``'s atoms) cannot express that, so the
search also tries dropping original atoms whose ``⊑A Q`` direction is
re-established by the containment checker.  This is the one documented
deviation from the paper's literal definitions (DESIGN.md, Section 2).

Approximation bounds are derived from the coverage structure: ``Nu`` is
the static output bound of ``Qu``'s plan; ``Nl`` is a bound on
``|Q(D)|`` itself (``Q`` is bounded, so its answer count is at most the
product of the cardinality bounds covering its free variables).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Sequence

from .._util import FreshNames, powerset
from ..engine.builder import build_bounded_plan, build_union_plan
from ..engine.cost import static_bounds
from ..engine.plan import Plan
from ..engine.naive import evaluate
from ..errors import QueryError, UnsafeQueryError
from ..query.ast import CQ, UCQ, Atom, Equality
from ..query.normalize import as_ucq, normalize_cq
from ..query.terms import Var
from ..schema.access import AccessSchema
from .containment import a_contained
from .coverage import CoverageResult, analyze_coverage
from .decision import Budget, Decision, no, unknown, yes
from .satisfiability import a_instances, a_satisfiable


@dataclass
class Envelope:
    """A constructed envelope: query, bounded plan and accuracy bound."""

    kind: str  # "upper" | "lower"
    query: CQ | UCQ
    plan: Plan
    bound: int | None
    coverage: CoverageResult | None = None

    def __str__(self) -> str:
        return (f"{self.kind} envelope {self.query} "
                f"(accuracy bound {self.bound})")


# ---------------------------------------------------------------------------
# Shared: boundedness precondition and |Q(D)| bound.
# ---------------------------------------------------------------------------

def _boundedness_gate(q: CQ, access_schema: AccessSchema) -> Decision | None:
    """Lemma 4.2(a)+(b): no envelope unless all free variables covered."""
    coverage = analyze_coverage(q, access_schema)
    if coverage.free_uncovered:
        names = ", ".join(v.name for v in coverage.free_uncovered)
        return no(f"{q.name} is not bounded under A (free variables "
                  f"{names} not covered; Lemma 4.2), hence it has no "
                  "envelope")
    return None


def answer_count_bound(q: CQ, access_schema: AccessSchema,
                       db_size: int | None = None) -> int | None:
    """A constant ``cr`` with ``|Q(D)| ≤ cr`` for every ``D |= A``.

    Valid only when ``Q`` is bounded (free variables covered): the
    coverage applications enumerate at most ``∏ N_i`` combinations of
    covered-variable values.  Returns None when a non-constant
    constraint is involved and ``db_size`` is not given.
    """
    coverage = analyze_coverage(q, access_schema)
    if coverage.free_uncovered:
        raise QueryError(f"{q.name} is not bounded; |Q(D)| has no constant "
                         "bound (Lemma 4.2)")
    bound = 1
    for application in coverage.applications:
        constraint = application.constraint
        if constraint.is_constant:
            bound *= constraint.bound(0)
        elif db_size is not None:
            bound *= constraint.bound(db_size)
        else:
            return None
    return bound


# ---------------------------------------------------------------------------
# Upper envelopes (Section 4.2).
# ---------------------------------------------------------------------------

def _relaxation(q: CQ, kept_atom_indices: Sequence[int]) -> CQ | None:
    """Build the relaxation keeping the given atoms.

    Equality atoms are kept when their variables remain reachable from
    the kept atoms or the head (closing over kept equalities), so the
    result is a syntactic subset of ``Q``'s atomic formulas.  Returns
    None when the candidate is unsafe (a free variable lost its
    support).
    """
    atoms = [q.atoms[i] for i in kept_atom_indices]
    known: set[Var] = set(q.head)
    for atom in atoms:
        known.update(atom.variables())
    kept_equalities: list[Equality] = []
    remaining = list(q.equalities)
    changed = True
    while changed:
        changed = False
        for equality in list(remaining):
            if all(v in known for v in equality.variables()):
                kept_equalities.append(equality)
                remaining.remove(equality)
                changed = True
            elif (equality.is_var_const and equality.left in known):
                kept_equalities.append(equality)
                remaining.remove(equality)
                changed = True
    candidate = CQ(f"{q.name}_u", q.head, atoms, kept_equalities)
    try:
        from ..query.normalize import check_safety
        check_safety(candidate)
    except UnsafeQueryError:
        return None
    return candidate


def _upper_envelope_cq(q: CQ, access_schema: AccessSchema,
                       budget: Budget,
                       db_size: int | None = None) -> Decision:
    q = normalize_cq(q, access_schema.schema)
    gate = _boundedness_gate(q, access_schema)
    if gate is not None:
        return gate

    indices = list(range(len(q.atoms)))
    # Prefer removing as little as possible: tightest envelope first.
    for removed_count in range(0, len(q.atoms) + 1):
        for removed in itertools.combinations(indices, removed_count):
            if not budget.spend():
                return unknown("budget exhausted during relaxation search")
            kept = [i for i in indices if i not in removed]
            candidate = _relaxation(q, kept)
            if candidate is None:
                continue
            coverage = analyze_coverage(candidate, access_schema)
            if not coverage.is_covered:
                continue
            plan = build_bounded_plan(coverage)
            cost = (static_bounds(plan, db_size)
                    if access_schema.all_constant or db_size is not None
                    else None)
            bound = cost.output_bound if cost is not None else None
            envelope = Envelope("upper", coverage.query, plan, bound,
                                coverage)
            return yes(
                f"covered relaxation found by removing "
                f"{removed_count} atom(s)",
                witness=envelope, removed_atoms=[str(q.atoms[i])
                                                 for i in removed])
    return no(f"no relaxation of {q.name} is covered by A")


def upper_envelope(query, access_schema: AccessSchema,
                   budget: Budget | None = None,
                   db_size: int | None = None) -> Decision:
    """UEP (Theorem 4.4): search for a covered relaxation upper envelope.

    For UCQ/∃FO+ follows Lemma 4.3: every CQ sub-query either has a
    covered relaxation or all of its A-instances are answered by the
    covered relaxations of other sub-queries.
    """
    budget = budget or Budget()
    if isinstance(query, CQ):
        return _upper_envelope_cq(query, access_schema, budget, db_size)
    query = as_ucq(query, access_schema.schema)

    relaxations: list[Envelope] = []
    stranded: list[CQ] = []
    for disjunct in query.disjuncts:
        decision = _upper_envelope_cq(disjunct, access_schema, budget,
                                      db_size)
        if decision.is_no and "not bounded" in decision.reason:
            return no(f"{query.name} is not bounded: {decision.reason}")
        if decision.is_yes:
            relaxations.append(decision.witness)
        elif decision.is_unknown:
            return decision
        else:
            stranded.append(normalize_cq(disjunct, access_schema.schema))

    # Lemma 4.3's second disjunct: stranded sub-queries must be answered
    # by the covered relaxations on every A-instance.
    if stranded:
        if not relaxations:
            return no("no CQ sub-query has a covered relaxation")
        union = UCQ("relaxed", [e.query for e in relaxations])
        extra = set()
        for cq in list(stranded) + [e.query for e in relaxations]:
            extra |= cq.constants()
        for disjunct in stranded:
            for instance in a_instances(disjunct, access_schema,
                                        extra_constants=extra,
                                        budget=budget):
                if instance.head_value not in evaluate(union, instance.db):
                    return no(
                        f"sub-query {disjunct.name} has no covered "
                        "relaxation and is not subsumed by the others "
                        "(Lemma 4.3)", witness=instance)
            if budget.exhausted:
                return unknown("budget exhausted during Lemma 4.3 check")

    plan = build_union_plan([e.coverage for e in relaxations],
                            name=f"upper[{query.name}]")
    bounds = [e.bound for e in relaxations]
    total = sum(bounds) if all(b is not None for b in bounds) else None
    union_query = UCQ(f"{query.name}_u", [e.query for e in relaxations])
    return yes("upper envelope assembled from covered relaxations",
               witness=Envelope("upper", union_query, plan, total))


# ---------------------------------------------------------------------------
# Lower envelopes (Section 4.3).
# ---------------------------------------------------------------------------

def _covering_atom_candidates(q: CQ, coverage: CoverageResult,
                              access_schema: AccessSchema,
                              fresh: FreshNames,
                              max_x_combos: int = 16) -> list[Atom]:
    """Targeted candidates: atoms that could cover a problem variable.

    For each constraint ``R(X -> Y, N)`` and each problem variable ``v``
    (a lone-violation or an X-side blocker), place ``v`` at a
    Y-position, fill X-positions with currently covered variables of the
    same query (all small combinations), and freshen the rest.
    """
    schema = access_schema.schema
    problems = set(coverage.lone_violations) | set(coverage.free_uncovered)
    for atom_index in coverage.unindexed_atoms:
        problems.update(coverage.query.atoms[atom_index].variables())
    covered_pool = sorted((v for v in coverage.covered
                           if coverage.analysis.is_data_dependent(v)
                           or coverage.analysis.is_constant_var(v)),
                          key=lambda v: v.name)
    candidates: list[Atom] = []
    for constraint in access_schema:
        relation = schema.relation(constraint.relation_name)
        x_positions = constraint.x_positions(relation)
        y_positions = constraint.y_positions(relation)
        combos = list(itertools.islice(
            itertools.product(covered_pool, repeat=len(x_positions)),
            max_x_combos)) or [()]
        for target in sorted(problems, key=lambda v: v.name):
            for y_position in y_positions:
                for combo in combos:
                    terms: list = [None] * relation.arity
                    for position, var in zip(x_positions, combo):
                        terms[position] = var
                    terms[y_position] = target
                    for position in range(relation.arity):
                        if terms[position] is None:
                            terms[position] = Var(fresh.fresh("w"))
                    candidates.append(Atom(relation.name, terms))
    return candidates


def _split_candidates(q: CQ, access_schema: AccessSchema,
                      fresh: FreshNames) -> list[tuple[int, Atom]]:
    """Example 4.5 candidates: per original atom and constraint, a copy
    with the positions outside ``X ∪ Y`` freshened.  Each copy is
    classically implied by its original, so adding copies preserves
    equivalence; dropping originals is validated separately."""
    schema = access_schema.schema
    results: list[tuple[int, Atom]] = []
    for atom_index, atom in enumerate(q.atoms):
        relation = schema.relation(atom.relation)
        for constraint in access_schema.for_relation(atom.relation):
            span = set(constraint.x_positions(relation)) | \
                set(constraint.y_positions(relation))
            outside = [p for p in range(relation.arity) if p not in span]
            if not outside:
                continue
            terms = list(atom.terms)
            for position in outside:
                terms[position] = Var(fresh.fresh("s"))
            copy = Atom(atom.relation, terms)
            if copy != atom:
                results.append((atom_index, copy))
    return results


def _try_lower_candidate(q: CQ, candidate: CQ,
                         access_schema: AccessSchema, budget: Budget,
                         needs_containment_check: bool,
                         db_size: int | None) -> Envelope | None:
    try:
        coverage = analyze_coverage(candidate, access_schema)
    except UnsafeQueryError:
        # Dropping an original atom may strand a variable (e.g. a head
        # variable whose only support was the dropped atom).
        return None
    if not coverage.is_covered:
        return None
    sat = a_satisfiable(coverage.query, access_schema, budget)
    if not sat.is_yes:
        return None
    if needs_containment_check:
        contained = a_contained(coverage.query, q, access_schema, budget)
        if not contained.is_yes:
            return None
    plan = build_bounded_plan(coverage)
    try:
        n_l = answer_count_bound(q, access_schema, db_size)
    except QueryError:
        n_l = None
    return Envelope("lower", coverage.query, plan, n_l, coverage)


def _lower_envelope_cq(q: CQ, access_schema: AccessSchema, k: int,
                       budget: Budget,
                       db_size: int | None = None) -> Decision:
    q = normalize_cq(q, access_schema.schema)
    gate = _boundedness_gate(q, access_schema)
    if gate is not None:
        return gate

    coverage = analyze_coverage(q, access_schema, normalized=True)
    fresh = FreshNames(v.name for v in q.variables())
    covering = _covering_atom_candidates(q, coverage, access_schema, fresh)
    splits = _split_candidates(q, access_schema, fresh)

    # Phase 1 — literal k-expansions: Q plus up to k new atoms (always
    # classically contained in Q; no containment check needed).
    pool = covering + [atom for _, atom in splits]
    seen: set[tuple] = set()
    unique_pool = []
    for atom in pool:
        key = (atom.relation, atom.terms)
        if key not in seen:
            seen.add(key)
            unique_pool.append(atom)
    for added in powerset(unique_pool, min_size=1, max_size=k):
        if not budget.spend():
            return unknown("budget exhausted during k-expansion search")
        candidate = CQ(f"{q.name}_l", q.head, q.atoms + tuple(added),
                       q.equalities)
        envelope = _try_lower_candidate(q, candidate, access_schema, budget,
                                        needs_containment_check=False,
                                        db_size=db_size)
        if envelope is not None:
            return yes(f"covered {len(added)}-expansion lower envelope",
                       witness=envelope,
                       added_atoms=[str(a) for a in added])

    # Phase 2 — atom splits with original-atom drops (Example 4.5): the
    # candidate is no longer a superset of Q's atoms, so ``⊑A Q`` is
    # re-established by the A-containment checker.
    by_original: dict[int, list[Atom]] = {}
    for atom_index, copy in splits:
        by_original.setdefault(atom_index, []).append(copy)
    for atom_index, copies in by_original.items():
        for chosen in powerset(copies, min_size=1,
                               max_size=min(k, len(copies))):
            if not budget.spend():
                return unknown("budget exhausted during split search")
            remaining = tuple(a for i, a in enumerate(q.atoms)
                              if i != atom_index)
            candidate = CQ(f"{q.name}_l", q.head, remaining + tuple(chosen),
                           q.equalities)
            envelope = _try_lower_candidate(
                q, candidate, access_schema, budget,
                needs_containment_check=True, db_size=db_size)
            if envelope is not None:
                return yes(
                    f"covered lower envelope via an FD-justified split of "
                    f"{q.atoms[atom_index]} (Example 4.5 pattern)",
                    witness=envelope,
                    split_atom=str(q.atoms[atom_index]),
                    added_atoms=[str(a) for a in chosen])

    return no(f"no covered, A-satisfiable {k}-expansion lower envelope "
              f"of {q.name} found", complete=False)


def lower_envelope(query, access_schema: AccessSchema, k: int = 2,
                   budget: Budget | None = None,
                   db_size: int | None = None) -> Decision:
    """LEP (Theorem 4.7): search for a covered, A-satisfiable
    k-expansion lower envelope.

    For UCQ/∃FO+ follows Lemma 4.6: all sub-queries must be bounded and
    at least one must admit a covered A-satisfiable k-expansion; the
    witness unions every expansion found (a tighter valid envelope).
    """
    budget = budget or Budget()
    if isinstance(query, CQ):
        return _lower_envelope_cq(query, access_schema, k, budget, db_size)
    query = as_ucq(query, access_schema.schema)

    # Lemma 4.6(a): Q must be bounded, i.e. every sub-query bounded.
    for disjunct in query.disjuncts:
        normalized = normalize_cq(disjunct, access_schema.schema)
        gate = _boundedness_gate(normalized, access_schema)
        if gate is not None:
            return no(f"{query.name} is not bounded: {gate.reason}")

    envelopes: list[Envelope] = []
    for disjunct in query.disjuncts:
        decision = _lower_envelope_cq(disjunct, access_schema, k, budget,
                                      db_size)
        if decision.is_yes:
            envelopes.append(decision.witness)
        elif decision.is_unknown:
            return decision
    if not envelopes:
        return no(f"no CQ sub-query of {query.name} admits a covered, "
                  f"A-satisfiable {k}-expansion (Lemma 4.6)",
                  complete=False)
    plan = build_union_plan([e.coverage for e in envelopes],
                            name=f"lower[{query.name}]")
    # |Q(D) − Ql(D)| ≤ Σ_i |Qi(D)|: each disjunct's answers are bounded
    # because the whole UCQ is bounded (Lemma 4.2(c)).
    bounds = [e.bound for e in envelopes]
    total = sum(bounds) if all(b is not None for b in bounds) else None
    union_query = UCQ(f"{query.name}_l", [e.query for e in envelopes])
    return yes("lower envelope assembled from sub-query expansions",
               witness=Envelope("lower", union_query, plan, total))
