"""Covered variables and covered queries — the effective syntax.

This is the PTIME heart of the paper (Section 3.2): ``cov(Q, A)`` is the
set of variables whose values are determined by the query or retrievable
through the indexes of ``A``; a CQ is *covered* when

  (a) its free variables are covered,
  (b) every non-covered variable is non-constant and occurs only once, and
  (c) every relation atom is *indexed* by some constraint whose X-side
      is covered and whose X∪Y span all the atom's "needed" positions.

Theorem 3.11: covered queries are boundedly evaluable; every boundedly
evaluable CQ is A-equivalent to a covered one; and coverage is checkable
in PTIME — it is an *effective syntax* for bounded evaluability.

Implementation notes (DESIGN.md, Section 3):

* The fixpoint is seeded with all constant variables (their values come
  from the query) and all data-independent variables (Section 3.2 sets
  ``cov(Q_di, A) = var(Q_di)``).  Seeding constant variables makes the
  fixpoint a plain monotone closure, hence order-independent
  (Lemma 3.9), and agrees with the paper's worked examples
  (cov(Q3, A3) = {x, y, z3, x1, x2} in Example 3.1/3.10).
* Applications are recorded in order; the bounded-plan builder replays
  the trace (``repro.engine.builder``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..query.ast import CQ, UCQ, Atom
from ..query.normalize import normalize_cq
from ..query.terms import Var, is_var
from ..query.varclasses import VariableAnalysis, analyze_variables
from ..schema.access import AccessConstraint, AccessSchema
from .decision import Decision, no, yes


@dataclass(frozen=True)
class ConstraintApplication:
    """One step of the coverage fixpoint: ``constraint`` applied to
    ``Q``'s atom number ``atom_index``, newly covering ``new_vars``."""

    constraint: AccessConstraint
    atom_index: int
    new_vars: tuple[Var, ...]

    def __str__(self) -> str:
        covered = ", ".join(v.name for v in self.new_vars)
        return (f"apply {self.constraint} to atom #{self.atom_index} "
                f"covering {{{covered}}}")


@dataclass(frozen=True)
class AtomIndexWitness:
    """Condition (c) evidence: ``constraint`` indexes atom ``atom_index``;
    ``checked_positions`` are the positions whose values the index can
    verify (the rest hold lone bound variables)."""

    atom_index: int
    constraint: AccessConstraint
    checked_positions: tuple[int, ...]


@dataclass
class CoverageResult:
    """Everything the coverage analysis learned about one CQ."""

    query: CQ
    access_schema: AccessSchema
    analysis: VariableAnalysis
    covered: set[Var]
    applications: list[ConstraintApplication]
    free_uncovered: list[Var]
    lone_violations: list[Var]
    unindexed_atoms: list[int]
    atom_witnesses: dict[int, AtomIndexWitness]

    @property
    def is_covered(self) -> bool:
        return (not self.free_uncovered and not self.lone_violations
                and not self.unindexed_atoms)

    def decision(self) -> Decision:
        if self.is_covered:
            return yes(f"{self.query.name} is covered by the access schema",
                       witness=self)
        reasons = []
        if self.free_uncovered:
            names = ", ".join(v.name for v in self.free_uncovered)
            reasons.append(f"free variables not covered: {names}")
        if self.lone_violations:
            names = ", ".join(v.name for v in self.lone_violations)
            reasons.append(
                f"non-covered variables occurring more than once or "
                f"pinned to constants: {names}")
        if self.unindexed_atoms:
            atoms = ", ".join(str(self.query.atoms[i])
                              for i in self.unindexed_atoms)
            reasons.append(f"atoms not indexed by any constraint: {atoms}")
        return no("; ".join(reasons), witness=self,
                  free_uncovered=list(self.free_uncovered),
                  lone_violations=list(self.lone_violations),
                  unindexed_atoms=list(self.unindexed_atoms))

    def explain(self) -> str:
        lines = [f"coverage analysis of {self.query}"]
        lines.append(f"  covered variables: "
                     f"{{{', '.join(sorted(v.name for v in self.covered))}}}")
        for application in self.applications:
            lines.append(f"  {application}")
        decision = self.decision()
        lines.append(f"  => {decision.explain()}")
        return "\n".join(lines)


def covered_variables(q: CQ, access_schema: AccessSchema,
                      analysis: VariableAnalysis | None = None,
                      extra_constants: Iterable[Var] = (),
                      ) -> tuple[set[Var], list[ConstraintApplication]]:
    """Compute ``cov(Q, A)`` and the application trace (Lemma 3.9).

    ``extra_constants`` lets callers treat chosen variables as constant
    variables without rewriting the query — exactly what instantiating
    the parameters of a specialized query does (Section 5): coverage of
    ``Q(x̄ = c̄)`` is the same for every valuation ``c̄``.
    """
    if analysis is None:
        analysis = analyze_variables(q)
    covered: set[Var] = set()
    # Seed: data-independent variables (cov(Q_di, A) = var(Q_di)) ...
    for var in q.variables():
        if analysis.is_data_independent(var):
            covered.add(var)
    # ... plus constant variables (values known from Q) and any
    # variables the caller promises to instantiate.
    for var in analysis.constant_vars:
        covered.update(analysis.eqplus_class(var))
    for var in extra_constants:
        covered.update(analysis.eqplus_class(var))

    applications: list[ConstraintApplication] = []
    schema = access_schema.schema
    changed = True
    while changed:
        changed = False
        for constraint in access_schema:
            relation = schema.relation(constraint.relation_name)
            x_positions = constraint.x_positions(relation)
            y_positions = constraint.y_positions(relation)
            for atom_index, atom in enumerate(q.atoms):
                if atom.relation != constraint.relation_name:
                    continue
                x_terms = [atom.terms[p] for p in x_positions]
                if not all(is_var(t) and t in covered for t in x_terms):
                    continue
                new_vars: list[Var] = []
                for position in y_positions:
                    term = atom.terms[position]
                    if is_var(term) and term not in covered:
                        for member in analysis.eqplus_class(term):
                            if member not in covered:
                                new_vars.append(member)
                                covered.add(member)
                if new_vars:
                    applications.append(ConstraintApplication(
                        constraint, atom_index, tuple(new_vars)))
                    changed = True
    return covered, applications


def _atom_index_witness(q: CQ, atom_index: int, atom: Atom,
                        access_schema: AccessSchema,
                        covered: set[Var],
                        lone_ok: set[Var]) -> AtomIndexWitness | None:
    """Find a constraint witnessing condition (c) for one atom.

    A variable is "needed" at a position unless it is a bound variable
    occurring exactly once in the query (``lone_ok``).  The witness
    constraint must have all X-position variables covered and all needed
    positions inside X ∪ Y.
    """
    schema = access_schema.schema
    relation = schema.relation(atom.relation)
    needed_positions = [
        position for position, term in enumerate(atom.terms)
        if not (is_var(term) and term in lone_ok)
    ]
    for constraint in access_schema.for_relation(atom.relation):
        x_positions = set(constraint.x_positions(relation))
        y_positions = set(constraint.y_positions(relation))
        span = x_positions | y_positions
        x_terms = [atom.terms[p] for p in x_positions]
        if not all(is_var(t) and t in covered for t in x_terms):
            continue
        if all(position in span for position in needed_positions):
            return AtomIndexWitness(atom_index, constraint,
                                    tuple(sorted(needed_positions)))
    return None


def analyze_coverage(q: CQ, access_schema: AccessSchema,
                     extra_constants: Iterable[Var] = (),
                     normalized: bool = False) -> CoverageResult:
    """Full coverage analysis of one CQ (conditions (a), (b), (c)).

    ``normalized=True`` skips re-normalization when the caller already
    normalized the query against the schema.
    """
    if not normalized:
        q = normalize_cq(q, access_schema.schema)
    analysis = analyze_variables(q)
    covered, applications = covered_variables(
        q, access_schema, analysis, extra_constants)

    free_uncovered = [v for v in q.head if v not in covered]

    # Condition (c) excludes *every* bound variable occurring exactly
    # once — covered or not (the paper's ȳ is "w̄ excluding bound
    # variables that only occur once in Q").  Example 4.5's lower
    # envelope relies on this: z1 is covered there, yet exempt from the
    # index-span requirement.
    bound_vars = q.bound_variables()
    lone_ok: set[Var] = {
        var for var in bound_vars
        if q.occurrence_count(var) == 1
        and not analysis.is_constant_var(var)
    }

    # Condition (b) constrains the non-covered variables only.
    lone_violations: list[Var] = []
    for var in sorted(q.variables() - covered, key=lambda v: v.name):
        if var in q.head:
            continue  # Condition (a) already flags free variables.
        if var not in lone_ok:
            lone_violations.append(var)

    unindexed: list[int] = []
    witnesses: dict[int, AtomIndexWitness] = {}
    for atom_index, atom in enumerate(q.atoms):
        witness = _atom_index_witness(
            q, atom_index, atom, access_schema, covered, lone_ok)
        if witness is None:
            unindexed.append(atom_index)
        else:
            witnesses[atom_index] = witness

    return CoverageResult(
        query=q,
        access_schema=access_schema,
        analysis=analysis,
        covered=covered,
        applications=applications,
        free_uncovered=free_uncovered,
        lone_violations=lone_violations,
        unindexed_atoms=unindexed,
        atom_witnesses=witnesses,
    )


def is_covered_cq(q: CQ, access_schema: AccessSchema,
                  extra_constants: Iterable[Var] = ()) -> Decision:
    """CQP(CQ): PTIME covered-query check (Theorems 3.11/3.14)."""
    return analyze_coverage(q, access_schema, extra_constants).decision()


def is_bounded_cq(q: CQ, access_schema: AccessSchema) -> Decision:
    """Lemma 4.2(b): a CQ is *bounded* under A iff all free variables are
    covered.  (Bounded is weaker than boundedly evaluable: Q1 of
    Example 4.1 is bounded but has no bounded plan.)"""
    result = analyze_coverage(q, access_schema)
    if not result.free_uncovered:
        return yes(f"all free variables of {q.name} are covered",
                   witness=result)
    names = ", ".join(v.name for v in result.free_uncovered)
    return no(f"free variables not covered: {names}", witness=result)


def covered_disjuncts(q: UCQ, access_schema: AccessSchema
                      ) -> tuple[list[int], list[int]]:
    """Split a UCQ's disjunct indices into (covered, uncovered)."""
    covered: list[int] = []
    uncovered: list[int] = []
    for index, disjunct in enumerate(q.disjuncts):
        if analyze_coverage(disjunct, access_schema).is_covered:
            covered.append(index)
        else:
            uncovered.append(index)
    return covered, uncovered
