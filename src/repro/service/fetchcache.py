"""A bounded LRU over ``Database.fetch`` results.

``fetch(constraint, x_value)`` is the only primitive through which
bounded plans touch data, and an access constraint ``R(X → Y, N)``
certifies that any one result holds at most ``N`` distinct tuples — so
a cache of ``capacity`` entries occupies at most ``capacity · N_max``
tuples.  Memory is certifiably bounded by Q-and-A-style reasoning, the
same guarantee the plans themselves enjoy.

Freshness comes from the per-relation generation counters maintained by
:class:`~repro.storage.database.Database`: the cache key includes the
relation's write epoch, so any ``insert``/``insert_many`` naturally
invalidates every cached fetch against that relation (stale entries age
out of the LRU; they can never be served).

:class:`CachingExecutor` interposes the cache on the executor's fetch
hook and keeps the access accounting honest: cold lookups count toward
``tuples_fetched`` (the empirical ``|D_Q|``), cache hits are tallied
separately as ``fetch_cache_hits`` / ``tuples_from_cache``.
"""

from __future__ import annotations

from typing import Sequence

from ..deadline import current_deadline
from ..engine.executor import AccessStats, Executor
from ..schema.access import AccessConstraint
from ..storage.database import Database
from ..storage.encoding import extend_column, int_column, readonly_view
from .lru import LruDict
from .plancache import CacheInfo


class FetchCache:
    """Thread-safe LRU from ``(constraint, x_value, generation)`` to the
    fetched ``X∪Y`` rows.

    Two entry families share the LRU: *legacy* entries (value X-keys →
    row-tuple lists, the pre-columnar surface) and *encoded* entries
    (dictionary-code keys → readonly ``array('q')`` column views plus a
    length).  Encoded entries are what the columnar executor consumes:
    a warm hit hands back zero-copy views that flow straight into a
    batch — no re-encoding, no row materialization.  Key shapes differ
    (3-tuples vs 4-tuples) so the families can never collide even when
    a code tuple equals a value tuple.

    >>> cache = FetchCache(capacity=128)
    >>> cache.info().size
    0
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: LruDict = LruDict(capacity)
        #: Largest cached entry seen, for the memory-bound report
        #: (advisory: updated without a lock).
        self.max_entry_rows = 0
        #: Hits served as encoded column views vs decoded row lists
        #: (advisory counters; the obs layer exports both).
        self.encoded_hits = 0
        self.legacy_hits = 0

    def lookup(self, db: Database, constraint: AccessConstraint,
               x_value: tuple) -> tuple[list[tuple], bool]:
        """Return ``(rows, hit)`` for one index lookup.

        A miss reads through the database and populates the cache.  The
        key carries ``db.generation(relation)``, so rows cached before a
        write can never satisfy a lookup issued after it.
        """
        rows_per_x, hits = self.lookup_many(db, constraint, (x_value,))
        return rows_per_x[0], hits[0]

    def lookup_many(self, db: Database, constraint: AccessConstraint,
                    x_values: Sequence[tuple]
                    ) -> tuple[list[list[tuple]], list[bool]]:
        """Batched :meth:`lookup`: split a whole batch into hits and
        misses in a single lock pass, then fetch *only* the misses in
        one ``fetch_many`` trip to storage.

        Both returned lists align with ``x_values``.  The generation is
        read once for the batch: a write racing the batch at worst
        caches fresher rows under the older epoch (benign — the write
        was concurrent), never stale rows under a newer one, because
        generations bump only after the backend's index updates.
        """
        generation = db.generation(constraint.relation_name)
        keys = [(constraint, x_value, generation) for x_value in x_values]
        cached = self._entries.get_many(keys)
        rows_per_x: list = list(cached)
        hits = [value is not None for value in cached]
        miss_positions = [i for i, value in enumerate(cached)
                          if value is None]
        self.legacy_hits += len(x_values) - len(miss_positions)
        if miss_positions:
            fetched = db.fetch_many(
                constraint, [x_values[i] for i in miss_positions])
            largest = self.max_entry_rows
            for position, rows in zip(miss_positions, fetched):
                rows_per_x[position] = rows
                if len(rows) > largest:
                    largest = len(rows)
            self.max_entry_rows = largest
            self._entries.put_many(
                (keys[i], rows)
                for i, rows in zip(miss_positions, fetched))
        return rows_per_x, hits

    def lookup_many_encoded(self, db: Database,
                            constraint: AccessConstraint, keys: Sequence
                            ) -> tuple[list, list[bool]]:
        """Encoded twin of :meth:`lookup_many`: dictionary-code keys in,
        per-key ``(column views, length)`` entries out, aligned with
        ``keys``.

        Cached columns are readonly memoryviews over arrays built once
        at miss time — warm hits share them by reference, and all
        bookkeeping (entry sizing included) runs on code columns and
        plain lengths; no decoded row is ever materialized here.
        """
        generation = db.generation(constraint.relation_name)
        # 4-tuple keys: legacy keys are 3-tuples, so a code key can
        # never alias a value key (the code tuple (3,) IS the value
        # tuple (3,) under ==).
        cache_keys = [(constraint, key, generation, 0) for key in keys]
        cached = self._entries.get_many(cache_keys)
        entries: list = list(cached)
        hits = [value is not None for value in cached]
        miss_positions = [i for i, value in enumerate(cached)
                          if value is None]
        self.encoded_hits += len(keys) - len(miss_positions)
        if miss_positions:
            fetched = db.fetch_many_encoded(
                constraint, [keys[i] for i in miss_positions])
            largest = self.max_entry_rows
            puts = []
            for position, (cols, length) in zip(miss_positions, fetched):
                entry = (tuple(readonly_view(column) for column in cols),
                         length)
                entries[position] = entry
                if length > largest:
                    largest = length
                puts.append((cache_keys[position], entry))
            self.max_entry_rows = largest
            self._entries.put_many(puts)
        return entries, hits

    def sweep(self, db: Database) -> int:
        """Purge entries cached under a write generation older than the
        relation's current one.

        Stale entries can never be *served* (the lookup key carries the
        current generation), but they occupy LRU slots until recency
        pushes them out; a periodic sweep — the serving tier's
        housekeeping loop calls this — hands those slots back to live
        epochs immediately.  Returns the number of entries dropped.
        """
        current: dict[str, int] = {}

        def stale(key) -> bool:
            constraint = key[0]
            generation = key[2]
            relation = constraint.relation_name
            latest = current.get(relation)
            if latest is None:
                latest = current[relation] = db.generation(relation)
            return generation < latest

        return self._entries.prune(stale)

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(hits=self._entries.hits,
                         misses=self._entries.misses,
                         evictions=self._entries.evictions,
                         size=len(self._entries),
                         capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)


class CachingExecutor(Executor):
    """An executor whose index lookups go through a :class:`FetchCache`.

    With ``fetch_cache=None`` it behaves exactly like the base executor.
    Results are identical either way — the cache only ever returns what
    ``db.fetch`` returned for the same (constraint, X-value) at the same
    write epoch.
    """

    def __init__(self, db: Database, fetch_cache: FetchCache | None = None):
        super().__init__(db)
        self.fetch_cache = fetch_cache

    def _fetch_flat(self, constraint, x_values: Sequence[tuple],
                    stats: AccessStats) -> list[tuple]:
        if self.fetch_cache is None:
            return super()._fetch_flat(constraint, x_values, stats)
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fetch_flat")
        rows_per_x, hits = self.fetch_cache.lookup_many(
            self.db, constraint, x_values)
        stats.index_lookups += len(x_values)
        flat: list[tuple] = []
        for rows, hit in zip(rows_per_x, hits):
            if hit:
                stats.fetch_cache_hits += 1
                stats.tuples_from_cache += len(rows)
            else:
                stats.fetch_cache_misses += 1
                stats.tuples_fetched += len(rows)
            flat.extend(rows)
        return flat

    def _fetch_flat_encoded(self, constraint, keys: Sequence,
                            stats: AccessStats):
        if self.fetch_cache is None:
            return super()._fetch_flat_encoded(constraint, keys, stats)
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fetch_flat_encoded")
        entries, hits = self.fetch_cache.lookup_many_encoded(
            self.db, constraint, keys)
        stats.index_lookups += len(keys)
        if len(entries) == 1:
            # Single-key fast path: the cached views flow into the
            # batch directly — zero copies on the warmest path.
            cols, length = entries[0]
            if hits[0]:
                stats.fetch_cache_hits += 1
                stats.tuples_from_cache += length
            else:
                stats.fetch_cache_misses += 1
                stats.tuples_fetched += length
            return list(cols), length
        width = len(constraint.x) + len(constraint.y)
        out = [int_column() for _ in range(width)]
        total = 0
        for (cols, length), hit in zip(entries, hits):
            if hit:
                stats.fetch_cache_hits += 1
                stats.tuples_from_cache += length
            else:
                stats.fetch_cache_misses += 1
                stats.tuples_fetched += length
            if length:
                for position in range(width):
                    extend_column(out[position], cols[position])
                total += length
        return out, total
