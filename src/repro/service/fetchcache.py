"""A bounded LRU over ``Database.fetch`` results, maintained under
writes.

``fetch(constraint, x_value)`` is the only primitive through which
bounded plans touch data, and an access constraint ``R(X → Y, N)``
certifies that any one result holds at most ``N`` distinct tuples — so
a cache of ``capacity`` entries occupies at most ``capacity · N_max``
tuples.  Memory is certifiably bounded by the same reasoning the plans
themselves enjoy.

Freshness comes in two flavours (the full soundness argument lives in
``docs/ARCHITECTURE.md``):

* **Maintained entries** — for constraints that resolve *exactly*
  against an attached index (same relation, X, Y and bound), entries
  are keyed without a generation and kept current by applying the
  backend's :class:`~repro.storage.delta.WriteDelta` stream: an
  insert/delete touches exactly the entries whose X-key it changed,
  everything else stays warm.  A per-relation *epoch* (the generation
  of the last applied delta) validates lookups; a delta that cannot be
  applied exactly (a ``clear``, recovery, schema reattach, or a gap in
  the stream) falls back to invalidating the relation's maintained
  entries — counted, so dashboards can see maintenance degrade.
* **Generation-keyed entries** — constraints that resolve through a
  key permutation or row projection (structural recreations with a
  different layout) keep the original scheme: the cache key carries
  ``db.generation(relation)``, so any write cold-starts them.  This
  *is* the fallback-to-invalidate path, with no purge needed on the
  write itself (stale entries age out or are swept).

Maintenance is attached per database via :meth:`FetchCache.
attach_maintenance` (the service does this at construction); an
unattached cache behaves exactly like the original generation-keyed
design.

:class:`CachingExecutor` interposes the cache on the executor's fetch
hook and keeps the access accounting honest: cold lookups count toward
``tuples_fetched`` (the empirical ``|D_Q|``), cache hits are tallied
separately as ``fetch_cache_hits`` / ``tuples_from_cache``.
"""

from __future__ import annotations

import threading
from typing import Sequence

from ..deadline import current_deadline
from ..engine.executor import AccessStats, Executor
from ..schema.access import AccessConstraint
from ..storage.database import Database
from ..storage.delta import WriteDelta
from ..storage.encoding import extend_column, int_column, readonly_view
from .lru import LruDict
from .plancache import CacheInfo

#: Key marker for maintained *encoded* entries: ``(constraint, code
#: key, _ENCODED)``.  A unique object, so the key can never collide
#: with a generation-keyed 3-tuple ``(constraint, x_value, int)`` even
#: when a code tuple equals a value tuple under ``==``.
_ENCODED = object()


def _encoded_plus(entry, row_codes):
    """``entry`` with one code row appended, or None if it is already
    present (idempotent, copy-on-write: readers keep their views)."""
    views, length = entry
    width = len(row_codes)
    for i in range(length):
        if all(views[c][i] == row_codes[c] for c in range(width)):
            return None
    cols = []
    for c in range(width):
        column = int_column()
        extend_column(column, views[c])
        column.append(row_codes[c])
        cols.append(readonly_view(column))
    return tuple(cols), length + 1


def _encoded_minus(entry, row_codes):
    """``entry`` with one code row removed, or None if it is absent."""
    views, length = entry
    width = len(row_codes)
    position = -1
    for i in range(length):
        if all(views[c][i] == row_codes[c] for c in range(width)):
            position = i
            break
    if position < 0:
        return None
    cols = []
    for c in range(width):
        column = int_column()
        extend_column(column, views[c])
        del column[position]
        cols.append(readonly_view(column))
    return tuple(cols), length - 1


class FetchCache:
    """Thread-safe LRU over per-X-value fetch results.

    Four key shapes share the LRU and can never collide:

    * maintained legacy — ``(constraint, x_value)`` → row-tuple list;
    * maintained encoded — ``(constraint, code key, _ENCODED)`` →
      ``(readonly column views, length)``;
    * generation-keyed legacy — ``(constraint, x_value, generation)``;
    * generation-keyed encoded — ``(constraint, code key, generation,
      0)``.

    Encoded entries are what the columnar executor consumes: a warm hit
    hands back zero-copy views that flow straight into a batch — no
    re-encoding, no row materialization.  Maintenance rebuilds an
    entry's arrays copy-on-write, so views already handed out stay
    frozen at the content they were served with.

    >>> cache = FetchCache(capacity=128)
    >>> cache.info().size
    0
    >>> cache.maintained_deltas, cache.maintenance_fallbacks
    (0, 0)
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: LruDict = LruDict(capacity)
        #: Largest cached entry seen, for the memory-bound report
        #: (advisory: updated without a lock).
        self.max_entry_rows = 0
        #: Hits served as encoded column views vs decoded row lists
        #: (advisory counters; the obs layer exports both).
        self.encoded_hits = 0
        self.legacy_hits = 0
        # -- incremental maintenance state ---------------------------------
        # Serializes delta application, epoch reads/writes and the
        # store-a-fill decision.  Never held while calling into the
        # backend (writers call the listener while holding the backend
        # lock, so the reverse order would deadlock).
        self._maintenance_lock = threading.Lock()
        #: relation -> generation of the last applied delta.  Invariant:
        #: a relation with no epoch has no maintained entries.
        self._epochs: dict[str, int] = {}
        self._backend = None
        # Maintainability verdicts, memoized per constraint *value*
        # against the identity of the backend's attached schema.
        self._verdicts: dict[AccessConstraint, bool] = {}
        self._verdict_schema = None
        #: Deltas applied to maintained entries in place.
        self.maintained_deltas = 0
        #: Cached entries updated (not dropped) by delta application.
        self.maintained_entries = 0
        #: Deltas that could not be applied exactly (wipe, epoch gap,
        #: schema reattach) and fell back to invalidation.
        self.maintenance_fallbacks = 0
        #: Entries dropped by those fallbacks.
        self.maintenance_invalidations = 0

    # -- maintenance wiring ------------------------------------------------

    def attach_maintenance(self, db: Database) -> None:
        """Subscribe this cache to ``db``'s write-delta stream.

        Constraints that resolve exactly against the attached schema
        switch to maintained (epoch-validated) entries; everything else
        stays generation-keyed.  Idempotent per backend; attaching to a
        different backend detaches from the previous one first.
        """
        backend = db.backend
        if backend is self._backend:
            return
        self.detach_maintenance()
        with self._maintenance_lock:
            self._epochs.clear()
            self._verdicts = {}
            self._verdict_schema = None
            self._backend = backend
        backend.add_write_listener(self._on_delta)

    def detach_maintenance(self) -> int:
        """Unsubscribe and drop every maintained entry (they would go
        silently stale without the delta stream).  Returns the number
        of entries dropped.  Safe to call when not attached."""
        backend = self._backend
        if backend is not None:
            backend.remove_write_listener(self._on_delta)
        with self._maintenance_lock:
            self._backend = None
            self._epochs.clear()
            self._verdicts = {}
            self._verdict_schema = None
            return self._entries.prune(self._is_maintained_key)

    @staticmethod
    def _is_maintained_key(key) -> bool:
        return len(key) == 2 or key[2] is _ENCODED

    def _maintainable(self, constraint: AccessConstraint) -> bool:
        """Can this constraint's entries be maintained by deltas?

        Yes exactly when some attached constraint *equals* it (same
        relation, X, Y and bound): deltas are keyed by the attached
        constraint objects, and frozen-dataclass equality makes the
        requested constraint address the same entries.  Anything that
        resolves through a key permutation, row projection or a
        different bound stays generation-keyed.
        """
        backend = self._backend
        if backend is None:
            return False
        schema = backend.access_schema
        if schema is not self._verdict_schema:
            # A reattach changes the constraint->index mapping; old
            # verdicts (either way) are meaningless against it.
            self._verdicts = {}
            self._verdict_schema = schema
        verdict = self._verdicts.get(constraint)
        if verdict is None:
            verdict = schema is not None and any(
                attached == constraint for attached in schema)
            self._verdicts[constraint] = verdict
        return verdict

    # -- lookups -----------------------------------------------------------

    def lookup(self, db: Database, constraint: AccessConstraint,
               x_value: tuple) -> tuple[list[tuple], bool]:
        """Return ``(rows, hit)`` for one index lookup.

        A miss reads through the database and populates the cache;
        entries can never serve rows staler than the write epoch the
        lookup observed.

        >>> from repro import (AccessConstraint, AccessSchema, Database,
        ...                    Schema)
        >>> schema = Schema.from_dict({"R": ("A", "B")})
        >>> access = AccessSchema(schema,
        ...                       [AccessConstraint("R", ("A",), ("B",), 4)])
        >>> db = Database(schema, access)
        >>> db.insert("R", (1, 10))
        >>> cache = FetchCache(capacity=16)
        >>> cache.attach_maintenance(db)
        >>> constraint = access.constraints[0]
        >>> cache.lookup(db, constraint, (1,))
        ([(1, 10)], False)
        >>> db.insert("R", (1, 11))      # maintained: the entry stays warm
        >>> cache.lookup(db, constraint, (1,))
        ([(1, 10), (1, 11)], True)
        >>> cache.maintained_deltas
        1
        """
        rows_per_x, hits = self.lookup_many(db, constraint, (x_value,))
        return rows_per_x[0], hits[0]

    def lookup_many(self, db: Database, constraint: AccessConstraint,
                    x_values: Sequence[tuple]
                    ) -> tuple[list[list[tuple]], list[bool]]:
        """Batched :meth:`lookup`: split a whole batch into hits and
        misses in a single lock pass, then fetch *only* the misses in
        one ``fetch_many`` trip to storage.

        Both returned lists align with ``x_values``.  The generation is
        read once for the batch: a write racing the batch at worst
        caches fresher rows under the older epoch (benign — delta
        application is idempotent and converges the entry), never stale
        rows under a newer one, because generations bump only after the
        backend's index updates.
        """
        generation = db.generation(constraint.relation_name)
        if self._maintainable(constraint):
            return self._lookup_many_maintained(db, constraint, x_values,
                                                generation)
        keys = [(constraint, x_value, generation) for x_value in x_values]
        cached = self._entries.get_many(keys)
        rows_per_x: list = list(cached)
        hits = [value is not None for value in cached]
        miss_positions = [i for i, value in enumerate(cached)
                          if value is None]
        self.legacy_hits += len(x_values) - len(miss_positions)
        if miss_positions:
            fetched = db.fetch_many(
                constraint, [x_values[i] for i in miss_positions])
            largest = self.max_entry_rows
            for position, rows in zip(miss_positions, fetched):
                rows_per_x[position] = rows
                if len(rows) > largest:
                    largest = len(rows)
            self.max_entry_rows = largest
            self._entries.put_many(
                (keys[i], rows)
                for i, rows in zip(miss_positions, fetched))
        return rows_per_x, hits

    def _lookup_many_maintained(self, db: Database,
                                constraint: AccessConstraint,
                                x_values: Sequence[tuple],
                                generation: int):
        """The maintained-family twin of :meth:`lookup_many`."""
        relation = constraint.relation_name
        backend = self._backend
        schema = backend.access_schema if backend is not None else None
        with self._maintenance_lock:
            live = self._epochs.get(relation) == generation
        keys = [(constraint, x_value) for x_value in x_values]
        if live:
            cached = self._entries.get_many(keys)
        else:
            # The epoch lags (a delta is in flight) or leads (entries
            # were purged): treat the whole batch as misses, but never
            # purge here — an in-flight delta may be about to repair
            # the entries.
            cached = [None] * len(keys)
            self._entries.record_misses(len(keys))
        rows_per_x: list = list(cached)
        hits = [value is not None for value in cached]
        miss_positions = [i for i, value in enumerate(cached)
                          if value is None]
        self.legacy_hits += len(x_values) - len(miss_positions)
        if miss_positions:
            fetched = db.fetch_many(
                constraint, [x_values[i] for i in miss_positions])
            largest = self.max_entry_rows
            for position, rows in zip(miss_positions, fetched):
                rows_per_x[position] = rows
                if len(rows) > largest:
                    largest = len(rows)
            self.max_entry_rows = largest
            self._store_maintained(
                relation, generation, schema,
                [(keys[i], rows)
                 for i, rows in zip(miss_positions, fetched)])
        return rows_per_x, hits

    def lookup_many_encoded(self, db: Database,
                            constraint: AccessConstraint, keys: Sequence
                            ) -> tuple[list, list[bool]]:
        """Encoded twin of :meth:`lookup_many`: dictionary-code keys in,
        per-key ``(column views, length)`` entries out, aligned with
        ``keys``.

        Cached columns are readonly memoryviews over arrays built once
        at miss time — warm hits share them by reference, and all
        bookkeeping (entry sizing included) runs on code columns and
        plain lengths; no decoded row is ever materialized here.
        Maintenance replaces an updated entry's arrays wholesale, so
        views handed to in-flight batches stay frozen.
        """
        generation = db.generation(constraint.relation_name)
        if self._maintainable(constraint):
            return self._lookup_many_encoded_maintained(db, constraint,
                                                        keys, generation)
        # 4-tuple keys: legacy keys are 3-tuples, so a code key can
        # never alias a value key (the code tuple (3,) IS the value
        # tuple (3,) under ==).
        cache_keys = [(constraint, key, generation, 0) for key in keys]
        cached = self._entries.get_many(cache_keys)
        entries: list = list(cached)
        hits = [value is not None for value in cached]
        miss_positions = [i for i, value in enumerate(cached)
                          if value is None]
        self.encoded_hits += len(keys) - len(miss_positions)
        if miss_positions:
            fetched = db.fetch_many_encoded(
                constraint, [keys[i] for i in miss_positions])
            largest = self.max_entry_rows
            puts = []
            for position, (cols, length) in zip(miss_positions, fetched):
                entry = (tuple(readonly_view(column) for column in cols),
                         length)
                entries[position] = entry
                if length > largest:
                    largest = length
                puts.append((cache_keys[position], entry))
            self.max_entry_rows = largest
            self._entries.put_many(puts)
        return entries, hits

    def _lookup_many_encoded_maintained(self, db: Database,
                                        constraint: AccessConstraint,
                                        keys: Sequence, generation: int):
        relation = constraint.relation_name
        backend = self._backend
        schema = backend.access_schema if backend is not None else None
        with self._maintenance_lock:
            live = self._epochs.get(relation) == generation
        cache_keys = [(constraint, key, _ENCODED) for key in keys]
        if live:
            cached = self._entries.get_many(cache_keys)
        else:
            cached = [None] * len(cache_keys)
            self._entries.record_misses(len(cache_keys))
        entries: list = list(cached)
        hits = [value is not None for value in cached]
        miss_positions = [i for i, value in enumerate(cached)
                          if value is None]
        self.encoded_hits += len(keys) - len(miss_positions)
        if miss_positions:
            fetched = db.fetch_many_encoded(
                constraint, [keys[i] for i in miss_positions])
            largest = self.max_entry_rows
            puts = []
            for position, (cols, length) in zip(miss_positions, fetched):
                entry = (tuple(readonly_view(column) for column in cols),
                         length)
                entries[position] = entry
                if length > largest:
                    largest = length
                puts.append((cache_keys[position], entry))
            self.max_entry_rows = largest
            self._store_maintained(relation, generation, schema, puts)
        return entries, hits

    def _store_maintained(self, relation: str, stamp: int, schema,
                          items: list) -> None:
        """Store freshly fetched fills for maintained entries.

        ``stamp`` is the generation read *before* the fetch.  Under the
        maintenance lock:

        * if the relation's epoch moved past the stamp, a write (whose
          delta already landed) raced the fetch — the fill might
          predate it, so discard;
        * if the backend's schema object changed since the lookup
          started, the maintainability verdict is void — discard;
        * otherwise store.  A fill *fresher* than its stamp is fine:
          in-flight deltas apply idempotently, so the entry converges
          to current content either way (``docs/ARCHITECTURE.md``
          spells out the argument).
        """
        backend = self._backend
        with self._maintenance_lock:
            if (backend is None or backend is not self._backend
                    or backend.access_schema is not schema):
                return
            epoch = self._epochs.get(relation)
            if epoch is None:
                self._epochs[relation] = stamp
            elif epoch > stamp:
                return
            self._entries.put_many(items)

    # -- delta application (the backend's write listener) ------------------

    def _on_delta(self, delta: WriteDelta) -> None:
        """Apply one write delta to the maintained entries.

        Runs synchronously on the writer's thread, under the backend's
        write lock — so it must stay cheap and must never call back
        into the backend.  Cost is O(changes · touched entries), never
        O(cache).
        """
        relation = delta.relation
        with self._maintenance_lock:
            epoch = self._epochs.get(relation)
            if not delta.maintainable:
                if epoch is not None:
                    dropped = self._purge_relation(relation)
                    self.maintenance_invalidations += dropped
                    self.maintenance_fallbacks += 1
                    self._epochs[relation] = max(epoch,
                                                 delta.new_generation)
                else:
                    self._epochs[relation] = delta.new_generation
                return
            if epoch is None:
                # Nothing maintained yet; start tracking at this write.
                self._epochs[relation] = delta.new_generation
                return
            if delta.new_generation <= epoch:
                return  # duplicate / late delivery: already reflected
            if delta.old_generation != epoch:
                # A gap in the stream (e.g. attached mid-traffic):
                # entries may have missed writes — invalidate.
                dropped = self._purge_relation(relation)
                self.maintenance_invalidations += dropped
                self.maintenance_fallbacks += 1
                self._epochs[relation] = delta.new_generation
                return
            touched = 0
            for constraint, changes in delta.constraints.items():
                touched += self._apply_changes(constraint, changes)
            self._epochs[relation] = delta.new_generation
            self.maintained_deltas += 1
            self.maintained_entries += touched

    def _apply_changes(self, constraint: AccessConstraint,
                       changes) -> int:
        """Apply one constraint's projection changes to whatever
        entries are cached (absent entries are simply not maintained).
        Returns the number of entries updated."""
        entries = self._entries
        touched = 0
        largest = self.max_entry_rows
        for x_value, row_value, key_code, row_codes in changes.removed:
            key = (constraint, x_value)
            rows = entries.get(key, count=False)
            if rows is not None and row_value in rows:
                entries.put(key, [r for r in rows if r != row_value])
                touched += 1
            ekey = (constraint, key_code, _ENCODED)
            entry = entries.get(ekey, count=False)
            if entry is not None:
                updated = _encoded_minus(entry, row_codes)
                if updated is not None:
                    entries.put(ekey, updated)
                    touched += 1
        for x_value, row_value, key_code, row_codes in changes.added:
            key = (constraint, x_value)
            rows = entries.get(key, count=False)
            if rows is not None and row_value not in rows:
                entries.put(key, rows + [row_value])
                touched += 1
                if len(rows) + 1 > largest:
                    largest = len(rows) + 1
            ekey = (constraint, key_code, _ENCODED)
            entry = entries.get(ekey, count=False)
            if entry is not None:
                updated = _encoded_plus(entry, row_codes)
                if updated is not None:
                    entries.put(ekey, updated)
                    touched += 1
                    if updated[1] > largest:
                        largest = updated[1]
        self.max_entry_rows = largest
        return touched

    def _purge_relation(self, relation: str) -> int:
        """Drop the relation's maintained entries (callers hold the
        maintenance lock); generation-keyed families are left to age
        out as before."""
        def doomed(key) -> bool:
            return (self._is_maintained_key(key)
                    and key[0].relation_name == relation)
        return self._entries.prune(doomed)

    # -- housekeeping ------------------------------------------------------

    def sweep(self, db: Database) -> int:
        """Purge generation-keyed entries cached under a write
        generation older than the relation's current one.

        Stale generation-keyed entries can never be *served* (the
        lookup key carries the current generation), but they occupy LRU
        slots until recency pushes them out; a periodic sweep — the
        serving tier's housekeeping loop calls this — hands those slots
        back immediately.  Maintained entries are never swept: they are
        kept current by deltas and dropped only by fallback purges.
        Returns the number of entries dropped.
        """
        current: dict[str, int] = {}

        def stale(key) -> bool:
            if self._is_maintained_key(key):
                return False
            constraint = key[0]
            generation = key[2]
            relation = constraint.relation_name
            latest = current.get(relation)
            if latest is None:
                latest = current[relation] = db.generation(relation)
            return generation < latest

        return self._entries.prune(stale)

    def clear(self) -> None:
        with self._maintenance_lock:
            self._entries.clear()
            # Invariant: no maintained entries -> no epochs; fills and
            # deltas re-establish them.
            self._epochs.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(hits=self._entries.hits,
                         misses=self._entries.misses,
                         evictions=self._entries.evictions,
                         size=len(self._entries),
                         capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)


class CachingExecutor(Executor):
    """An executor whose index lookups go through a :class:`FetchCache`.

    With ``fetch_cache=None`` it behaves exactly like the base executor.
    Results are identical either way — the cache only ever returns what
    ``db.fetch`` returned for the same (constraint, X-value) at the same
    write epoch, maintained forward by the exact per-write deltas.
    """

    def __init__(self, db: Database, fetch_cache: FetchCache | None = None):
        super().__init__(db)
        self.fetch_cache = fetch_cache

    def _fetch_flat(self, constraint, x_values: Sequence[tuple],
                    stats: AccessStats) -> list[tuple]:
        if self.fetch_cache is None:
            return super()._fetch_flat(constraint, x_values, stats)
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fetch_flat")
        rows_per_x, hits = self.fetch_cache.lookup_many(
            self.db, constraint, x_values)
        stats.index_lookups += len(x_values)
        flat: list[tuple] = []
        for rows, hit in zip(rows_per_x, hits):
            if hit:
                stats.fetch_cache_hits += 1
                stats.tuples_from_cache += len(rows)
            else:
                stats.fetch_cache_misses += 1
                stats.tuples_fetched += len(rows)
            flat.extend(rows)
        return flat

    def _fetch_flat_encoded(self, constraint, keys: Sequence,
                            stats: AccessStats):
        if self.fetch_cache is None:
            return super()._fetch_flat_encoded(constraint, keys, stats)
        deadline = current_deadline()
        if deadline is not None:
            deadline.check("fetch_flat_encoded")
        entries, hits = self.fetch_cache.lookup_many_encoded(
            self.db, constraint, keys)
        stats.index_lookups += len(keys)
        if len(entries) == 1:
            # Single-key fast path: the cached views flow into the
            # batch directly — zero copies on the warmest path.
            cols, length = entries[0]
            if hits[0]:
                stats.fetch_cache_hits += 1
                stats.tuples_from_cache += length
            else:
                stats.fetch_cache_misses += 1
                stats.tuples_fetched += length
            return list(cols), length
        width = len(constraint.x) + len(constraint.y)
        out = [int_column() for _ in range(width)]
        total = 0
        for (cols, length), hit in zip(entries, hits):
            if hit:
                stats.fetch_cache_hits += 1
                stats.tuples_from_cache += length
            else:
                stats.fetch_cache_misses += 1
                stats.tuples_fetched += length
            if length:
                for position in range(width):
                    extend_column(out[position], cols[position])
                total += length
        return out, total
