"""A bounded LRU over ``Database.fetch`` results.

``fetch(constraint, x_value)`` is the only primitive through which
bounded plans touch data, and an access constraint ``R(X → Y, N)``
certifies that any one result holds at most ``N`` distinct tuples — so
a cache of ``capacity`` entries occupies at most ``capacity · N_max``
tuples.  Memory is certifiably bounded by Q-and-A-style reasoning, the
same guarantee the plans themselves enjoy.

Freshness comes from the per-relation generation counters maintained by
:class:`~repro.storage.database.Database`: the cache key includes the
relation's write epoch, so any ``insert``/``insert_many`` naturally
invalidates every cached fetch against that relation (stale entries age
out of the LRU; they can never be served).

:class:`CachingExecutor` interposes the cache on the executor's fetch
hook and keeps the access accounting honest: cold lookups count toward
``tuples_fetched`` (the empirical ``|D_Q|``), cache hits are tallied
separately as ``fetch_cache_hits`` / ``tuples_from_cache``.
"""

from __future__ import annotations

from typing import Sequence

from ..engine.executor import AccessStats, Executor
from ..schema.access import AccessConstraint
from ..storage.database import Database
from .lru import LruDict
from .plancache import CacheInfo


class FetchCache:
    """Thread-safe LRU from ``(constraint, x_value, generation)`` to the
    fetched ``X∪Y`` rows.

    >>> cache = FetchCache(capacity=128)
    >>> cache.info().size
    0
    """

    def __init__(self, capacity: int = 4096):
        self.capacity = capacity
        self._entries: LruDict = LruDict(capacity)
        #: Largest cached entry seen, for the memory-bound report
        #: (advisory: updated without a lock).
        self.max_entry_rows = 0

    def lookup(self, db: Database, constraint: AccessConstraint,
               x_value: tuple) -> tuple[list[tuple], bool]:
        """Return ``(rows, hit)`` for one index lookup.

        A miss reads through ``db.fetch`` and populates the cache.  The
        key carries ``db.generation(relation)``, so rows cached before a
        write can never satisfy a lookup issued after it.
        """
        key = (constraint, x_value,
               db.generation(constraint.relation_name))
        cached = self._entries.get(key)
        if cached is not None:
            return cached, True
        rows = db.fetch(constraint, x_value)
        self._entries.put(key, rows)
        self.max_entry_rows = max(self.max_entry_rows, len(rows))
        return rows, False

    def clear(self) -> None:
        self._entries.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(hits=self._entries.hits,
                         misses=self._entries.misses,
                         evictions=self._entries.evictions,
                         size=len(self._entries),
                         capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)


class CachingExecutor(Executor):
    """An executor whose index lookups go through a :class:`FetchCache`.

    With ``fetch_cache=None`` it behaves exactly like the base executor.
    Results are identical either way — the cache only ever returns what
    ``db.fetch`` returned for the same (constraint, X-value) at the same
    write epoch.
    """

    def __init__(self, db: Database, fetch_cache: FetchCache | None = None):
        super().__init__(db)
        self.fetch_cache = fetch_cache

    def _fetch_rows(self, constraint, x_value: tuple,
                    stats: AccessStats) -> Sequence[tuple]:
        if self.fetch_cache is None:
            return super()._fetch_rows(constraint, x_value, stats)
        rows, hit = self.fetch_cache.lookup(self.db, constraint, x_value)
        stats.index_lookups += 1
        if hit:
            stats.fetch_cache_hits += 1
            stats.tuples_from_cache += len(rows)
        else:
            stats.fetch_cache_misses += 1
            stats.tuples_fetched += len(rows)
        return rows
