"""LRU cache for compiled queries: the static half of the service.

The paper's central observation is that a covered query's plan and cost
certificate are determined by ``Q`` and ``A`` *only* (Section 2) — not
by the instance, not by request time.  So the expensive static pipeline
(parse → normalize → coverage fixpoint → plan construction → cost
certificate) is a pure function of the pair

    (query fingerprint, access-schema fingerprint)

and can be computed once and reused for every later request.  This
module is that memo table: a bounded, thread-safe LRU from cache keys to
:class:`CompiledQuery` entries, with hit/miss counters so benchmarks can
report amortization honestly.

Negative results are cached too: a query that is *not* boundedly
evaluable still costs a coverage fixpoint to diagnose, and heavy
repeated traffic repeats uncovered queries just as often as covered
ones.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from ..core.bep import is_boundedly_evaluable
from ..core.decision import Decision, no
from ..engine.optimizer import PhysicalPlan, optimize
from ..engine.plan import EmptyOp, Plan
from ..query.normalize import query_fingerprint
from ..schema.access import AccessSchema
from .lru import LruDict


def _value_dependent(decision: Decision, plan: Plan) -> bool:
    """Did a YES verdict lean on constant (in)equality reasoning?

    The static pipeline treats ``$param`` placeholders as opaque,
    pairwise-distinct constants.  Plan *shape* never depends on a
    constant's value, so one compilation soundly serves every binding —
    except where the pipeline concluded *emptiness* from constants being
    distinct: the chase's constant clash and pigeonhole rules, the
    classical-unsatisfiability ``EmptyOp`` shortcut of the plan builder
    (Example 3.12), and UCQ disjuncts dropped as A-unsatisfiable or
    subsumed.  A binding equating two placeholder values (or a
    placeholder with a literal) can contradict those verdicts, so such
    plans must not be reused across bindings.

    The test is deliberately conservative: it does not track which
    constants a derivation actually compared, so a clash among literals
    only (no placeholder involved) also routes the query to the scan
    fallback — still correct for every binding, merely unamortized.
    """
    if decision.details.get("method") == "unsatisfiable":
        return True
    if decision.details.get("value_dependent"):
        return True
    return any(isinstance(op, EmptyOp) for op in plan.steps)


@dataclass(frozen=True)
class PlanCacheKey:
    """``(fingerprint(Q), fingerprint(A))`` — what a compiled plan is a
    function of."""

    query_fp: str
    access_fp: str


@dataclass
class CompiledQuery:
    """Everything the static pipeline produced for one query.

    ``plan`` (the certified logical plan) and ``physical`` (its
    optimized, executable form) are present exactly when the query is
    boundedly evaluable (or A-unsatisfiable, in which case they are the
    empty plan); otherwise the service falls back to scan-based
    evaluation and ``reason`` explains why.  The optimizer runs here,
    at compile time, once — warm requests execute ``physical`` (bound
    per request for templates) without ever re-optimizing.
    """

    query: object
    decision: Decision
    plan: Plan | None
    parameters: frozenset[str]
    physical: PhysicalPlan | None = None
    #: Process-unique id, a safe key for downstream memo tables (ids of
    #: garbage-collected entries are never reused, unlike ``id()``).
    serial: int = field(default_factory=itertools.count().__next__)

    @property
    def bounded(self) -> bool:
        return self.plan is not None

    @property
    def reason(self) -> str:
        return self.decision.reason


@dataclass
class CacheInfo:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.1%}), {self.size}/{self.capacity} "
                f"entries, {self.evictions} evictions")


class PlanCache:
    """A bounded LRU over :class:`CompiledQuery` entries.

    >>> cache = PlanCache(capacity=2)
    >>> cache.info().capacity
    2
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: LruDict = LruDict(capacity)
        # Source-text front: (text, access fp) -> key, so a repeated
        # *textual* query skips tokenizing and parsing as well.
        self._text_keys: LruDict = LruDict(capacity)

    def get(self, key: PlanCacheKey) -> CompiledQuery | None:
        return self._entries.get(key)

    def put(self, key: PlanCacheKey, entry: CompiledQuery) -> None:
        self._entries.put(key, entry)

    def compile(self, query, access_schema: AccessSchema,
                statistics=None) -> tuple[CompiledQuery, bool]:
        """Look up (or run and memoize) the static pipeline for ``query``.

        Returns ``(entry, cached)``.  ``query`` may be any parsed query
        object; parameter placeholders are compiled as opaque constants,
        so one compilation serves every binding of a template.  The
        optimizer runs as the pipeline's last stage, so cached entries
        carry a ready-to-execute physical plan; ``statistics``
        (:class:`~repro.storage.statistics.TableStatistics`, or a
        zero-arg callable producing one — taken only on a miss) steers
        its join ordering when provided.
        """
        key = PlanCacheKey(query_fingerprint(query, access_schema.schema),
                           access_schema.fingerprint())
        entry = self.get(key)
        if entry is not None:
            return entry, True
        decision = is_boundedly_evaluable(query, access_schema)
        parameters = (frozenset(query.parameters())
                      if hasattr(query, "parameters") else frozenset())
        plan = physical = None
        if decision.is_yes:
            plan = decision.witness["plan"]
            if parameters and _value_dependent(decision, plan):
                # The verdict holds only for the placeholders-as-
                # distinct-constants reading; no single plan is correct
                # for every binding.  Serve the query through the scan
                # fallback, which evaluates the *bound* AST per request.
                decision = no(
                    "the bounded-evaluability verdict depends on the "
                    f"placeholder values ({decision.reason}); "
                    "parameterized queries take the scan fallback so "
                    "every binding is answered correctly",
                    witness=decision.witness, method="value-dependent")
                plan = None
            else:
                physical = optimize(plan, statistics)
        entry = CompiledQuery(query=query, decision=decision, plan=plan,
                              parameters=parameters, physical=physical)
        self.put(key, entry)
        return entry, False

    def compile_text(self, text: str, access_schema: AccessSchema,
                     parse, statistics=None) -> tuple[CompiledQuery, bool]:
        """Like :meth:`compile` for source text; repeated texts also skip
        the parser.  ``parse`` maps text to a query object (injected so
        this module stays parser-agnostic)."""
        access_fp = access_schema.fingerprint()
        text_key = (text, access_fp)
        key = self._text_keys.get(text_key, count=False)
        if key is not None:
            entry = self.get(key)
            if entry is not None:
                return entry, True
        query = parse(text)
        key = PlanCacheKey(query_fingerprint(query, access_schema.schema),
                           access_fp)
        self._text_keys.put(text_key, key)
        return self.compile(query, access_schema, statistics)

    def clear(self) -> None:
        self._entries.clear()
        self._text_keys.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(hits=self._entries.hits,
                         misses=self._entries.misses,
                         evictions=self._entries.evictions,
                         size=len(self._entries),
                         capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)
