"""LRU cache for compiled queries: the static half of the service.

The paper's central observation is that a covered query's plan and cost
certificate are determined by ``Q`` and ``A`` *only* (Section 2) — not
by the instance, not by request time.  So the expensive static pipeline
(parse → normalize → coverage fixpoint → plan construction → cost
certificate) is a pure function of the pair

    (query fingerprint, access-schema fingerprint)

and can be computed once and reused for every later request.  This
module is that memo table: a bounded, thread-safe LRU from cache keys to
:class:`CompiledQuery` entries, with hit/miss counters so benchmarks can
report amortization honestly.

Negative results are cached too: a query that is *not* boundedly
evaluable still costs a coverage fixpoint to diagnose, and heavy
repeated traffic repeats uncovered queries just as often as covered
ones.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

from ..core.bep import is_boundedly_evaluable
from ..core.decision import Decision, no
from ..engine.optimizer import PhysicalPlan, optimize
from ..engine.plan import EmptyOp, Plan
from ..query.normalize import query_fingerprint
from ..schema.access import AccessSchema
from .lru import LruDict


def _value_dependent(decision: Decision, plan: Plan) -> bool:
    """Did a YES verdict lean on constant (in)equality reasoning?

    The static pipeline treats ``$param`` placeholders as opaque,
    pairwise-distinct constants.  Plan *shape* never depends on a
    constant's value, so one compilation soundly serves every binding —
    except where the pipeline concluded *emptiness* from constants being
    distinct: the chase's constant clash and pigeonhole rules, the
    classical-unsatisfiability ``EmptyOp`` shortcut of the plan builder
    (Example 3.12), and UCQ disjuncts dropped as A-unsatisfiable or
    subsumed.  A binding equating two placeholder values (or a
    placeholder with a literal) can contradict those verdicts, so such
    plans must not be reused across bindings.

    The test is deliberately conservative: it does not track which
    constants a derivation actually compared, so a clash among literals
    only (no placeholder involved) also routes the query to the scan
    fallback — still correct for every binding, merely unamortized.
    """
    if decision.details.get("method") == "unsatisfiable":
        return True
    if decision.details.get("value_dependent"):
        return True
    return any(isinstance(op, EmptyOp) for op in plan.steps)


@dataclass(frozen=True)
class PlanCacheKey:
    """``(fingerprint(Q), fingerprint(A))`` — what a compiled plan is a
    function of."""

    query_fp: str
    access_fp: str


@dataclass
class CompiledQuery:
    """Everything the static pipeline produced for one query.

    ``plan`` (the certified logical plan) and ``physical`` (its
    optimized, executable form) are present exactly when the query is
    boundedly evaluable (or A-unsatisfiable, in which case they are the
    empty plan); otherwise the service falls back to scan-based
    evaluation and ``reason`` explains why.  The optimizer runs here,
    at compile time, once — warm requests execute ``physical`` (bound
    per request for templates) without ever re-optimizing.
    """

    query: object
    decision: Decision
    plan: Plan | None
    parameters: frozenset[str]
    physical: PhysicalPlan | None = None
    #: Process-unique id, a safe key for downstream memo tables (ids of
    #: garbage-collected entries are never reused, unlike ``id()``).
    serial: int = field(default_factory=itertools.count().__next__)

    @property
    def bounded(self) -> bool:
        return self.plan is not None

    @property
    def reason(self) -> str:
        return self.decision.reason


@dataclass
class CacheInfo:
    """A point-in-time snapshot of one cache's counters."""

    hits: int = 0
    misses: int = 0
    evictions: int = 0
    size: int = 0
    capacity: int = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __str__(self) -> str:
        return (f"{self.hits} hits / {self.misses} misses "
                f"({self.hit_rate:.1%}), {self.size}/{self.capacity} "
                f"entries, {self.evictions} evictions")


class PlanCache:
    """A bounded LRU over :class:`CompiledQuery` entries.

    >>> cache = PlanCache(capacity=2)
    >>> cache.info().capacity
    2
    """

    def __init__(self, capacity: int = 256):
        self.capacity = capacity
        self._entries: LruDict = LruDict(capacity)
        # Source-text front: (text, access fp) -> key, so a repeated
        # *textual* query skips tokenizing and parsing as well.
        self._text_keys: LruDict = LruDict(capacity)

    def get(self, key: PlanCacheKey) -> CompiledQuery | None:
        return self._entries.get(key)

    def put(self, key: PlanCacheKey, entry: CompiledQuery) -> None:
        self._entries.put(key, entry)

    def compile(self, query, access_schema: AccessSchema,
                statistics=None) -> tuple[CompiledQuery, bool]:
        """Look up (or run and memoize) the static pipeline for ``query``.

        Returns ``(entry, cached)``.  ``query`` may be any parsed query
        object; parameter placeholders are compiled as opaque constants,
        so one compilation serves every binding of a template.  The
        optimizer runs as the pipeline's last stage, so cached entries
        carry a ready-to-execute physical plan; ``statistics``
        (:class:`~repro.storage.statistics.TableStatistics`, or a
        zero-arg callable producing one — taken only on a miss) steers
        its join ordering when provided.
        """
        key = PlanCacheKey(query_fingerprint(query, access_schema.schema),
                           access_schema.fingerprint())
        entry = self.get(key)
        if entry is not None:
            return entry, True
        decision = is_boundedly_evaluable(query, access_schema)
        parameters = (frozenset(query.parameters())
                      if hasattr(query, "parameters") else frozenset())
        plan = physical = None
        if decision.is_yes:
            plan = decision.witness["plan"]
            if parameters and _value_dependent(decision, plan):
                # The verdict holds only for the placeholders-as-
                # distinct-constants reading; no single plan is correct
                # for every binding.  Serve the query through the scan
                # fallback, which evaluates the *bound* AST per request.
                decision = no(
                    "the bounded-evaluability verdict depends on the "
                    f"placeholder values ({decision.reason}); "
                    "parameterized queries take the scan fallback so "
                    "every binding is answered correctly",
                    witness=decision.witness, method="value-dependent")
                plan = None
            else:
                physical = optimize(plan, statistics)
        entry = CompiledQuery(query=query, decision=decision, plan=plan,
                              parameters=parameters, physical=physical)
        self.put(key, entry)
        return entry, False

    def compile_text(self, text: str, access_schema: AccessSchema,
                     parse, statistics=None) -> tuple[CompiledQuery, bool]:
        """Like :meth:`compile` for source text; repeated texts also skip
        the parser.  ``parse`` maps text to a query object (injected so
        this module stays parser-agnostic)."""
        access_fp = access_schema.fingerprint()
        text_key = (text, access_fp)
        key = self._text_keys.get(text_key, count=False)
        if key is not None:
            entry = self.get(key)
            if entry is not None:
                return entry, True
        query = parse(text)
        key = PlanCacheKey(query_fingerprint(query, access_schema.schema),
                           access_fp)
        self._text_keys.put(text_key, key)
        return self.compile(query, access_schema, statistics)

    def clear(self) -> None:
        self._entries.clear()
        self._text_keys.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(hits=self._entries.hits,
                         misses=self._entries.misses,
                         evictions=self._entries.evictions,
                         size=len(self._entries),
                         capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class FetchProfile:
    """What one compiled plan reads, extracted from its physical fetch
    ops — the evidence behind an answer-cache entry's freshness.

    Fetch ops are the *only* physical ops that touch stored data
    (everything else transforms batches), so ``relations`` is the
    complete read set of the plan, for every binding: binding a
    template substitutes constants, never constraints.  ``maintainable``
    says whether every fetched constraint is *exactly* attached to
    ``access_schema`` — only then does the backend's delta stream
    describe all changes observable through the plan's reads, letting
    the answer cache ride out writes that change nothing the plan can
    see.
    """

    relations: frozenset[str]
    #: relation -> the constraints the plan fetches from it.
    constraints: dict[str, frozenset]
    maintainable: bool
    #: The schema the verdict was computed against (identity matters:
    #: a reattach voids the verdict, so stores re-check it).
    schema: object = None

    @classmethod
    def of(cls, physical: PhysicalPlan,
           access_schema: AccessSchema) -> "FetchProfile":
        constraints: dict[str, set] = {}
        for op in physical.fetch_ops():
            constraints.setdefault(
                op.constraint.relation_name, set()).add(op.constraint)
        attached = list(access_schema) if access_schema is not None else []
        maintainable = all(
            any(candidate == constraint for candidate in attached)
            for per_relation in constraints.values()
            for constraint in per_relation)
        return cls(relations=frozenset(constraints),
                   constraints={relation: frozenset(per_relation)
                                for relation, per_relation
                                in constraints.items()},
                   maintainable=maintainable,
                   schema=access_schema)


class AnswerCache:
    """Materialized template answers, kept fresh by write deltas.

    The plan cache amortizes *compilation*; this cache amortizes
    *execution*: a repeated ``(compiled query, binding)`` pair returns
    its answer set without touching the executor at all.  Soundness
    rests on two independent mechanisms:

    * every entry records the write generation of each relation its
      plan fetches, read *before* the execution that produced the
      answers; a lookup re-validates them and discards on any mismatch
      — stale answers are unservable even if every other mechanism
      fails;
    * the backend's write-delta stream eagerly repairs or drops
      entries: a delta that changes nothing observable through the
      plan's (exactly-attached) constraints merely advances the
      entry's recorded generation — the answer provably cannot have
      changed — while an observable change, a wipe, or a gap drops the
      entry.

    >>> cache = AnswerCache(capacity=8)
    >>> cache.info().size, cache.maintained_entries
    (0, 0)
    """

    def __init__(self, capacity: int = 1024):
        self.capacity = capacity
        self._entries: LruDict = LruDict(capacity)
        # Guards the relation -> keys registry and the counters; never
        # held while calling into the backend (the delta listener runs
        # under the backend's write lock).
        self._lock = threading.Lock()
        self._by_relation: dict[str, set] = {}
        #: Entries dropped because a write observably changed a fetched
        #: group (or the delta could not be applied exactly).
        self.maintenance_invalidations = 0
        #: Entry validations advanced past a write that changed nothing
        #: the entry's plan can observe.
        self.maintained_entries = 0

    def lookup(self, db, key):
        """The cached answers for ``key``, or ``None``.

        Validates every recorded dependency generation against the
        database before serving; a mismatch discards the entry (the
        delta that should have dropped it was unappliable or raced the
        store) and counts a miss.
        """
        entry = self._entries.get(key, count=False)
        if entry is None:
            self._entries.record_misses(1)
            return None
        answers, dependencies, _ = entry
        for relation, generation in dependencies.items():
            if db.generation(relation) != generation:
                self._entries.discard(key)
                with self._lock:
                    self.maintenance_invalidations += 1
                self._entries.record_misses(1)
                return None
        self._entries.record_hits(1)
        return answers

    def store(self, key, answers, dependencies: dict[str, int],
              profile: FetchProfile) -> None:
        """Cache ``answers`` for ``key``.

        ``dependencies`` must be the per-relation generations read
        *before* the execution that produced ``answers``: a write
        landing mid-execution then leaves the entry's stamp behind the
        current generation, so the lookup-time validation refuses it.
        """
        self._entries.put(key, (answers, dependencies, profile))
        with self._lock:
            for relation in profile.relations:
                self._by_relation.setdefault(relation, set()).add(key)

    def _on_delta(self, delta) -> None:
        """The backend's write listener: repair or drop the entries
        that depend on the written relation.  Runs on the writer's
        thread under the backend's write lock — O(dependent entries),
        never O(cache)."""
        with self._lock:
            keys = self._by_relation.get(delta.relation)
            if not keys:
                return
            survivors = set()
            maintained = dropped = 0
            for key in keys:
                entry = self._entries.get(key, count=False)
                if entry is None:
                    continue  # evicted: let the ghost registration go
                _, dependencies, profile = entry
                if self._survives(delta, dependencies, profile):
                    dependencies[delta.relation] = delta.new_generation
                    maintained += 1
                    survivors.add(key)
                else:
                    self._entries.discard(key)
                    dropped += 1
            if survivors:
                self._by_relation[delta.relation] = survivors
            else:
                del self._by_relation[delta.relation]
            self.maintained_entries += maintained
            self.maintenance_invalidations += dropped

    @staticmethod
    def _survives(delta, dependencies: dict[str, int],
                  profile: FetchProfile) -> bool:
        """Does the entry's answer set provably survive this write?

        Only when the delta extends the entry's recorded generation
        exactly (no gap, no wipe), the plan's constraints on this
        relation are all exactly attached (so the delta sees what the
        plan sees), and none of them gained or lost a distinct
        projection.  A duplicate insert or a delete of a multiply-
        witnessed row changes nothing observable through any
        constraint, so the answers stand.
        """
        if not delta.maintainable or not profile.maintainable:
            return False
        if dependencies.get(delta.relation) != delta.old_generation:
            return False
        fetched = profile.constraints.get(delta.relation, frozenset())
        for constraint, changes in delta.constraints.items():
            if constraint in fetched and (changes.added or changes.removed):
                return False
        return True

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._by_relation.clear()

    def info(self) -> CacheInfo:
        return CacheInfo(hits=self._entries.hits,
                         misses=self._entries.misses,
                         evictions=self._entries.evictions,
                         size=len(self._entries),
                         capacity=self.capacity)

    def __len__(self) -> int:
        return len(self._entries)
