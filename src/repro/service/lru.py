"""One thread-safe bounded LRU map, shared by every service-layer cache.

The plan cache, its source-text front, the fetch cache and the
bound-plan memo all need the same thing: a lock-guarded
``OrderedDict`` with move-to-end on access, eviction past a capacity,
and hit/miss/eviction counters.  Keeping a single implementation keeps
their eviction and accounting behaviour identical.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any


class LruDict:
    """A bounded, thread-safe LRU mapping.

    ``None`` is reserved as the miss sentinel and may not be stored.

    >>> lru = LruDict(capacity=2)
    >>> lru.put("a", 1); lru.put("b", 2); lru.put("c", 3)
    >>> lru.get("a") is None, lru.get("c"), lru.evictions
    (True, 3, 1)
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError(f"LRU capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._data: "OrderedDict[Any, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key, count: bool = True):
        """The stored value, or ``None``; refreshes recency on a hit.

        ``count=False`` leaves the hit/miss counters alone (for
        internal bookkeeping lookups that should not skew reported
        rates).
        """
        with self._lock:
            value = self._data.get(key)
            if value is None:
                if count:
                    self.misses += 1
                return None
            self._data.move_to_end(key)
            if count:
                self.hits += 1
            return value

    def get_many(self, keys, count: bool = True) -> list:
        """Batched :meth:`get`: one lock pass for a whole key batch,
        returning a value-or-``None`` list aligned with ``keys``."""
        with self._lock:
            values = []
            hits = misses = 0
            for key in keys:
                value = self._data.get(key)
                if value is None:
                    misses += 1
                else:
                    self._data.move_to_end(key)
                    hits += 1
                values.append(value)
            if count:
                self.hits += hits
                self.misses += misses
            return values

    def put_many(self, items) -> None:
        """Batched :meth:`put` of ``(key, value)`` pairs under one lock."""
        with self._lock:
            for key, value in items:
                if value is None:
                    raise ValueError("LruDict cannot store None")
                self._data[key] = value
                self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def put(self, key, value) -> None:
        if value is None:
            raise ValueError("LruDict cannot store None")
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def discard(self, key) -> bool:
        """Drop one entry if present; returns whether it was.  Not an
        eviction (the caller invalidated it, it was not crowded out)."""
        with self._lock:
            return self._data.pop(key, None) is not None

    def record_hits(self, count: int) -> None:
        """Count hits decided outside the map (callers that validate a
        :meth:`get` result before honouring it report here, so the
        hit/miss tallies still describe what was actually served)."""
        with self._lock:
            self.hits += count

    def record_misses(self, count: int) -> None:
        """Count misses decided outside the map — e.g. a whole batch
        bypassing :meth:`get_many` because its entries are known to be
        unservable."""
        with self._lock:
            self.misses += count

    def prune(self, predicate) -> int:
        """Drop every entry whose ``predicate(key)`` is true, under one
        lock pass; returns the drop count.  Pruned entries are not
        counted as evictions (they were unservable, not crowded out)."""
        with self._lock:
            doomed = [key for key in self._data if predicate(key)]
            for key in doomed:
                del self._data[key]
            return len(doomed)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)
