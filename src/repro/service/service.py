"""The persistent bounded-evaluation service.

:class:`BoundedQueryService` wraps one :class:`~repro.storage.database.
Database` for serving heavy repeated query traffic.  Where the one-shot
pipeline (``repro.cli analyze/run``) re-runs parse → coverage fixpoint →
plan construction → fetch on every call, the service amortizes each
stage across requests:

* a :class:`~repro.service.plancache.PlanCache` memoizes the whole
  static pipeline per (query, access-schema) fingerprint — sound
  because plans and certificates are functions of Q and A only;
* :mod:`~repro.service.templates` compile a parameterized query once
  and bind constants per request with a single pass over the plan;
* a :class:`~repro.service.fetchcache.FetchCache` memoizes the (small,
  provably bounded) per-X-value fetch results, invalidated by the
  database's per-relation write generations;
* :mod:`~repro.service.batch` fans requests across a thread pool and
  aggregates service-level metrics.

Queries that are *not* boundedly evaluable still get answers: the
service transparently falls back to the scan-based evaluator and
reports the scan accounting instead, so callers can see exactly which
traffic is certified-bounded and which is paying full price.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..deadline import Deadline, deadline_scope
from ..engine.executor import AccessStats
from ..engine.naive import ScanStats, evaluate
from ..engine.optimizer.specialize import specialized_plan
from ..errors import DeadlineExceeded, ServiceError
from ..obs.instruments import (RequestMetrics, attach_admission_collector,
                               attach_cache_collector,
                               attach_database_collector,
                               attach_storage_collector)
from ..obs.metrics import MetricsRegistry
from ..obs.trace import span
from ..query.ast import CQ, UCQ, PositiveQuery
from ..query.parser import parse_query
from ..schema.access import AccessSchema
from ..storage.database import Database
from ..storage.statistics import TableStatistics
from .batch import BatchReport, BatchRequest, run_batch
from .fetchcache import CachingExecutor, FetchCache
from .lru import LruDict
from .plancache import (AnswerCache, CacheInfo, CompiledQuery, FetchProfile,
                        PlanCache)
from .templates import QueryTemplate, bind_physical_plan, bind_query


@dataclass
class ServiceResult:
    """One answered request.

    ``stats`` carries index-access accounting for bounded execution;
    ``scan_stats`` carries scan accounting for fallback execution.
    Exactly one of the two is set (enforced at construction).
    """

    answers: set[tuple]
    bounded: bool
    plan_cached: bool
    latency_s: float
    reason: str = ""
    stats: AccessStats | None = None
    scan_stats: ScanStats | None = None
    #: Served straight from the answer cache: no execution ran, so
    #: ``stats`` is all zeros (no index was touched).
    answers_cached: bool = False

    def __post_init__(self):
        if (self.stats is None) == (self.scan_stats is None):
            raise ValueError(
                "a ServiceResult carries exactly one of stats= (bounded "
                "accounting) or scan_stats= (fallback accounting); got "
                f"{'both' if self.stats is not None else 'neither'}")

    @property
    def latency_ms(self) -> float:
        return self.latency_s * 1e3


@dataclass
class ServiceStats:
    """A point-in-time snapshot of the service's counters."""

    requests: int = 0
    bounded_requests: int = 0
    fallback_requests: int = 0
    #: Requests the serving tier refused before execution because the
    #: admission queue was full (overload shedding, HTTP 429).
    shed_requests: int = 0
    #: Requests refused before execution because the certified cost
    #: bound exceeded the tenant's budget (the paper's admission signal).
    rejected_requests: int = 0
    #: Requests aborted mid-execution by an expired deadline.
    deadline_exceeded_requests: int = 0
    templates: int = 0
    plan_cache: CacheInfo = field(default_factory=CacheInfo)
    fetch_cache: CacheInfo = field(default_factory=CacheInfo)
    #: Counters of the (opt-in) materialized answer cache; all zeros
    #: when ``answer_cache_size=0``.
    answer_cache: CacheInfo = field(default_factory=CacheInfo)
    #: The storage engine's internal tallies
    #: (:meth:`~repro.storage.backend.StorageBackend.counters`) — empty
    #: for engines with nothing to report; WAL/fsync/snapshot/recovery
    #: counts for the disk engine; RPC and replication tallies for the
    #: process-sharded one.
    storage: dict = field(default_factory=dict)
    #: Point-in-time storage levels
    #: (:meth:`~repro.storage.backend.StorageBackend.gauges`):
    #: dictionary footprint bytes for every engine, live worker and
    #: replica counts for the process-sharded one.
    storage_gauges: dict = field(default_factory=dict)

    def __str__(self) -> str:
        text = (f"requests: {self.requests} "
                f"({self.bounded_requests} bounded, "
                f"{self.fallback_requests} fallback); "
                f"shed: {self.shed_requests}; "
                f"rejected: {self.rejected_requests}; "
                f"deadline-exceeded: {self.deadline_exceeded_requests}; "
                f"templates: {self.templates}; "
                f"plan cache: {self.plan_cache}; "
                f"fetch cache: {self.fetch_cache}")
        if self.storage:
            tallies = ", ".join(f"{key}: {value}"
                                for key, value in self.storage.items())
            text += f"; storage: {tallies}"
        return text


class BoundedQueryService:
    """A long-lived query service over one database instance.

    >>> from repro.workload.accidents import simple_accidents
    >>> service = BoundedQueryService(simple_accidents())
    >>> template = service.register_template(
    ...     "by_date",
    ...     "Q(d) :- Accident(aid, d, t), t = $date")
    >>> sorted(template.parameters)
    ['date']
    """

    def __init__(self, db: Database,
                 access_schema: AccessSchema | None = None,
                 plan_cache_size: int = 256,
                 fetch_cache_size: int = 4096,
                 answer_cache_size: int = 0,
                 registry: MetricsRegistry | None = None,
                 attach: bool = True):
        self.db = db
        if access_schema is None:
            access_schema = db.access_schema
            if access_schema is None or not len(access_schema):
                raise ServiceError(
                    "the database has no access schema; bounded "
                    "evaluation needs the constraints' indexes — attach "
                    "one or run `repro discover`")
        else:
            if not len(access_schema):
                raise ServiceError(
                    "the supplied access schema is empty; bounded "
                    "evaluation needs the constraints' indexes — pass a "
                    "non-empty schema or run `repro discover`")
            if attach and db.access_schema is not access_schema:
                db.attach_access_schema(access_schema)
            # attach=False: compile against access_schema while the
            # database keeps its own (wider) attached schema — the
            # multi-tenant arrangement, one service per tenant over a
            # shared Database.  Execution resolves each tenant
            # constraint structurally against the attached indexes.
        self.access_schema = access_schema
        self.plan_cache = PlanCache(plan_cache_size)
        self.fetch_cache = FetchCache(fetch_cache_size)
        # Subscribe the fetch cache to the backend's write-delta
        # stream: entries over exactly-attached constraints are then
        # maintained in place instead of cold-starting on every write.
        self.fetch_cache.attach_maintenance(db)
        # Materialized answers are opt-in (answer_cache_size > 0):
        # cached requests skip execution entirely, so their AccessStats
        # report zero index accesses — workloads that audit per-request
        # accounting should leave this off.
        self.answer_cache: AnswerCache | None = None
        if answer_cache_size > 0:
            self.answer_cache = AnswerCache(answer_cache_size)
            db.backend.add_write_listener(self.answer_cache._on_delta)
        # Per-compiled-query fetch profiles (what the plan reads),
        # voided wholesale when the attached schema changes.
        self._fetch_profiles: dict[int, FetchProfile] = {}
        self._profile_schema = None
        self._templates: dict[str, QueryTemplate] = {}
        # Bound-plan memo: repeated identical bindings of one compiled
        # query skip even the constant-substitution pass.  Plans are
        # value-independent, so entries never go stale.
        self._bound_plans: LruDict = LruDict(max(64, plan_cache_size * 4))
        self._lock = threading.Lock()
        self._requests = 0
        self._bounded_requests = 0
        self._fallback_requests = 0
        self._shed_requests = 0
        self._rejected_requests = 0
        self._deadline_exceeded_requests = 0
        # Observability is strictly opt-in: with no registry the hot
        # path pays one attribute check per request, nothing more.
        self.registry = registry
        self._request_metrics: RequestMetrics | None = None
        if registry is not None:
            self._request_metrics = RequestMetrics(registry)
            attach_cache_collector(registry, self)
            attach_admission_collector(registry, self)
            attach_storage_collector(registry, db.backend)
            attach_database_collector(registry, db)

    # -- compilation -------------------------------------------------------

    def compile(self, query) -> CompiledQuery:
        """Compile (or fetch from the plan cache) a query or query text."""
        if isinstance(query, str):
            entry, _ = self.plan_cache.compile_text(
                query, self.access_schema, parse_query, self._statistics)
        else:
            entry, _ = self.plan_cache.compile(query, self.access_schema,
                                               self._statistics)
        return entry

    def _statistics(self) -> TableStatistics:
        """A fresh cardinality snapshot for the optimizer's join
        ordering.  Passed as a *callable* to the plan cache, so it is
        taken only when a compilation actually runs — warm requests
        never pay for it.  Staleness is harmless (physical choices
        only), so no invalidation is needed."""
        return TableStatistics.from_database(self.db)

    def register_template(self, name: str, text: str,
                          replace: bool = False) -> QueryTemplate:
        """Register and compile a parameterized template once.

        The full static pipeline runs here, at registration; later
        bindings only substitute constants into the compiled plan.
        """
        query = parse_query(text)
        entry, _ = self.plan_cache.compile(query, self.access_schema,
                                           self._statistics)
        if (entry.parameters and not entry.bounded
                and not isinstance(query, (CQ, UCQ, PositiveQuery))):
            # The scan fallback binds parameters into positive ASTs
            # only; fail at registration rather than on the first
            # request.
            raise ServiceError(
                f"template {name!r} has parameters but no bounded plan "
                f"({entry.reason}), and non-positive formulas cannot be "
                "bound for the scan fallback; rewrite it as a CQ/UCQ "
                "(':-' rules)")
        template = QueryTemplate(name=name, text=text, compiled=entry)
        with self._lock:
            if name in self._templates and not replace:
                raise ServiceError(
                    f"template {name!r} is already registered; pass "
                    "replace=True to overwrite")
            self._templates[name] = template
        return template

    def template(self, name: str) -> QueryTemplate:
        with self._lock:
            template = self._templates.get(name)
        if template is None:
            known = sorted(self._templates)
            raise ServiceError(
                f"unknown template {name!r}; registered: "
                f"{', '.join(known) if known else '(none)'}")
        return template

    def templates(self) -> list[QueryTemplate]:
        with self._lock:
            return list(self._templates.values())

    # -- execution ---------------------------------------------------------

    def execute(self, query,
                params: Mapping[str, Hashable] | None = None,
                deadline: Deadline | None = None) -> ServiceResult:
        """Answer one query (text or parsed), binding ``params`` if the
        query carries ``$name`` placeholders.

        With ``deadline=`` set, the whole request runs inside its
        scope: the executor, the fetch boundary and the procshard RPC
        layer all observe it ambiently and abort with
        :class:`DeadlineExceeded` once it expires.
        """
        start = time.perf_counter()
        with span("request"), deadline_scope(deadline):
            if isinstance(query, str):
                entry, cached = self.plan_cache.compile_text(
                    query, self.access_schema, parse_query,
                    self._statistics)
            else:
                entry, cached = self.plan_cache.compile(query,
                                                        self.access_schema,
                                                        self._statistics)
            return self._run(entry, cached, params or {}, start,
                             where="execute")

    def execute_template(self, name: str,
                         params: Mapping[str, Hashable],
                         deadline: Deadline | None = None) -> ServiceResult:
        """Answer one bound template request — the per-user hot path."""
        start = time.perf_counter()
        with span("request"), deadline_scope(deadline):
            template = self.template(name)
            return self._run(template.compiled, True, params, start,
                             where=f"template {name!r}")

    def _run(self, entry: CompiledQuery, plan_cached: bool,
             params: Mapping[str, Hashable], start: float,
             where: str) -> ServiceResult:
        answers_cached = False
        try:
            if entry.bounded:
                # The hot path runs the *optimized physical* plan
                # straight from the cache: binding is one constant-
                # substitution pass, never a re-parse, re-plan or
                # re-optimize.
                with span("bind"):
                    plan = self._bound_plan(entry, params, where)
                key = (self._answer_key(entry, params)
                       if self.answer_cache is not None else None)
                answers = (self.answer_cache.lookup(self.db, key)
                           if key is not None else None)
                if answers is not None:
                    answers_cached = True
                    stats, scan = AccessStats(), None
                else:
                    profile = dependencies = None
                    if key is not None:
                        # Dependency generations are read before the
                        # execution they vouch for: a write landing
                        # mid-run leaves the stamp behind, so the entry
                        # can never validate as current.
                        profile = self._fetch_profile(entry)
                        dependencies = {
                            relation: self.db.generation(relation)
                            for relation in profile.relations}
                    result = CachingExecutor(
                        self.db, self.fetch_cache).execute(plan)
                    answers, stats, scan = (result.answers, result.stats,
                                            None)
                    if key is not None and (self.db.access_schema
                                            is profile.schema):
                        self.answer_cache.store(key, answers, dependencies,
                                                profile)
            else:
                with span("bind"):
                    query = bind_query(entry.query, entry.parameters,
                                       params, where=where)
                scan = ScanStats()
                with span("execute"):
                    answers = evaluate(query, self.db, scan)
                stats = None
        except DeadlineExceeded:
            with self._lock:
                self._requests += 1
                self._deadline_exceeded_requests += 1
            raise
        latency = time.perf_counter() - start
        with self._lock:
            self._requests += 1
            if entry.bounded:
                self._bounded_requests += 1
            else:
                self._fallback_requests += 1
        outcome = ServiceResult(answers=answers, bounded=entry.bounded,
                                plan_cached=plan_cached, latency_s=latency,
                                reason=entry.reason, stats=stats,
                                scan_stats=scan,
                                answers_cached=answers_cached)
        if self._request_metrics is not None:
            self._request_metrics.observe(outcome)
        return outcome

    def _answer_key(self, entry: CompiledQuery,
                    params: Mapping[str, Hashable]):
        """The answer-cache key for one bound request, or ``None`` when
        the binding is unhashable (such requests execute uncached)."""
        try:
            key = (entry.serial, tuple(sorted(params.items())))
            hash(key)
        except TypeError:
            return None
        return key

    def _fetch_profile(self, entry: CompiledQuery) -> FetchProfile:
        """``entry``'s fetch profile, memoized per compiled query
        against the identity of the currently attached schema."""
        schema = self.db.access_schema
        if schema is not self._profile_schema:
            self._fetch_profiles = {}
            self._profile_schema = schema
        profile = self._fetch_profiles.get(entry.serial)
        if profile is None:
            profile = FetchProfile.of(entry.physical, schema)
            self._fetch_profiles[entry.serial] = profile
        return profile

    def _bound_plan(self, entry: CompiledQuery,
                    params: Mapping[str, Hashable], where: str):
        """The compiled *physical* plan with ``params`` substituted,
        memoized per (compiled query, binding).

        Each plan is eagerly *specialized* here (memoized on the plan
        object, see :mod:`repro.engine.optimizer.specialize`), so the
        closure compilation and constant encoding happen at bind time —
        the execute span runs pre-built steps only.
        """
        dictionary = self.db.dictionary
        if not entry.parameters and not params:
            specialized_plan(entry.physical, dictionary)
            return entry.physical
        try:
            key = (entry.serial, tuple(sorted(params.items())))
            hash(key)
        except TypeError:  # unhashable binding value: bind uncached
            plan = bind_physical_plan(entry.physical, entry.parameters,
                                      params, where=where)
            specialized_plan(plan, dictionary)
            return plan
        plan = self._bound_plans.get(key, count=False)
        if plan is not None:
            return plan
        plan = bind_physical_plan(entry.physical, entry.parameters, params,
                                  where=where)
        specialized_plan(plan, dictionary)
        self._bound_plans.put(key, plan)
        return plan

    def execute_batch(self, requests: Sequence[BatchRequest],
                      max_workers: int = 4,
                      fail_fast: bool = False) -> BatchReport:
        """Run many requests concurrently; see :mod:`repro.service.batch`."""
        return run_batch(self, requests, max_workers=max_workers,
                         fail_fast=fail_fast)

    # -- admission accounting (the serving tier records, we count) ---------

    def record_shed(self) -> None:
        """Count one request refused because the admission queue was
        full — the serving tier's 429 shed path."""
        with self._lock:
            self._shed_requests += 1

    def record_rejected(self) -> None:
        """Count one request refused because its certified cost bound
        exceeded the tenant budget, before any execution."""
        with self._lock:
            self._rejected_requests += 1

    # -- maintenance -------------------------------------------------------

    def clear_caches(self) -> None:
        """Drop compiled plans, cached fetches and cached answers
        (templates stay)."""
        self.plan_cache.clear()
        self.fetch_cache.clear()
        self._bound_plans.clear()
        if self.answer_cache is not None:
            self.answer_cache.clear()

    def sweep_caches(self) -> int:
        """Purge fetch-cache entries whose write generation has gone
        stale — the housekeeping loop's periodic sweep."""
        return self.fetch_cache.sweep(self.db)

    def stats(self) -> ServiceStats:
        with self._lock:
            requests = self._requests
            bounded = self._bounded_requests
            fallback = self._fallback_requests
            shed = self._shed_requests
            rejected = self._rejected_requests
            deadline_exceeded = self._deadline_exceeded_requests
            templates = len(self._templates)
        backend = self.db.backend
        return ServiceStats(requests=requests,
                            bounded_requests=bounded,
                            fallback_requests=fallback,
                            shed_requests=shed,
                            rejected_requests=rejected,
                            deadline_exceeded_requests=deadline_exceeded,
                            templates=templates,
                            plan_cache=self.plan_cache.info(),
                            fetch_cache=self.fetch_cache.info(),
                            answer_cache=(self.answer_cache.info()
                                          if self.answer_cache is not None
                                          else CacheInfo()),
                            storage=backend.counters(),
                            storage_gauges=getattr(
                                backend, "gauges", dict)())
