"""Concurrent batch execution and service-level metrics.

A batch is a list of :class:`BatchRequest`s — raw query texts or
``(template, params)`` bindings — executed across a
``ThreadPoolExecutor``.  Requests are independent reads: plans are
immutable once compiled, the executor materializes its own tables, and
both caches take their own locks, so requests parallelize without
coordination.

Per-request :class:`~repro.engine.executor.AccessStats` are aggregated
into a :class:`BatchReport` with the numbers a service operator watches:
p50/p95/mean latency, throughput, fetch counts (cold vs cache-served)
and cache hit rates.
"""

from __future__ import annotations

import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Hashable, Mapping, Sequence

from ..engine.executor import AccessStats
from ..errors import ReproError
from ..obs.metrics import Histogram, LATENCY_BUCKETS


@dataclass(frozen=True)
class BatchRequest:
    """One unit of batch work: a raw query or a template binding."""

    query: str | None = None
    template: str | None = None
    params: Mapping[str, Hashable] | None = None
    label: str | None = None

    def __post_init__(self):
        if (self.query is None) == (self.template is None):
            raise ValueError(
                "a BatchRequest needs exactly one of query= or template=")

    def describe(self) -> str:
        if self.label:
            return self.label
        if self.template is not None:
            bound = ", ".join(f"${k}={v!r}"
                              for k, v in sorted((self.params or {}).items()))
            return f"{self.template}({bound})"
        return self.query or "?"


@dataclass
class RequestOutcome:
    """What happened to one request."""

    request: BatchRequest
    result: "ServiceResult | None" = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def latency_s(self) -> float:
        return self.result.latency_s if self.result is not None else 0.0


@dataclass
class BatchReport:
    """Aggregate view over one batch run.

    Latency summaries come from one fixed-bucket
    :class:`~repro.obs.metrics.Histogram` over the successful requests
    — the same estimator the service's metrics registry exports, so a
    batch's p50/p95 and a scraped
    ``repro_request_latency_seconds`` agree by construction.  Earlier
    versions kept every raw latency and took *nearest-rank*
    percentiles; the histogram instead interpolates linearly inside the
    containing bucket, so values can differ from nearest-rank by up to
    one bucket's width (sub-millisecond at service latencies).
    ``mean_ms`` is exact either way (the histogram keeps an exact
    sum/count).
    """

    outcomes: list[RequestOutcome] = field(default_factory=list)
    wall_s: float = 0.0
    workers: int = 1

    # -- derived metrics ---------------------------------------------------

    @property
    def requests(self) -> int:
        return len(self.outcomes)

    @property
    def errors(self) -> int:
        return sum(1 for o in self.outcomes if not o.ok)

    @property
    def bounded_requests(self) -> int:
        return sum(1 for o in self.outcomes
                   if o.ok and o.result.bounded)

    def latency_histogram(self) -> Histogram:
        """The successful requests' latencies as one fixed-bucket
        histogram (memoized until the outcome list grows)."""
        cached = getattr(self, "_latency_hist", None)
        if cached is not None and cached[0] == len(self.outcomes):
            return cached[1]
        histogram = Histogram("batch_latency_seconds",
                              buckets=LATENCY_BUCKETS)
        for outcome in self.outcomes:
            if outcome.ok:
                histogram.observe(outcome.latency_s)
        self._latency_hist = (len(self.outcomes), histogram)
        return histogram

    @property
    def p50_ms(self) -> float:
        return self.latency_histogram().p50 * 1e3

    @property
    def p95_ms(self) -> float:
        return self.latency_histogram().p95 * 1e3

    @property
    def mean_ms(self) -> float:
        return self.latency_histogram().mean * 1e3

    @property
    def throughput_rps(self) -> float:
        return self.requests / self.wall_s if self.wall_s > 0 else 0.0

    def access_totals(self) -> AccessStats:
        """Fold every bounded request's accounting into one total."""
        totals = AccessStats()
        for outcome in self.outcomes:
            if outcome.ok and outcome.result.stats is not None:
                totals.merge(outcome.result.stats)
        return totals

    @property
    def fetch_cache_hit_rate(self) -> float:
        totals = self.access_totals()
        lookups = totals.fetch_cache_hits + totals.fetch_cache_misses
        return totals.fetch_cache_hits / lookups if lookups else 0.0

    def summary(self) -> str:
        totals = self.access_totals()
        lines = [
            f"{self.requests} requests ({self.errors} errors, "
            f"{self.bounded_requests} bounded) on {self.workers} workers "
            f"in {self.wall_s * 1e3:.1f}ms "
            f"({self.throughput_rps:.0f} req/s)",
            f"latency p50 {self.p50_ms:.2f}ms  p95 {self.p95_ms:.2f}ms  "
            f"mean {self.mean_ms:.2f}ms",
            f"fetched {totals.tuples_fetched} tuples cold, "
            f"{totals.tuples_from_cache} from cache "
            f"(hit rate {self.fetch_cache_hit_rate:.1%})",
        ]
        return "\n".join(lines)


def run_batch(service, requests: Sequence[BatchRequest],
              max_workers: int = 4,
              fail_fast: bool = False) -> BatchReport:
    """Execute ``requests`` concurrently against ``service``.

    Outcomes keep the input order.  Library errors
    (:class:`~repro.errors.ReproError`) are captured per request;
    with ``fail_fast=True`` the first one propagates instead.
    """
    def run_one(request: BatchRequest) -> RequestOutcome:
        try:
            if request.template is not None:
                result = service.execute_template(request.template,
                                                  request.params or {})
            else:
                result = service.execute(request.query,
                                         request.params or None)
            return RequestOutcome(request, result=result)
        except ReproError as error:
            if fail_fast:
                raise
            return RequestOutcome(request, error=str(error))

    start = time.perf_counter()
    if max_workers <= 1 or len(requests) <= 1:
        outcomes = [run_one(request) for request in requests]
    else:
        with ThreadPoolExecutor(max_workers=max_workers) as pool:
            outcomes = list(pool.map(run_one, requests))
    wall = time.perf_counter() - start
    return BatchReport(outcomes=outcomes, wall_s=wall,
                       workers=max(1, max_workers))
