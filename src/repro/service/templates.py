"""Parameterized query templates: compile once, bind per request.

A template is a query text with ``$name`` placeholders::

    by_day = service.register_template(
        "by_day", "Q(xa) :- Accident(aid, d, t), d = $district, t = $date")

Registration runs the *whole* static pipeline once — parse, coverage
fixpoint, bounded-plan construction, cost certificate — with the
placeholders treated as opaque constants (:class:`repro.query.terms.Param`
values inside ``Const``).  That is sound because coverage and plan shape
are functions of Q and A only, never of a constant's value (paper,
Section 2): every binding of the template shares one plan skeleton.

Binding is then the per-request hot path: one pass over the compiled
*physical* plan's op list substituting bound values into const-scan and
const-check nodes (:meth:`repro.engine.optimizer.physical.PhysicalPlan.
map_constants`) — no parsing, no fixpoint, no plan building, and no
re-optimization: rule rewrites depend on plan shape only, so the
optimized skeleton is shared by every binding.  For templates that are
*not* boundedly evaluable, :func:`bind_query` substitutes into the AST
instead so the scan-based fallback still answers correctly.

One caveat: treating placeholders as pairwise-distinct constants is
unsound exactly where the pipeline concludes *emptiness* from constants
being distinct (constant clashes, the chase's pigeonhole rule, dropped
UCQ disjuncts) — a binding equating two placeholders can contradict the
verdict.  The plan cache detects those value-dependent verdicts and
withholds the plan (see ``plancache._value_dependent``), so such
templates transparently take the scan fallback and stay correct for
every binding.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from ..engine.optimizer import PhysicalPlan
from ..engine.plan import Plan
from ..errors import ServiceError
from ..query.ast import CQ, UCQ, Atom, Equality, PositiveQuery
from ..query.normalize import positive_to_ucq
from ..query.terms import Const, Param
from .plancache import CompiledQuery


def _resolver(values: Mapping[str, Hashable], where: str):
    """A constant-mapping function that swaps Params for bound values."""

    def resolve(value):
        if isinstance(value, Param):
            if value.name not in values:
                raise ServiceError(
                    f"{where}: parameter ${value.name} is unbound; "
                    f"supplied {sorted(values) or '{}'}")
            return values[value.name]
        return value

    return resolve


def check_bindings(parameters: frozenset[str],
                   values: Mapping[str, Hashable], where: str) -> None:
    """Reject missing or undeclared parameter bindings up front."""
    missing = parameters - set(values)
    if missing:
        raise ServiceError(
            f"{where}: missing bindings for "
            f"{', '.join('$' + n for n in sorted(missing))}")
    extra = set(values) - parameters
    if extra:
        raise ServiceError(
            f"{where}: unknown parameters "
            f"{', '.join('$' + n for n in sorted(extra))}; declared "
            f"{sorted(parameters) or '(none)'}")
    for name, value in values.items():
        try:
            hash(value)
        except TypeError:
            raise ServiceError(
                f"{where}: value for ${name} is unhashable "
                f"({type(value).__name__}); parameters must be "
                "constants") from None


def bind_plan(plan: Plan, parameters: frozenset[str],
              values: Mapping[str, Hashable],
              where: str = "bind") -> Plan:
    """Substitute bound constants into a compiled *logical* plan's
    const nodes.

    Returns a structurally shared copy — the certificate, fetch
    structure and column layout are untouched.  Raises
    :class:`ServiceError` on missing or undeclared bindings.
    """
    check_bindings(parameters, values, where)
    if not parameters:
        return plan
    return plan.map_constants(_resolver(values, where))


def bind_physical_plan(plan: PhysicalPlan, parameters: frozenset[str],
                       values: Mapping[str, Hashable],
                       where: str = "bind") -> PhysicalPlan:
    """Substitute bound constants into an optimized *physical* plan —
    the service's warm path.  One pass over the op list; positions,
    trace, certificate and estimates carry over, so the request skips
    the optimizer entirely."""
    check_bindings(parameters, values, where)
    if not parameters:
        return plan
    return plan.map_constants(_resolver(values, where))


def bind_query(query, parameters: frozenset[str],
               values: Mapping[str, Hashable], where: str = "bind"):
    """Substitute bound constants into a CQ/UCQ/∃FO+ AST (fallback path)."""
    check_bindings(parameters, values, where)
    if not parameters:
        return query
    if isinstance(query, PositiveQuery):
        # Bind the equivalent UCQ; the scan evaluator answers both the
        # same way, and the UCQ form is what substitution understands.
        query = positive_to_ucq(query)
    resolve = _resolver(values, where)

    def bind_const(term):
        if isinstance(term, Const):
            value = resolve(term.value)
            if value is not term.value:
                return Const(value)
        return term

    def bind_cq(q: CQ) -> CQ:
        atoms = [Atom(a.relation, [bind_const(t) for t in a.terms])
                 for a in q.atoms]
        equalities = [Equality(bind_const(e.left), bind_const(e.right))
                      for e in q.equalities]
        return CQ(q.name, q.head, atoms, equalities)

    if isinstance(query, CQ):
        return bind_cq(query)
    if isinstance(query, UCQ):
        return UCQ(query.name, [bind_cq(d) for d in query.disjuncts])
    raise ServiceError(
        f"{where}: cannot bind parameters of a "
        f"{type(query).__name__}; only CQ/UCQ/positive-formula "
        "templates support the scan fallback")


@dataclass
class QueryTemplate:
    """A registered template: name, source text and compiled entry."""

    name: str
    text: str
    compiled: CompiledQuery

    @property
    def parameters(self) -> frozenset[str]:
        return self.compiled.parameters

    @property
    def bounded(self) -> bool:
        return self.compiled.bounded

    def bind_plan(self, values: Mapping[str, Hashable]) -> Plan:
        if self.compiled.plan is None:
            raise ServiceError(
                f"template {self.name!r} has no bounded plan "
                f"({self.compiled.reason}); use the fallback path")
        return bind_plan(self.compiled.plan, self.parameters, values,
                         where=f"template {self.name!r}")

    def bind_physical(self, values: Mapping[str, Hashable]) -> PhysicalPlan:
        if self.compiled.physical is None:
            raise ServiceError(
                f"template {self.name!r} has no bounded plan "
                f"({self.compiled.reason}); use the fallback path")
        return bind_physical_plan(self.compiled.physical, self.parameters,
                                  values, where=f"template {self.name!r}")

    def bind_query(self, values: Mapping[str, Hashable]):
        return bind_query(self.compiled.query, self.parameters, values,
                          where=f"template {self.name!r}")

    def __str__(self) -> str:
        params = ", ".join("$" + n for n in sorted(self.parameters))
        mode = "bounded" if self.bounded else "fallback"
        return f"template {self.name}({params}) [{mode}]: {self.text}"
