"""Parameterized query templates: compile once, bind per request.

A template is a query text with ``$name`` placeholders::

    by_day = service.register_template(
        "by_day", "Q(xa) :- Accident(aid, d, t), d = $district, t = $date")

Registration runs the *whole* static pipeline once — parse, coverage
fixpoint, bounded-plan construction, cost certificate — with the
placeholders treated as opaque constants (:class:`repro.query.terms.Param`
values inside ``Const``).  That is sound because coverage and plan shape
are functions of Q and A only, never of a constant's value (paper,
Section 2): every binding of the template shares one plan skeleton.

Binding is then the per-request hot path: one pass over the compiled
plan's op list substituting bound values into ``ConstOp``/``ConstEq``
nodes (:meth:`repro.engine.plan.Plan.map_constants`) — no parsing, no
fixpoint, no plan building.  For templates that are *not* boundedly
evaluable, :func:`bind_query` substitutes into the AST instead so the
scan-based fallback still answers correctly.

One caveat is enforced at registration: two *distinct* placeholders (or
a placeholder and a literal constant) must not be equated with the same
variable class.  The static analysis would treat them as distinct
constants and declare the query unsatisfiable, which becomes wrong the
moment both are bound to the same value — so such templates are
rejected up front with a :class:`~repro.errors.ServiceError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Mapping

from .._util import UnionFind
from ..engine.plan import Plan
from ..errors import QueryError, ServiceError
from ..query.ast import CQ, UCQ, Atom, Equality, PositiveQuery
from ..query.normalize import positive_to_ucq
from ..query.terms import Const, Param
from .plancache import CompiledQuery


def _resolver(values: Mapping[str, Hashable], where: str):
    """A constant-mapping function that swaps Params for bound values."""

    def resolve(value):
        if isinstance(value, Param):
            if value.name not in values:
                raise ServiceError(
                    f"{where}: parameter ${value.name} is unbound; "
                    f"supplied {sorted(values) or '{}'}")
            return values[value.name]
        return value

    return resolve


def check_bindings(parameters: frozenset[str],
                   values: Mapping[str, Hashable], where: str) -> None:
    """Reject missing or undeclared parameter bindings up front."""
    missing = parameters - set(values)
    if missing:
        raise ServiceError(
            f"{where}: missing bindings for "
            f"{', '.join('$' + n for n in sorted(missing))}")
    extra = set(values) - parameters
    if extra:
        raise ServiceError(
            f"{where}: unknown parameters "
            f"{', '.join('$' + n for n in sorted(extra))}; declared "
            f"{sorted(parameters) or '(none)'}")
    for name, value in values.items():
        try:
            hash(value)
        except TypeError:
            raise ServiceError(
                f"{where}: value for ${name} is unhashable "
                f"({type(value).__name__}); parameters must be "
                "constants") from None


def bind_plan(plan: Plan, parameters: frozenset[str],
              values: Mapping[str, Hashable],
              where: str = "bind") -> Plan:
    """Substitute bound constants into a compiled plan's const nodes.

    Returns a structurally shared copy — the certificate, fetch
    structure and column layout are untouched.  Raises
    :class:`ServiceError` on missing or undeclared bindings.
    """
    check_bindings(parameters, values, where)
    if not parameters:
        return plan
    return plan.map_constants(_resolver(values, where))


def bind_query(query, parameters: frozenset[str],
               values: Mapping[str, Hashable], where: str = "bind"):
    """Substitute bound constants into a CQ/UCQ AST (fallback path)."""
    check_bindings(parameters, values, where)
    if not parameters:
        return query
    resolve = _resolver(values, where)

    def bind_const(term):
        if isinstance(term, Const):
            value = resolve(term.value)
            if value is not term.value:
                return Const(value)
        return term

    def bind_cq(q: CQ) -> CQ:
        atoms = [Atom(a.relation, [bind_const(t) for t in a.terms])
                 for a in q.atoms]
        equalities = [Equality(bind_const(e.left), bind_const(e.right))
                      for e in q.equalities]
        return CQ(q.name, q.head, atoms, equalities)

    if isinstance(query, CQ):
        return bind_cq(query)
    if isinstance(query, UCQ):
        return UCQ(query.name, [bind_cq(d) for d in query.disjuncts])
    raise ServiceError(
        f"{where}: cannot bind parameters of a "
        f"{type(query).__name__}; only CQ/UCQ templates support the "
        "scan fallback")


def check_template_query(query, name: str) -> None:
    """Reject templates whose parameters collide on one variable class.

    For each disjunct, variables joined by variable-variable equalities
    form classes; if a class is pinned to two distinct constants and at
    least one is a parameter, the compile-time "unsatisfiable" verdict
    could be contradicted by a binding — refuse the template.
    (Two distinct *literal* constants really are unsatisfiable; the
    analysis handles that case correctly already.)
    """
    if isinstance(query, PositiveQuery):
        try:
            query = positive_to_ucq(query)
        except QueryError:
            return  # malformed bodies surface during compilation
    disjuncts = query.disjuncts if isinstance(query, UCQ) else [query]
    for disjunct in disjuncts:
        if not isinstance(disjunct, CQ):
            continue
        eq = UnionFind(disjunct.variables())
        for equality in disjunct.equalities:
            if equality.is_var_var:
                eq.union(equality.left, equality.right)
        pinned: dict = {}
        for equality in disjunct.equalities:
            if not equality.is_var_const:
                continue
            root = eq.find(equality.left)
            seen = pinned.setdefault(root, set())
            seen.add(equality.right.value)
        for root, constants in pinned.items():
            if len(constants) > 1 and any(isinstance(c, Param)
                                          for c in constants):
                raise ServiceError(
                    f"template {name!r}: variable {root} is equated with "
                    f"multiple constants "
                    f"({', '.join(sorted(map(str, constants)))}); a "
                    "parameter may not share a variable with another "
                    "constant — bind one value through one placeholder")


@dataclass
class QueryTemplate:
    """A registered template: name, source text and compiled entry."""

    name: str
    text: str
    compiled: CompiledQuery

    @property
    def parameters(self) -> frozenset[str]:
        return self.compiled.parameters

    @property
    def bounded(self) -> bool:
        return self.compiled.bounded

    def bind_plan(self, values: Mapping[str, Hashable]) -> Plan:
        if self.compiled.plan is None:
            raise ServiceError(
                f"template {self.name!r} has no bounded plan "
                f"({self.compiled.reason}); use the fallback path")
        return bind_plan(self.compiled.plan, self.parameters, values,
                         where=f"template {self.name!r}")

    def bind_query(self, values: Mapping[str, Hashable]):
        return bind_query(self.compiled.query, self.parameters, values,
                          where=f"template {self.name!r}")

    def __str__(self) -> str:
        params = ", ".join("$" + n for n in sorted(self.parameters))
        mode = "bounded" if self.bounded else "fallback"
        return f"template {self.name}({params}) [{mode}]: {self.text}"
