"""Persistent bounded-evaluation service: plan cache, templates,
fetch cache and concurrent batch execution.

The one-shot pipeline recomputes the paper's static analysis on every
call; this package turns it into a long-lived service that amortizes
the analysis across requests — see :class:`BoundedQueryService`.
"""

from .batch import BatchReport, BatchRequest, RequestOutcome, run_batch
from .fetchcache import CachingExecutor, FetchCache
from .plancache import CacheInfo, CompiledQuery, PlanCache, PlanCacheKey
from .service import BoundedQueryService, ServiceResult, ServiceStats
from .templates import (QueryTemplate, bind_physical_plan,
                        bind_plan, bind_query)

__all__ = [
    "BoundedQueryService", "ServiceResult", "ServiceStats",
    "PlanCache", "PlanCacheKey", "CompiledQuery", "CacheInfo",
    "FetchCache", "CachingExecutor",
    "QueryTemplate", "bind_plan", "bind_physical_plan", "bind_query",
    "BatchRequest", "RequestOutcome", "BatchReport", "run_batch",
]
