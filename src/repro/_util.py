"""Small internal utilities shared across the library.

Nothing in this module is part of the public API.
"""

from __future__ import annotations

import itertools
from typing import Hashable, Iterable, Iterator, Sequence, TypeVar

T = TypeVar("T", bound=Hashable)


class UnionFind:
    """Disjoint-set forest over hashable elements.

    Elements are added lazily on first use.  Used for the ``eq`` and
    ``eq+`` equivalence classes of query variables (paper, Section 3.2)
    and for the FD-chase.
    """

    def __init__(self, elements: Iterable[T] = ()):
        self._parent: dict[T, T] = {}
        self._rank: dict[T, int] = {}
        for element in elements:
            self.add(element)

    def add(self, element: T) -> None:
        if element not in self._parent:
            self._parent[element] = element
            self._rank[element] = 0

    def find(self, element: T) -> T:
        self.add(element)
        root = element
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        while self._parent[element] != root:
            self._parent[element], element = root, self._parent[element]
        return root

    def union(self, a: T, b: T) -> T:
        """Merge the classes of ``a`` and ``b``; return the new root."""
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return ra
        if self._rank[ra] < self._rank[rb]:
            ra, rb = rb, ra
        self._parent[rb] = ra
        if self._rank[ra] == self._rank[rb]:
            self._rank[ra] += 1
        return ra

    def same(self, a: T, b: T) -> bool:
        return self.find(a) == self.find(b)

    def classes(self) -> list[set[T]]:
        """Return all equivalence classes as a list of sets."""
        by_root: dict[T, set[T]] = {}
        for element in self._parent:
            by_root.setdefault(self.find(element), set()).add(element)
        return list(by_root.values())

    def class_of(self, element: T) -> set[T]:
        root = self.find(element)
        return {e for e in self._parent if self.find(e) == root}

    def elements(self) -> Iterator[T]:
        return iter(self._parent)

    def copy(self) -> "UnionFind":
        clone = UnionFind()
        clone._parent = dict(self._parent)
        clone._rank = dict(self._rank)
        return clone


class FreshNames:
    """Generates fresh variable names that do not clash with a base set.

    >>> gen = FreshNames({"x", "y"})
    >>> gen.fresh("x")
    'x_1'
    >>> gen.fresh("x")
    'x_2'
    >>> gen.fresh("z")
    'z'
    """

    def __init__(self, taken: Iterable[str] = ()):
        self._taken = set(taken)
        self._counters: dict[str, int] = {}

    def fresh(self, stem: str = "v") -> str:
        if stem not in self._taken:
            self._taken.add(stem)
            return stem
        counter = self._counters.get(stem, 0)
        while True:
            counter += 1
            candidate = f"{stem}_{counter}"
            if candidate not in self._taken:
                self._counters[stem] = counter
                self._taken.add(candidate)
                return candidate

    def reserve(self, name: str) -> None:
        self._taken.add(name)


def powerset(items: Sequence[T], min_size: int = 0,
             max_size: int | None = None) -> Iterator[tuple[T, ...]]:
    """Iterate subsets of ``items`` by increasing size.

    >>> list(powerset([1, 2]))
    [(), (1,), (2,), (1, 2)]
    """
    upper = len(items) if max_size is None else min(max_size, len(items))
    for size in range(min_size, upper + 1):
        yield from itertools.combinations(items, size)


def set_partitions(items: Sequence[T]) -> Iterator[list[list[T]]]:
    """Iterate all partitions of ``items`` into non-empty blocks.

    Uses the standard recursive "element joins an existing block or opens
    a new one" scheme; the number of partitions is the Bell number of
    ``len(items)``, so callers must keep inputs small (the paper's
    decision problems are NP-hard and worse; see DESIGN.md Section 3).

    >>> sorted(len(p) for p in set_partitions([1, 2, 3]))
    [1, 2, 2, 2, 3]
    """
    items = list(items)
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in set_partitions(rest):
        for i, block in enumerate(partition):
            yield partition[:i] + [[first] + block] + partition[i + 1:]
        yield [[first]] + partition


def constrained_partitions(
    items: Sequence[T],
    must_merge: Iterable[tuple[T, T]] = (),
    must_differ: Iterable[tuple[T, T]] = (),
) -> Iterator[list[list[T]]]:
    """Partitions of ``items`` respecting forced equalities/disequalities.

    ``must_merge`` pairs always share a block; ``must_differ`` pairs never
    do.  Forced-equal items are first fused into super-elements, then the
    partitions of the fused universe are filtered by the disequalities.
    """
    fusion = UnionFind(items)
    for a, b in must_merge:
        fusion.union(a, b)
    representatives: dict[T, list[T]] = {}
    for item in items:
        representatives.setdefault(fusion.find(item), []).append(item)
    reps = list(representatives)
    differ_pairs = [(fusion.find(a), fusion.find(b)) for a, b in must_differ]
    for bad_a, bad_b in differ_pairs:
        if bad_a == bad_b:
            return  # Contradictory requirements: no partitions at all.
    for rep_partition in set_partitions(reps):
        block_of = {rep: i for i, block in enumerate(rep_partition) for rep in block}
        if any(block_of[a] == block_of[b] for a, b in differ_pairs):
            continue
        yield [
            [item for rep in block for item in representatives[rep]]
            for block in rep_partition
        ]


def stable_unique(items: Iterable[T]) -> list[T]:
    """Deduplicate preserving first-seen order."""
    seen: set[T] = set()
    result: list[T] = []
    for item in items:
        if item not in seen:
            seen.add(item)
            result.append(item)
    return result


def cross_product(pools: Sequence[Sequence[T]]) -> Iterator[tuple[T, ...]]:
    """``itertools.product`` with an early exit for empty pools."""
    if any(len(pool) == 0 for pool in pools):
        return iter(())
    return itertools.product(*pools)
