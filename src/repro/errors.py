"""Exception hierarchy for the repro library.

Every error raised by the public API derives from :class:`ReproError`, so
callers can catch one type.  Finer-grained subclasses indicate which layer
rejected the input: schema definition, query construction, parsing, plan
building or execution.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the library."""


class SchemaError(ReproError):
    """A relation schema or access schema is malformed.

    Examples: duplicate attribute names, an access constraint referring
    to an unknown relation or attribute, a non-positive cardinality.
    """


class QueryError(ReproError):
    """A query is malformed with respect to its schema.

    Examples: an atom whose arity does not match its relation schema, a
    free variable that never occurs in the body (unsafe query), or a
    variable equated with two distinct constants at construction time
    when strict checking is requested.
    """


class ParseError(QueryError):
    """The textual form of a query could not be parsed."""

    def __init__(self, message: str, text: str = "", position: int = -1):
        self.text = text
        self.position = position
        if position >= 0:
            message = f"{message} (at offset {position}: ...{text[position:position + 20]!r})"
        super().__init__(message)


class UnsafeQueryError(QueryError):
    """The query violates the safety assumption of the paper (Section 3.2).

    Every variable must be equal, via the equality atoms, to a variable
    occurring in a relation atom or to a constant.
    """


class PlanError(ReproError):
    """A query plan is malformed or cannot be built.

    Raised e.g. when asked to build a bounded plan for a query that is
    not covered by the access schema.
    """


class ExecutionError(ReproError):
    """A plan failed during execution against a database instance."""


class StorageError(ReproError):
    """A database directory or CSV file could not be read or written.

    Raised with actionable context (file, line, offending row) by
    ``repro.storage.io`` — the CLI's front door for on-disk instances.
    """


class ServiceError(ReproError):
    """A request to :class:`repro.service.BoundedQueryService` is invalid.

    Examples: binding an unknown template, leaving a ``$param``
    unbound, supplying parameters a template does not declare.
    """


class ConstraintViolation(ReproError):
    """A database instance violates its access schema.

    Carries the offending constraint and the witnessing X-value so the
    caller can report or repair.
    """

    def __init__(self, constraint, x_value, count):
        self.constraint = constraint
        self.x_value = x_value
        self.count = count
        super().__init__(
            f"instance violates {constraint}: X-value {x_value!r} has "
            f"{count} distinct Y-values"
        )


class BudgetExceeded(ReproError):
    """An exact decision procedure exceeded its enumeration budget.

    The exact procedures for A-satisfiability, A-containment, BEP, UEP,
    LEP and QSP enumerate exponentially many candidates in the worst case
    (the paper proves the problems NP- to EXPSPACE-complete).  Callers
    choose a budget; when it is exhausted the procedure raises this or
    returns an UNKNOWN decision, depending on the entry point.
    """


class UndecidableForFO(ReproError):
    """The requested analysis is undecidable for full FO (paper, Table 1)."""


class DeadlineExceeded(ReproError):
    """A request's deadline expired before the work completed.

    Raised by any layer that observes an expired
    :class:`repro.deadline.Deadline` — the executor between plan steps,
    the fetch boundary before a storage crossing, or the procshard RPC
    plumbing while waiting on a peer reply.  Carries ``where`` so the
    abort site is visible in logs and counters.
    """

    def __init__(self, where: str = "", overrun_s: float = 0.0):
        self.where = where
        self.overrun_s = overrun_s
        detail = f" at {where}" if where else ""
        if overrun_s > 0:
            detail += f" ({overrun_s * 1000:.1f}ms past deadline)"
        super().__init__(f"deadline exceeded{detail}")
