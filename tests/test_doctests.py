"""Run the doctest examples embedded in the library's docstrings."""

from __future__ import annotations

import doctest

import pytest

import repro._util
import repro.query.ast
import repro.query.normalize
import repro.query.parser
import repro.query.terms
import repro.query.varclasses
import repro.schema.access
import repro.schema.discovery
import repro.schema.relation
import repro.service.fetchcache
import repro.service.lru
import repro.service.plancache
import repro.service.service
import repro.storage.backend
import repro.storage.database
import repro.graph.graph
import repro.graph.pattern

MODULES = [
    repro._util,
    repro.query.ast,
    repro.query.normalize,
    repro.query.parser,
    repro.query.terms,
    repro.query.varclasses,
    repro.schema.access,
    repro.schema.discovery,
    repro.schema.relation,
    repro.storage.backend,
    repro.storage.database,
    repro.service.plancache,
    repro.service.fetchcache,
    repro.service.lru,
    repro.service.service,
    repro.graph.graph,
    repro.graph.pattern,
]


@pytest.mark.parametrize("module", MODULES,
                         ids=[m.__name__ for m in MODULES])
def test_doctests(module):
    result = doctest.testmod(module, verbose=False)
    assert result.failed == 0, f"{result.failed} doctest failure(s)"
    assert result.attempted > 0, f"{module.__name__} has no doctests"
