"""Ambient per-request deadlines: the absolute-cutoff arithmetic and
the thread-local scope stack the whole serving path relies on."""

from __future__ import annotations

import threading

import pytest

from repro.deadline import Deadline, current_deadline, deadline_scope
from repro.errors import DeadlineExceeded, ReproError


class TestDeadline:
    def test_after_remaining_and_expiry(self):
        deadline = Deadline.after(60.0)
        assert not deadline.expired()
        assert 59.0 < deadline.remaining() <= 60.0
        deadline.check("anywhere")  # must not raise

    def test_expired_deadline_checks_raise_typed_error(self):
        deadline = Deadline.after(-0.5)
        assert deadline.expired()
        assert deadline.remaining() < 0
        with pytest.raises(DeadlineExceeded) as info:
            deadline.check("executor:join")
        assert "executor:join" in str(info.value)
        assert info.value.overrun_s >= 0.5

    def test_deadline_exceeded_is_a_repro_error(self):
        # The CLI/service error funnels catch ReproError; a deadline
        # abort must flow through them, not past them.
        assert issubclass(DeadlineExceeded, ReproError)

    def test_timeout_is_min_of_cap_and_remaining(self):
        assert Deadline.after(60.0).timeout(2.0) == 2.0
        short = Deadline.after(0.5).timeout(2.0)
        assert 0.0 < short <= 0.5
        # Expired: non-blocking poll, never negative.
        assert Deadline.after(-1.0).timeout(2.0) == 0.0


class TestAmbientScope:
    def test_no_scope_means_none(self):
        assert current_deadline() is None

    def test_scope_installs_and_restores(self):
        deadline = Deadline.after(1.0)
        with deadline_scope(deadline) as active:
            assert active is deadline
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_scope_is_a_no_op(self):
        with deadline_scope(None) as active:
            assert active is None
            assert current_deadline() is None

    def test_innermost_scope_wins(self):
        outer, inner = Deadline.after(10.0), Deadline.after(1.0)
        with deadline_scope(outer):
            with deadline_scope(inner):
                assert current_deadline() is inner
            assert current_deadline() is outer

    def test_scope_pops_even_on_error(self):
        with pytest.raises(RuntimeError):
            with deadline_scope(Deadline.after(1.0)):
                raise RuntimeError("boom")
        assert current_deadline() is None

    def test_scope_is_thread_local(self):
        seen = []
        with deadline_scope(Deadline.after(1.0)):
            thread = threading.Thread(
                target=lambda: seen.append(current_deadline()))
            thread.start()
            thread.join()
        assert seen == [None]
