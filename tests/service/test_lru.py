"""LruDict unit tests — batch operations and eviction ordering."""

from __future__ import annotations

import pytest

from repro.service.lru import LruDict


def test_put_many_evicts_in_insertion_order_past_capacity():
    lru = LruDict(capacity=2)
    lru.put_many([("a", 1), ("b", 2), ("c", 3), ("d", 4)])
    # Eviction happens once, after the whole batch: the two oldest go.
    assert lru.get("a") is None and lru.get("b") is None
    assert lru.get("c") == 3 and lru.get("d") == 4
    assert lru.evictions == 2
    assert len(lru) == 2


def test_put_many_duplicate_keys_count_once():
    lru = LruDict(capacity=2)
    lru.put_many([("a", 1), ("a", 2), ("b", 3)])
    # The duplicate overwrote in place; nothing needed evicting.
    assert lru.get("a") == 2 and lru.get("b") == 3
    assert lru.evictions == 0


def test_put_many_refreshes_recency_of_existing_keys():
    lru = LruDict(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    # Re-putting "a" moves it to the MRU end, so "b" is the LRU victim.
    lru.put_many([("a", 10), ("c", 3)])
    assert lru.get("b") is None
    assert lru.get("a") == 10 and lru.get("c") == 3


def test_get_many_refreshes_recency_and_counts_in_aggregate():
    lru = LruDict(capacity=2)
    lru.put("a", 1)
    lru.put("b", 2)
    values = lru.get_many(["a", "missing", "b"])
    assert values == [1, None, 2]
    assert (lru.hits, lru.misses) == (2, 1)
    # Both hits were refreshed, "a" before "b": "a" is the LRU victim.
    lru.put("c", 3)
    assert lru.get("a", count=False) is None
    assert lru.get("b", count=False) == 2


def test_get_many_eviction_order_tracks_batch_touch_order():
    lru = LruDict(capacity=3)
    lru.put("a", 1)
    lru.put("b", 2)
    lru.put("c", 3)
    # Touch order within the batch: c first, then a — so after the
    # batch, recency is b < c < a.
    lru.get_many(["c", "a"])
    lru.put("d", 4)  # evicts b, the only untouched key
    assert lru.get("b") is None
    assert lru.get("c") == 3 and lru.get("a") == 1 and lru.get("d") == 4


def test_get_many_count_false_leaves_counters_alone():
    lru = LruDict(capacity=2)
    lru.put("a", 1)
    assert lru.get_many(["a", "nope"], count=False) == [1, None]
    assert (lru.hits, lru.misses) == (0, 0)


def test_put_many_rejects_none_values():
    lru = LruDict(capacity=2)
    with pytest.raises(ValueError, match="cannot store None"):
        lru.put_many([("a", None)])
