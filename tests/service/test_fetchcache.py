"""Fetch cache: hit/miss accounting, LRU bound, write invalidation."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.engine import Executor
from repro.engine.naive import evaluate
from repro.query import parse_query
from repro.service import BoundedQueryService, CachingExecutor, FetchCache


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [AccessConstraint("R", ("A",), ("B",), 5)])
    database = Database(schema, access)
    database.insert_many("R", [(1, 10), (1, 11), (2, 20)])
    return database


@pytest.fixture
def constraint(db):
    return db.access_schema.constraints[0]


def test_lookup_reads_through_and_then_hits(db, constraint):
    cache = FetchCache(capacity=16)
    rows, hit = cache.lookup(db, constraint, (1,))
    assert not hit and sorted(rows) == [(1, 10), (1, 11)]
    rows2, hit = cache.lookup(db, constraint, (1,))
    assert hit and rows2 == rows
    info = cache.info()
    assert info.hits == 1 and info.misses == 1
    assert cache.max_entry_rows == 2


def test_insert_invalidates_exactly_via_generation(db, constraint):
    cache = FetchCache(capacity=16)
    cache.lookup(db, constraint, (1,))
    db.insert("R", (1, 12))
    rows, hit = cache.lookup(db, constraint, (1,))
    assert not hit
    assert sorted(rows) == [(1, 10), (1, 11), (1, 12)]


def test_delete_invalidates_via_generation(db, constraint):
    cache = FetchCache(capacity=16)
    cache.lookup(db, constraint, (1,))
    assert db.delete("R", (1, 10))
    rows, hit = cache.lookup(db, constraint, (1,))
    assert not hit
    assert sorted(rows) == [(1, 11)]


def test_lookup_many_splits_hits_and_misses(db, constraint):
    cache = FetchCache(capacity=16)
    cache.lookup(db, constraint, (1,))
    rows_per_x, hits = cache.lookup_many(
        db, constraint, [(1,), (2,), (3,)])
    assert hits == [True, False, False]
    assert sorted(rows_per_x[0]) == [(1, 10), (1, 11)]
    assert rows_per_x[1] == [(2, 20)]
    assert rows_per_x[2] == []
    # The whole batch hits the second time around.
    _, hits = cache.lookup_many(db, constraint, [(1,), (2,), (3,)])
    assert hits == [True, True, True]
    info = cache.info()
    # 1 miss from the warming lookup, 2 from the first batch; 1 + 3 hits.
    assert info.hits == 4 and info.misses == 3


def test_duplicate_insert_does_not_invalidate(db, constraint):
    cache = FetchCache(capacity=16)
    cache.lookup(db, constraint, (1,))
    db.insert("R", (1, 10))  # already present: no effective write
    _, hit = cache.lookup(db, constraint, (1,))
    assert hit


def test_lru_bound_holds(db, constraint):
    db.insert_many("R", [(i, i * 100) for i in range(3, 50)])
    cache = FetchCache(capacity=8)
    for i in range(40):
        cache.lookup(db, constraint, (i,))
    info = cache.info()
    assert info.size == 8
    assert info.evictions == 32


class TestEncodedEntries:
    """The columnar entry family: code keys, readonly column views,
    no row materialization, and no collisions with legacy entries."""

    def test_lookup_many_encoded_reads_through_then_hits(
            self, db, constraint):
        cache = FetchCache(capacity=16)
        code = db.dictionary.encode(1)
        entries, hits = cache.lookup_many_encoded(
            db, constraint, [code])
        assert hits == [False]
        (cols, length), = entries
        assert length == 2
        assert db.dictionary.decode_rows(cols, length) == \
            {(1, 10), (1, 11)}
        # Warm: the very same readonly views come back by reference.
        entries2, hits2 = cache.lookup_many_encoded(
            db, constraint, [code])
        assert hits2 == [True]
        assert entries2[0] is entries[0]
        assert all(isinstance(column, memoryview) and column.readonly
                   for column in entries2[0][0])
        assert cache.encoded_hits == 1 and cache.legacy_hits == 0

    def test_encoded_and_legacy_families_never_collide(
            self, db, constraint):
        # The code for some value can equal an unrelated X-value's
        # content; distinct key shapes keep the entries apart.
        cache = FetchCache(capacity=16)
        code = db.dictionary.encode(1)
        cache.lookup(db, constraint, (code,))
        _, hits = cache.lookup_many_encoded(db, constraint, [code])
        assert hits == [False]  # the legacy entry must not satisfy it
        _, legacy_hit = cache.lookup(db, constraint, (code,))
        assert legacy_hit
        assert cache.legacy_hits == 1 and cache.encoded_hits == 0

    def test_writes_invalidate_encoded_entries_via_generation(
            self, db, constraint):
        cache = FetchCache(capacity=16)
        code = db.dictionary.encode(1)
        cache.lookup_many_encoded(db, constraint, [code])
        db.insert("R", (1, 12))
        entries, hits = cache.lookup_many_encoded(
            db, constraint, [code])
        assert hits == [False]
        cols, length = entries[0]
        assert db.dictionary.decode_rows(cols, length) == \
            {(1, 10), (1, 11), (1, 12)}

    def test_max_entry_rows_tracks_encoded_lengths(self, db, constraint):
        cache = FetchCache(capacity=16)
        codes = [db.dictionary.encode(value) for value in (1, 2, 3)]
        cache.lookup_many_encoded(db, constraint, codes)
        assert cache.max_entry_rows == 2  # x=1 holds two rows

    def test_caching_executor_concatenates_mixed_hits_and_misses(
            self, db, constraint):
        from repro.engine.executor import AccessStats
        executor = CachingExecutor(db, FetchCache(capacity=16))
        codes = [db.dictionary.encode(value) for value in (1, 9)]
        stats = AccessStats()
        executor._fetch_flat_encoded(constraint, codes[:1], stats)  # miss
        single_cols, single_total = executor._fetch_flat_encoded(
            constraint, codes[:1], stats)  # single-key zero-copy hit
        assert db.dictionary.decode_rows(single_cols, single_total) == \
            {(1, 10), (1, 11)}
        cols, total = executor._fetch_flat_encoded(
            constraint, codes + [db.dictionary.encode(2)], stats)
        assert db.dictionary.decode_rows(cols, total) == \
            {(1, 10), (1, 11), (2, 20)}
        assert stats.fetch_cache_hits == 2  # single-key warm + batch hit
        assert stats.tuples_from_cache == 4
        assert stats.tuples_fetched == 3


def test_caching_executor_matches_plain_executor(db):
    from repro.core import is_boundedly_evaluable
    decision = is_boundedly_evaluable(parse_query("Q(y) :- R(x, y), x = 1"),
                                      db.access_schema)
    plan = decision.witness["plan"]
    plain = Executor(db).execute(plan)
    cache = FetchCache(capacity=16)
    cold = CachingExecutor(db, cache).execute(plan)
    warm = CachingExecutor(db, cache).execute(plan)
    assert plain.answers == cold.answers == warm.answers
    assert cold.stats.tuples_fetched == plain.stats.tuples_fetched
    assert cold.stats.fetch_cache_misses > 0
    assert warm.stats.tuples_fetched == 0
    assert warm.stats.tuples_from_cache == plain.stats.tuples_fetched
    assert warm.stats.fetch_cache_hits == warm.stats.index_lookups


def test_no_cache_means_plain_behaviour(db):
    from repro.core import is_boundedly_evaluable
    decision = is_boundedly_evaluable(parse_query("Q(y) :- R(x, y), x = 1"),
                                      db.access_schema)
    plan = decision.witness["plan"]
    result = CachingExecutor(db, None).execute(plan)
    assert result.stats.fetch_cache_hits == 0
    assert result.stats.fetch_cache_misses == 0
    assert result.answers == {(10,), (11,)}


class TestServiceNeverServesStaleRows:
    """Acceptance: interleaved writes are always visible to the next
    request, whatever mix of template/raw/batch traffic came before."""

    def test_insert_between_template_requests(self, db):
        service = BoundedQueryService(db)
        service.register_template("t", "Q(y) :- R(x, y), x = $a")
        assert service.execute_template("t", {"a": 1}).answers == \
            {(10,), (11,)}
        db.insert("R", (1, 12))
        assert service.execute_template("t", {"a": 1}).answers == \
            {(10,), (11,), (12,)}
        db.insert_many("R", [(1, 13), (2, 21)])
        assert service.execute_template("t", {"a": 1}).answers == \
            {(10,), (11,), (12,), (13,)}
        assert service.execute_template("t", {"a": 2}).answers == \
            {(20,), (21,)}

    def test_writes_interleaved_with_raw_queries(self, db):
        service = BoundedQueryService(db)
        text = "Q(y) :- R(x, y), x = 2"
        for extra in range(21, 26):
            expected = evaluate(parse_query(text), db)
            assert service.execute(text).answers == expected
            db.insert("R", (2, extra))
        assert service.execute(text).answers == \
            {(20,), (21,), (22,), (23,), (24,), (25,)}

    def test_fresh_rows_reach_every_batch_request(self, db):
        from repro.service import BatchRequest
        service = BoundedQueryService(db)
        service.register_template("t", "Q(y) :- R(x, y), x = $a")
        service.execute_template("t", {"a": 1})  # warm the cache
        db.insert("R", (1, 99))
        report = service.execute_batch(
            [BatchRequest(template="t", params={"a": 1})
             for _ in range(16)], max_workers=4)
        assert report.errors == 0
        for outcome in report.outcomes:
            assert outcome.result.answers == {(10,), (11,), (99,)}

    @pytest.mark.parametrize("backend_name", ["memory", "sharded"])
    def test_deletes_interleaved_with_service_traffic(self, backend_name):
        """Writes *and deletes* between requests are always visible on
        both storage engines — cached fetches never outlive their
        generation."""
        from repro.storage.backend import make_backend
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema,
                              [AccessConstraint("R", ("A",), ("B",), 8)])
        database = Database(
            schema, access,
            backend=make_backend(backend_name, schema, shards=4))
        database.insert_many("R", [(1, 10), (1, 11), (2, 20)])
        service = BoundedQueryService(database)
        service.register_template("t", "Q(y) :- R(x, y), x = $a")
        assert service.execute_template("t", {"a": 1}).answers == \
            {(10,), (11,)}
        database.delete("R", (1, 10))
        assert service.execute_template("t", {"a": 1}).answers == {(11,)}
        database.insert("R", (1, 12))
        database.delete("R", (1, 11))
        assert service.execute_template("t", {"a": 1}).answers == {(12,)}
        assert service.execute_template("t", {"a": 2}).answers == {(20,)}

    @pytest.mark.parametrize("backend_name", ["memory", "sharded"])
    def test_concurrent_writer_and_batches_converge(self, backend_name):
        """A writer racing concurrent service batches: every batch
        answer reflects some prefix-consistent state, and once writes
        stop the service observes the final rows exactly."""
        import threading

        from repro.service import BatchRequest
        from repro.storage.backend import make_backend
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema,
                              [AccessConstraint("R", ("A",), ("B",), 256)])
        database = Database(
            schema, access,
            backend=make_backend(backend_name, schema, shards=4))
        database.insert("R", (1, 0))
        service = BoundedQueryService(database)
        service.register_template("t", "Q(y) :- R(x, y), x = $a")

        def writer():
            for i in range(1, 60):
                database.insert("R", (1, i))
                if i % 4 == 0:
                    database.delete("R", (1, i - 3))
        thread = threading.Thread(target=writer)
        thread.start()
        for _ in range(6):
            report = service.execute_batch(
                [BatchRequest(template="t", params={"a": 1})
                 for _ in range(8)], max_workers=4)
            assert report.errors == 0
        thread.join(timeout=30)
        expected = {(row[1],)
                    for row in database.relation_tuples("R")
                    if row[0] == 1}
        assert service.execute_template("t", {"a": 1}).answers == expected
