"""Parameterized templates: $param parsing, plan binding, guard rails."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.engine import execute_plan
from repro.engine.naive import evaluate
from repro.engine.plan import ConstOp, SelectOp
from repro.errors import ServiceError
from repro.query import Param, parse_query
from repro.service import BoundedQueryService, bind_plan, bind_query


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("S", ("B",), ("C",), 2),
    ])
    database = Database(schema, access)
    database.insert_many("R", [(1, 10), (1, 11), (2, 10), (3, 12)])
    database.insert_many("S", [(10, "x"), (10, "y"), (11, "z"), (12, "x")])
    return database


@pytest.fixture
def service(db):
    return BoundedQueryService(db)


def test_parser_reads_params_as_constants():
    query = parse_query("Q(y) :- R(x, y), x = $a")
    assert query.parameters() == {"a"}
    (eq,) = query.equalities
    assert eq.right.value == Param("a")


def test_template_compiles_once_and_binds_per_request(service, db):
    template = service.register_template(
        "by_a", "Q(z) :- R(x, y), S(y, z), x = $a")
    assert template.bounded and template.parameters == {"a"}
    for a in (1, 2, 3, 99):
        result = service.execute_template("by_a", {"a": a})
        expected = evaluate(parse_query(f"Q(z) :- R(x, y), S(y, z), x = {a}"),
                            db)
        assert result.answers == expected


def test_bound_plan_has_no_residual_params(service):
    template = service.register_template("t", "Q(y) :- R(x, y), x = $a")
    plan = template.bind_plan({"a": 2})
    for value in plan.constant_values():
        assert not isinstance(value, Param)


def test_binding_is_a_plan_rewrite_not_a_rebuild(service):
    template = service.register_template("t", "Q(y) :- R(x, y), x = $a")
    plan = template.bind_plan({"a": 2})
    compiled = template.compiled.plan
    assert len(plan) == len(compiled)
    assert plan.certificate is compiled.certificate
    # Ops without constants are shared outright.
    for bound_op, original in zip(plan.steps, compiled.steps):
        if not isinstance(original, (ConstOp, SelectOp)):
            assert bound_op is original


def test_missing_binding_is_rejected(service):
    service.register_template("t", "Q(y) :- R(x, y), x = $a")
    with pytest.raises(ServiceError, match=r"missing bindings for \$a"):
        service.execute_template("t", {})


def test_undeclared_binding_is_rejected(service):
    service.register_template("t", "Q(y) :- R(x, y), x = $a")
    with pytest.raises(ServiceError, match=r"unknown parameters \$b"):
        service.execute_template("t", {"a": 1, "b": 2})


def test_unknown_template_is_rejected(service):
    with pytest.raises(ServiceError, match="unknown template"):
        service.execute_template("nope", {})


def test_duplicate_registration_is_rejected(service):
    service.register_template("t", "Q(y) :- R(x, y), x = $a")
    with pytest.raises(ServiceError, match="already registered"):
        service.register_template("t", "Q(y) :- R(x, y), x = $a")
    service.register_template("t", "Q(y) :- R(x, y), x = $b",
                              replace=True)
    assert service.template("t").parameters == {"b"}


def test_param_sharing_a_variable_with_a_constant_falls_back(service, db):
    # Compiled with $a as a distinct constant this looks unsatisfiable,
    # but the binding a=1 satisfies it — the service must not reuse the
    # value-dependent empty plan and must answer via the scan fallback.
    template = service.register_template("t", "Q(y) :- R(x, y), x = $a, x = 1")
    assert not template.bounded
    for a in (1, 2):
        result = service.execute_template("t", {"a": a})
        expected = evaluate(parse_query(f"Q(y) :- R(x, y), x = {a}, x = 1"),
                            db)
        assert result.answers == expected
    assert service.execute_template("t", {"a": 1}).answers == {(10,), (11,)}


def test_two_params_on_one_variable_fall_back(service, db):
    template = service.register_template("t", "Q(y) :- R(x, y), x = $a, x = $b")
    assert not template.bounded
    assert service.execute_template("t", {"a": 1, "b": 1}).answers \
        == {(10,), (11,)}
    assert service.execute_template("t", {"a": 1, "b": 2}).answers == set()


def test_params_inside_atoms_are_normalized(service, db):
    template = service.register_template("inline", "Q(y) :- R($a, y)")
    assert template.parameters == {"a"}
    result = service.execute_template("inline", {"a": 1})
    assert result.answers == {(10,), (11,)}


def test_ucq_template_binds_every_disjunct(service, db):
    template = service.register_template(
        "u", "Q(y) :- R(x, y), x = $a ; Q(y) :- S(y, c), c = $c")
    result = service.execute_template("u", {"a": 3, "c": "z"})
    expected = evaluate(
        parse_query("Q(y) :- R(x, y), x = 3 ; Q(y) :- S(y, c), c = 'z'"),
        db)
    assert result.answers == expected == {(12,), (11,)}


def test_bind_query_substitutes_the_ast(db):
    query = parse_query("Q(y) :- R(x, y), x = $a")
    bound = bind_query(query, frozenset({"a"}), {"a": 2})
    assert bound.parameters() == set()
    assert evaluate(bound, db) == {(10,)}


def test_fallback_template_answers_via_scan(service, db):
    # Not covered: no constraint fetches S rows by C.
    template = service.register_template(
        "scan", "Q(y) :- S(y, c), c = $c")
    assert not template.bounded
    result = service.execute_template("scan", {"c": "x"})
    assert not result.bounded
    assert result.scan_stats is not None
    assert result.answers == {(10,), (12,)}


def test_positive_formula_template_declares_and_binds_params(service, db):
    template = service.register_template(
        "pos", "Q(y) := R(x, y) AND x = $a")
    assert template.parameters == {"a"}
    assert template.bounded
    result = service.execute_template("pos", {"a": 1})
    assert result.answers == {(10,), (11,)}


def test_unbounded_formula_template_with_params_is_rejected(service):
    # FO with negation has no bounded plan and no CQ fallback binding.
    with pytest.raises(ServiceError, match="rewrite it as a CQ/UCQ"):
        service.register_template(
            "neg", "Q(y) := R(x, y) AND NOT S(y, x) AND x = $a")


def test_positive_formula_param_conflict_falls_back(service, db):
    template = service.register_template(
        "pos2", "Q(y) := R(x, y) AND x = $a AND x = $b")
    assert not template.bounded
    assert service.execute_template("pos2", {"a": 1, "b": 1}).answers \
        == {(10,), (11,)}
    assert service.execute_template("pos2", {"a": 1, "b": 2}).answers == set()


def test_pigeonhole_param_template_falls_back():
    # With F(A -> B, 1), two F-atoms on one x force y1 = y2; compiled
    # with $a, $b as distinct constants the chase declares the template
    # A-unsatisfiable, yet binding a = b is satisfiable (REVIEW:
    # pigeonhole over Param-pinned classes).
    schema = Schema.from_dict({"F": ("A", "B")})
    access = AccessSchema(schema, [AccessConstraint("F", ("A",), ("B",), 1)])
    database = Database(schema, access)
    database.insert_many("F", [(1, 10), (2, 20)])
    service = BoundedQueryService(database)
    template = service.register_template(
        "ph", "Q(x) :- F(x, y1), F(x, y2), y1 = $a, y2 = $b")
    assert not template.bounded
    assert service.execute_template("ph", {"a": 10, "b": 10}).answers \
        == {(1,)}
    assert service.execute_template("ph", {"a": 10, "b": 20}).answers == set()


def test_execute_with_params_never_serves_value_dependent_empty(service, db):
    # The raw-text path must apply the same guard as registration: the
    # entry is cached as a scan fallback, not as an empty bounded plan.
    text = "Q(y) :- R(x, y), x = $a, x = 1"
    cold = service.execute(text, {"a": 1})
    assert not cold.bounded
    assert cold.answers == {(10,), (11,)}
    warm = service.execute(text, {"a": 1})
    assert warm.plan_cached
    assert warm.answers == cold.answers
    assert service.execute(text, {"a": 2}).answers == set()


def test_unhashable_binding_value_is_rejected(service):
    service.register_template("t", "Q(y) :- R(x, y), x = $a")
    with pytest.raises(ServiceError, match=r"\$a is unhashable"):
        service.execute_template("t", {"a": [1, 2]})


def test_executing_unbound_template_plan_matches_manual_binding(service, db):
    template = service.register_template("t", "Q(y) :- R(x, y), x = $a")
    manual = bind_plan(template.compiled.plan, template.parameters,
                       {"a": 1})
    assert execute_plan(manual, db).answers == {(10,), (11,)}
