"""Plan cache: fingerprint keys, LRU behaviour, negative caching."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema
from repro.query import parse_query
from repro.service.plancache import PlanCache


@pytest.fixture
def access():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    return AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("S", ("B",), ("C",), 2),
    ])


def test_compile_caches_bounded_plan(access):
    cache = PlanCache(capacity=8)
    query = parse_query("Q(y) :- R(x, y), x = 1")
    entry, cached = cache.compile(query, access)
    assert not cached and entry.bounded
    again, cached = cache.compile(query, access)
    assert cached and again is entry
    info = cache.info()
    assert info.hits == 1 and info.misses == 1


def test_alpha_renamed_queries_share_an_entry(access):
    cache = PlanCache(capacity=8)
    entry1, _ = cache.compile(parse_query("Q(y) :- R(x, y), x = 1"), access)
    entry2, cached = cache.compile(parse_query("P(b) :- R(a, b), a = 1"),
                                   access)
    assert cached and entry2 is entry1


def test_inline_constants_normalize_to_the_same_key(access):
    cache = PlanCache(capacity=8)
    entry1, _ = cache.compile(parse_query("Q(y) :- R(1, y)"), access)
    _, cached = cache.compile(parse_query("Q(y) :- R(x, y), x = 1"), access)
    assert cached


def test_unbounded_queries_are_negative_cached(access):
    cache = PlanCache(capacity=8)
    query = parse_query("Q(x, y) :- R(x, y)")
    entry, _ = cache.compile(query, access)
    assert not entry.bounded and entry.plan is None
    assert entry.reason
    _, cached = cache.compile(query, access)
    assert cached


def test_lru_bound_and_evictions(access):
    cache = PlanCache(capacity=2)
    queries = [parse_query(f"Q(y) :- R(x, y), x = {i}") for i in range(4)]
    for query in queries:
        cache.compile(query, access)
    info = cache.info()
    assert info.size == 2
    assert info.evictions == 2
    # Oldest entries are gone: recompiling them misses.
    _, cached = cache.compile(queries[0], access)
    assert not cached
    # The most recent is still warm.
    _, cached = cache.compile(queries[3], access)
    assert cached


def test_distinct_constants_are_distinct_entries(access):
    cache = PlanCache(capacity=8)
    cache.compile(parse_query("Q(y) :- R(x, y), x = 1"), access)
    _, cached = cache.compile(parse_query("Q(y) :- R(x, y), x = 2"), access)
    assert not cached  # different constant, different plan


def test_different_access_schema_is_a_different_key(access):
    schema = access.schema
    other = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 7),
        AccessConstraint("S", ("B",), ("C",), 2),
    ])
    cache = PlanCache(capacity=8)
    query = parse_query("Q(y) :- R(x, y), x = 1")
    cache.compile(query, access)
    _, cached = cache.compile(query, other)
    assert not cached


def test_compile_text_skips_the_parser_on_repeat(access, monkeypatch):
    cache = PlanCache(capacity=8)
    calls = []

    def parse(text):
        calls.append(text)
        return parse_query(text)

    text = "Q(y) :- R(x, y), x = 1"
    cache.compile_text(text, access, parse)
    cache.compile_text(text, access, parse)
    cache.compile_text(text, access, parse)
    assert len(calls) == 1


def test_capacity_must_be_positive():
    with pytest.raises(ValueError):
        PlanCache(capacity=0)
