"""Incremental cache maintenance under writes: the delta-driven edge
cases — multi-entry deletes, fills racing writes, disk close/reopen,
and answer-cache repair (protocol details in ``docs/ARCHITECTURE.md``).
"""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.service import BoundedQueryService, FetchCache
from repro.service.plancache import AnswerCache, FetchProfile
from repro.storage.delta import ConstraintDelta, WriteDelta
from repro.storage.disk import DiskBackend


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 8),
        AccessConstraint("R", ("B",), ("A",), 8),
    ])
    database = Database(schema, access)
    database.insert_many("R", [(1, 10), (1, 11), (2, 10)])
    return database


@pytest.fixture
def by_a(db):
    return db.access_schema.constraints[0]


@pytest.fixture
def by_b(db):
    return db.access_schema.constraints[1]


class TestMaintainedEntries:

    def test_insert_updates_the_touched_entry_and_keeps_siblings_warm(
            self, db, by_a):
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, by_a, (1,))
        cache.lookup(db, by_a, (2,))
        db.insert("R", (1, 12))
        rows, hit = cache.lookup(db, by_a, (1,))
        assert hit and sorted(rows) == [(1, 10), (1, 11), (1, 12)]
        _, hit = cache.lookup(db, by_a, (2,))
        assert hit  # untouched X-key: no write ever dropped it
        assert cache.maintained_deltas == 1
        assert cache.maintenance_fallbacks == 0

    def test_delete_of_row_cached_in_multiple_entries(self, db, by_a, by_b):
        """One row projects into entries of *both* attached constraints
        (different X-keys); its deletion must update every cached entry
        it witnessed, in place."""
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        rows_a, _ = cache.lookup(db, by_a, (1,))     # (1,10), (1,11)
        rows_b, _ = cache.lookup(db, by_b, (10,))    # (10,1), (10,2)
        assert sorted(rows_a) == [(1, 10), (1, 11)]
        assert sorted(rows_b) == [(10, 1), (10, 2)]
        assert db.delete("R", (1, 10))
        rows_a, hit_a = cache.lookup(db, by_a, (1,))
        rows_b, hit_b = cache.lookup(db, by_b, (10,))
        assert hit_a and rows_a == [(1, 11)]
        assert hit_b and rows_b == [(10, 2)]
        assert cache.maintained_deltas == 1
        assert cache.maintained_entries == 2  # both entries repaired

    def test_unobservable_write_costs_nothing(self):
        """An effective row insert whose X∪Y projection is already
        witnessed changes no fetch result: the delta carries no
        changes and every entry stays warm as-is."""
        schema = Schema.from_dict({"T": ("A", "B", "C")})
        access = AccessSchema(schema,
                              [AccessConstraint("T", ("A",), ("B",), 4)])
        database = Database(schema, access)
        database.insert("T", (1, 10, "x"))
        constraint = access.constraints[0]
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(database)
        rows, _ = cache.lookup(database, constraint, (1,))
        assert rows == [(1, 10)]
        generation = database.generation("T")
        database.insert("T", (1, 10, "y"))  # second witness, same proj
        assert database.generation("T") == generation + 1
        rows, hit = cache.lookup(database, constraint, (1,))
        assert hit and rows == [(1, 10)]
        assert cache.maintained_deltas == 1
        assert cache.maintained_entries == 0  # nothing needed touching

    def test_encoded_entries_are_maintained_copy_on_write(self, db, by_a):
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        code = db.dictionary.encode(1)
        (entry,), _ = cache.lookup_many_encoded(db, by_a, [code])
        served_views, served_length = entry
        db.insert("R", (1, 12))
        (fresh,), hits = cache.lookup_many_encoded(db, by_a, [code])
        assert hits == [True]
        cols, length = fresh
        assert length == 3
        assert db.dictionary.decode_rows(cols, length) == \
            {(1, 10), (1, 11), (1, 12)}
        # Copy-on-write: the views served before the write still hold
        # exactly the content they were served with.
        assert served_length == 2
        assert db.dictionary.decode_rows(served_views, served_length) == \
            {(1, 10), (1, 11)}

    def test_clear_falls_back_to_invalidation(self, db, by_a):
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, by_a, (1,))
        db.clear()
        rows, hit = cache.lookup(db, by_a, (1,))
        assert not hit and rows == []
        assert cache.maintenance_fallbacks >= 1
        assert cache.maintenance_invalidations >= 1

    def test_detach_drops_maintained_entries(self, db, by_a):
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, by_a, (1,))
        dropped = cache.detach_maintenance()
        assert dropped == 1
        # Detached: back to byte-for-byte generation-keyed behaviour.
        _, hit = cache.lookup(db, by_a, (1,))
        assert not hit
        db.insert("R", (1, 12))
        _, hit = cache.lookup(db, by_a, (1,))
        assert not hit  # a write cold-starts generation-keyed entries


class TestFillRacingWrite:
    """The store rule for fills whose fetch raced a concurrent write:
    a fill stamped *before* an already-applied delta is discarded (it
    may predate the write); a fill at the current epoch stores and
    later deltas converge it."""

    def test_stale_fill_is_discarded(self, db, by_a):
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, by_a, (2,))  # establish the relation's epoch
        # Interleave by hand what two threads would do: the reader
        # stamps its fill with the pre-write generation and fetches...
        stamp = db.generation("R")
        schema = db.backend.access_schema
        stale_rows = db.fetch_many(by_a, [(1,)])[0]
        # ...then the writer's insert lands (delta applied, epoch
        # advances past the stamp) before the reader stores.
        db.insert("R", (1, 12))
        cache._store_maintained("R", stamp, schema,
                                [((by_a, (1,)), stale_rows)])
        rows, hit = cache.lookup(db, by_a, (1,))
        assert not hit  # the stale fill must not have stored
        assert sorted(rows) == [(1, 10), (1, 11), (1, 12)]
        _, hit = cache.lookup(db, by_a, (1,))
        assert hit

    def test_current_fill_stores_and_next_delta_maintains_it(
            self, db, by_a):
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, by_a, (2,))
        stamp = db.generation("R")
        rows = db.fetch_many(by_a, [(1,)])[0]
        cache._store_maintained("R", stamp, db.backend.access_schema,
                                [((by_a, (1,)), rows)])
        db.insert("R", (1, 12))
        rows, hit = cache.lookup(db, by_a, (1,))
        assert hit and sorted(rows) == [(1, 10), (1, 11), (1, 12)]

    def test_concurrent_writer_converges(self, db, by_a):
        """A live interleaving of the same race: reader batches racing
        a writer thread must end bit-identical to storage once the
        writer stops."""
        import threading

        cache = FetchCache(capacity=64)
        cache.attach_maintenance(db)

        def writer():
            for i in range(100, 160):
                db.insert("R", (1, i))
                if i % 3 == 0:
                    db.delete("R", (1, i - 2))

        thread = threading.Thread(target=writer)
        thread.start()
        for _ in range(200):
            cache.lookup(db, by_a, (1,))
        thread.join(timeout=30)
        assert not thread.is_alive()
        rows, _ = cache.lookup(db, by_a, (1,))
        assert sorted(rows) == sorted(db.fetch_many(by_a, [(1,)])[0])


class TestDiskReopen:
    """Durable generations across a DiskBackend close/reopen must not
    let a cache resurrect entries whose rows were dropped, nor serve
    around writes that landed while it was not listening."""

    def _open(self, tmp_path):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema,
                              [AccessConstraint("R", ("A",), ("B",), 8)])
        backend = DiskBackend(schema, tmp_path)
        return Database(schema, access, backend=backend)

    def test_reattach_after_reopen_never_resurrects(self, tmp_path):
        db = self._open(tmp_path)
        db.insert_many("R", [(1, 10), (1, 11)])
        constraint = db.access_schema.constraints[0]
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, constraint, (1,))
        assert db.delete("R", (1, 10))  # maintained in place
        rows, hit = cache.lookup(db, constraint, (1,))
        assert hit and rows == [(1, 11)]
        db.backend.close()

        db2 = self._open(tmp_path)
        try:
            # A write lands before the cache is listening again.
            db2.insert("R", (1, 12))
            cache.attach_maintenance(db2)  # detaches + purges first
            rows, hit = cache.lookup(db2, constraint, (1,))
            assert not hit
            assert sorted(rows) == [(1, 11), (1, 12)]
            assert (1, 10) not in rows  # the dropped row stayed dropped
        finally:
            db2.backend.close()

    def test_unattached_cache_cannot_serve_across_backends(self, tmp_path):
        """Without a reattach the old epochs cannot validate against
        the reopened backend once it diverges: generations are durable
        and strictly monotonic, so any post-reopen write moves the
        generation past every pre-close epoch."""
        db = self._open(tmp_path)
        db.insert_many("R", [(1, 10), (1, 11)])
        constraint = db.access_schema.constraints[0]
        cache = FetchCache(capacity=32)
        cache.attach_maintenance(db)
        cache.lookup(db, constraint, (1,))
        generation = db.generation("R")
        db.backend.close()

        db2 = self._open(tmp_path)
        try:
            assert db2.generation("R") == generation  # durable epochs
            db2.insert("R", (1, 12))  # cache is not listening
            rows, hit = cache.lookup(db2, constraint, (1,))
            assert not hit  # epoch lags the durable generation: dead
            assert sorted(rows) == [(1, 10), (1, 11), (1, 12)]
        finally:
            db2.backend.close()

    def test_service_on_reopened_backend_sees_exact_rows(self, tmp_path):
        db = self._open(tmp_path)
        db.insert_many("R", [(1, 10), (1, 11)])
        service = BoundedQueryService(db)
        service.register_template("t", "Q(y) :- R(x, y), x = $a")
        assert service.execute_template("t", {"a": 1}).answers == \
            {(10,), (11,)}
        db.delete("R", (1, 10))
        assert service.execute_template("t", {"a": 1}).answers == {(11,)}
        db.backend.close()

        db2 = self._open(tmp_path)
        try:
            service2 = BoundedQueryService(db2)
            service2.register_template("t", "Q(y) :- R(x, y), x = $a")
            assert service2.execute_template("t", {"a": 1}).answers == \
                {(11,)}
        finally:
            db2.backend.close()


class TestAnswerCache:

    def _profile(self, db, constraint):
        return FetchProfile(relations=frozenset({constraint.relation_name}),
                            constraints={constraint.relation_name:
                                         frozenset({constraint})},
                            maintainable=True,
                            schema=db.access_schema)

    def test_survives_only_exact_unobservable_deltas(self, db, by_a):
        profile = self._profile(db, by_a)
        dependencies = {"R": 5}
        quiet = WriteDelta("R", 5, 6, {by_a: ConstraintDelta()})
        assert AnswerCache._survives(quiet, dependencies, profile)
        observable = WriteDelta(
            "R", 5, 6,
            {by_a: ConstraintDelta(added=[((1,), (1, 12), 0, (0, 0))])})
        assert not AnswerCache._survives(observable, dependencies, profile)
        gapped = WriteDelta("R", 7, 8, {by_a: ConstraintDelta()})
        assert not AnswerCache._survives(gapped, dependencies, profile)
        wipe = WriteDelta.wipe("R", 5, 6)
        assert not AnswerCache._survives(wipe, dependencies, profile)

    def test_unobservable_write_advances_entry_in_place(self):
        schema = Schema.from_dict({"T": ("A", "B", "C")})
        access = AccessSchema(schema,
                              [AccessConstraint("T", ("A",), ("B",), 4)])
        database = Database(schema, access)
        database.insert("T", (1, 10, "x"))
        constraint = access.constraints[0]
        cache = AnswerCache(capacity=8)
        database.backend.add_write_listener(cache._on_delta)
        answers = frozenset({(10,)})
        cache.store("k", answers, {"T": database.generation("T")},
                    self._profile(database, constraint))
        database.insert("T", (1, 10, "y"))  # same projection: repaired
        assert cache.lookup(database, "k") == answers
        assert cache.maintained_entries == 1
        database.insert("T", (1, 11, "z"))  # new projection: dropped
        assert cache.lookup(database, "k") is None
        assert cache.maintenance_invalidations == 1

    def test_service_answer_cache_end_to_end(self, db):
        service = BoundedQueryService(db, answer_cache_size=16)
        service.register_template("t", "Q(y) :- R(x, y), x = $a")
        first = service.execute_template("t", {"a": 1})
        assert not first.answers_cached
        second = service.execute_template("t", {"a": 1})
        assert second.answers_cached
        assert second.answers == first.answers == {(10,), (11,)}
        db.insert("R", (1, 12))  # observable: the entry must go
        third = service.execute_template("t", {"a": 1})
        assert not third.answers_cached
        assert third.answers == {(10,), (11,), (12,)}
        # Ineffective write: no generation bump, the entry stands.
        db.insert("R", (1, 12))
        fourth = service.execute_template("t", {"a": 1})
        assert fourth.answers_cached and fourth.answers == third.answers

    def test_lookup_validates_generations_independently(self, db, by_a):
        """Even if the delta listener were never wired, a stale
        dependency generation is unservable."""
        cache = AnswerCache(capacity=8)  # deliberately not listening
        cache.store("k", frozenset({(10,)}),
                    {"R": db.generation("R")}, self._profile(db, by_a))
        assert cache.lookup(db, "k") == frozenset({(10,)})
        db.insert("R", (3, 30))
        assert cache.lookup(db, "k") is None
        assert cache.maintenance_invalidations == 1
