"""BoundedQueryService: correctness vs. the naive evaluator, batches,
counters and error paths.

The load-bearing property (ISSUE acceptance): **cached results are
bit-identical to uncached execution**, across random data, random
bindings and interleaved writes — checked here against
``repro.engine.naive``.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import (AccessConstraint, AccessSchema, Database, Schema,
                   ServiceError)
from repro.engine.naive import evaluate
from repro.query import parse_query
from repro.service import BatchRequest, BoundedQueryService

TEMPLATE = "Q(z) :- R(x, y), S(y, z), x = $a"


def make_db(r_rows, s_rows) -> Database:
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    access = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 3),
        AccessConstraint("S", ("B",), ("C",), 2),
    ])
    db = Database(schema, access)
    db.insert_many("R", r_rows)
    db.insert_many("S", s_rows)
    return db


def bounded_rows(pairs, bound):
    """Keep at most ``bound`` distinct second components per first
    component, so the instance satisfies the access schema."""
    kept, seen = [], {}
    for x, y in pairs:
        group = seen.setdefault(x, set())
        if y in group or len(group) < bound:
            group.add(y)
            kept.append((x, y))
    return kept


small_int = st.integers(0, 5)
row = st.tuples(small_int, small_int)


class TestPropertyCachedEqualsUncachedEqualsNaive:
    @settings(max_examples=60, deadline=None)
    @given(r_rows=st.lists(row, max_size=20),
           s_rows=st.lists(row, max_size=20),
           bindings=st.lists(small_int, min_size=1, max_size=8),
           inserts=st.lists(row, max_size=4))
    def test_template_traffic_with_interleaved_writes(
            self, r_rows, s_rows, bindings, inserts):
        db = make_db(bounded_rows(r_rows, 3), bounded_rows(s_rows, 2))
        service = BoundedQueryService(db)
        template = service.register_template("t", TEMPLATE)
        assert template.bounded
        inserts = iter(bounded_rows(inserts, 1))
        for index, a in enumerate(bindings):
            result = service.execute_template("t", {"a": a})
            naive = evaluate(
                parse_query(f"Q(z) :- R(x, y), S(y, z), x = {a}"), db)
            assert result.answers == naive
            # Same binding again, now definitely cache-served.
            warm = service.execute_template("t", {"a": a})
            assert warm.answers == naive
            if index % 2 == 1:
                fresh = next(inserts, None)
                if fresh is not None:
                    x, y = fresh
                    group = {b for a2, b in db.relation_tuples("R")
                             if a2 == x}
                    if y in group or len(group) < 3:
                        db.insert("R", (x, y))  # stays within A

    @settings(max_examples=30, deadline=None)
    @given(r_rows=st.lists(row, max_size=16), a=small_int)
    def test_raw_query_warm_equals_cold(self, r_rows, a):
        db = make_db(bounded_rows(r_rows, 3), [])
        service = BoundedQueryService(db)
        text = f"Q(y) :- R(x, y), x = {a}"
        cold = service.execute(text)
        warm = service.execute(text)
        naive = evaluate(parse_query(text), db)
        assert cold.answers == warm.answers == naive
        assert warm.plan_cached


class TestBatch:
    @pytest.fixture
    def service(self):
        db = make_db([(1, 10), (1, 11), (2, 10)],
                     [(10, 0), (10, 1), (11, 2)])
        svc = BoundedQueryService(db)
        svc.register_template("t", TEMPLATE)
        return svc

    def test_concurrent_equals_sequential(self, service):
        requests = [BatchRequest(template="t", params={"a": a % 3})
                    for a in range(30)]
        sequential = service.execute_batch(requests, max_workers=1)
        concurrent = service.execute_batch(requests, max_workers=8)
        assert sequential.errors == concurrent.errors == 0
        for left, right in zip(sequential.outcomes, concurrent.outcomes):
            assert left.result.answers == right.result.answers

    def test_report_metrics(self, service):
        requests = [BatchRequest(template="t", params={"a": 1})
                    for _ in range(10)]
        report = service.execute_batch(requests, max_workers=4)
        assert report.requests == 10
        assert report.bounded_requests == 10
        assert report.p50_ms > 0
        assert report.p95_ms >= report.p50_ms
        assert report.throughput_rps > 0
        totals = report.access_totals()
        assert totals.tuples_from_cache > 0
        assert 0 < report.fetch_cache_hit_rate <= 1

    def test_errors_are_contained(self, service):
        requests = [
            BatchRequest(template="t", params={"a": 1}),
            BatchRequest(template="missing", params={}),
            BatchRequest(template="t", params={"bogus": 1}),
        ]
        report = service.execute_batch(requests, max_workers=2)
        assert report.errors == 2
        assert report.outcomes[0].ok
        assert "unknown template" in report.outcomes[1].error
        assert "missing bindings" in report.outcomes[2].error

    def test_fail_fast_raises(self, service):
        with pytest.raises(ServiceError):
            service.execute_batch(
                [BatchRequest(template="missing", params={})],
                max_workers=1, fail_fast=True)

    def test_request_needs_exactly_one_kind(self):
        with pytest.raises(ValueError):
            BatchRequest()
        with pytest.raises(ValueError):
            BatchRequest(query="Q(x) :- R(x, y)", template="t")


class TestServiceLifecycle:
    def test_requires_an_access_schema(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        with pytest.raises(ServiceError, match="no access schema"):
            BoundedQueryService(Database(schema))

    def test_counters_track_modes(self):
        db = make_db([(1, 10)], [(10, 0)])
        service = BoundedQueryService(db)
        service.execute("Q(y) :- R(x, y), x = 1")      # bounded
        service.execute("Q(x, y) :- R(x, y)")          # fallback scan
        stats = service.stats()
        assert stats.requests == 2
        assert stats.bounded_requests == 1
        assert stats.fallback_requests == 1
        assert stats.plan_cache.misses == 2

    def test_fallback_reports_scan_stats(self):
        db = make_db([(1, 10), (2, 11)], [])
        service = BoundedQueryService(db)
        result = service.execute("Q(x, y) :- R(x, y)")
        assert not result.bounded
        assert result.reason
        assert result.scan_stats.tuples_scanned > 0
        assert result.answers == {(1, 10), (2, 11)}

    def test_clear_caches_keeps_templates_working(self):
        db = make_db([(1, 10)], [(10, 0)])
        service = BoundedQueryService(db)
        service.register_template("t", TEMPLATE)
        before = service.execute_template("t", {"a": 1}).answers
        service.clear_caches()
        assert service.execute_template("t", {"a": 1}).answers == before

    def test_rejects_explicitly_empty_access_schema(self):
        db = make_db([(1, 10)], [(10, 0)])
        empty = AccessSchema(db.schema, [])
        with pytest.raises(ServiceError, match="empty"):
            BoundedQueryService(db, access_schema=empty)
        # The rejection must not have replaced the database's indexes.
        assert len(db.access_schema) == 2
        assert BoundedQueryService(db).execute(
            "Q(y) :- R(x, y), x = 1").bounded

    def test_attaches_explicit_access_schema(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        db = Database(schema)
        db.insert("R", (1, 2))
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        service = BoundedQueryService(db, access_schema=access)
        assert service.execute("Q(y) :- R(x, y), x = 1").answers == {(2,)}


class TestPhysicalPlanCaching:
    def test_warm_requests_reuse_physical_plans_without_reoptimizing(
            self, monkeypatch):
        """The optimizer runs exactly once per compiled query; warm
        template requests bind the cached physical plan."""
        import repro.service.plancache as plancache

        calls = []
        real_optimize = plancache.optimize

        def counting_optimize(plan, statistics=None, **kwargs):
            calls.append(plan.name)
            return real_optimize(plan, statistics, **kwargs)

        monkeypatch.setattr(plancache, "optimize", counting_optimize)
        db = make_db([(1, 10), (2, 11)], [(10, 0), (11, 1)])
        service = BoundedQueryService(db)
        service.register_template("t", TEMPLATE)
        assert len(calls) == 1
        first = service.execute_template("t", {"a": 1})
        second = service.execute_template("t", {"a": 1})
        third = service.execute_template("t", {"a": 2})
        assert len(calls) == 1  # optimization never re-ran
        assert first.answers == second.answers == {(0,)}
        assert third.answers == {(1,)}

    def test_compiled_entries_carry_executable_physical_plans(self):
        from repro.engine.optimizer import PhysicalPlan

        db = make_db([(1, 10)], [(10, 7)])
        service = BoundedQueryService(db)
        entry = service.compile("Q(z) :- R(x, y), S(y, z), x = 1")
        assert entry.bounded
        assert isinstance(entry.physical, PhysicalPlan)
        assert entry.physical.trace is not None
        # The physical plan is what the hot path executes.
        result = service.execute("Q(z) :- R(x, y), S(y, z), x = 1")
        assert result.answers == {(7,)}

    def test_unbounded_entries_have_no_physical_plan(self):
        db = make_db([(1, 10)], [(10, 7)])
        service = BoundedQueryService(db)
        entry = service.compile("Q(x, y) :- R(x, y)")
        assert not entry.bounded
        assert entry.physical is None


class TestObservability:
    def test_service_result_requires_exactly_one_accounting(self):
        from repro.engine.executor import AccessStats
        from repro.engine.naive import ScanStats
        from repro.service import ServiceResult

        common = dict(answers=set(), bounded=True, plan_cached=False,
                      latency_s=0.01)
        ServiceResult(stats=AccessStats(), **common)  # bounded: ok
        ServiceResult(scan_stats=ScanStats(), **common)  # fallback: ok
        with pytest.raises(ValueError, match="got neither"):
            ServiceResult(**common)
        with pytest.raises(ValueError, match="got both"):
            ServiceResult(stats=AccessStats(), scan_stats=ScanStats(),
                          **common)

    def test_registry_counts_requests_and_caches(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        db = make_db([(1, 10), (2, 11)], [(10, 0), (11, 1)])
        service = BoundedQueryService(db, registry=registry)
        service.register_template("t", TEMPLATE)
        service.execute_template("t", {"a": 1})
        service.execute_template("t", {"a": 1})
        service.execute("Q(x, y) :- R(x, y)")  # scan fallback

        flat = registry.as_flat_dict()
        assert flat["repro_requests_total"] == 3
        assert flat["repro_bounded_requests_total"] == 2
        assert flat["repro_fallback_requests_total"] == 1
        assert flat["repro_plan_cached_requests_total"] >= 2
        assert flat["repro_request_latency_seconds_count"] == 3
        assert flat["repro_scan_tuples_total"] > 0
        assert flat["repro_tuples_fetched_total"] > 0
        # Warm repeat was served from the fetch cache, and the cache
        # collector mirrors the hit into the registry.
        assert flat["repro_tuples_from_cache_total"] > 0
        assert flat["repro_fetch_cache_hits_total"] > 0
        assert flat["repro_db_rows"] == db.size()
        # Per-op executor tallies surface as labeled counters.
        assert any(key.startswith("repro_executor_ops_total.op=")
                   for key in flat)

    def test_stats_include_storage_counters(self, tmp_path):
        from repro.storage.disk import DiskBackend

        db = make_db([(1, 10)], [(10, 7)])
        schema = db.schema
        disk = Database(schema, db.access_schema,
                        backend=DiskBackend(schema, tmp_path / "data"))
        disk.insert_many("R", [(1, 10)])
        disk.insert_many("S", [(10, 7)])
        service = BoundedQueryService(disk)
        service.execute("Q(z) :- R(x, y), S(y, z), x = 1")
        storage = service.stats().storage
        assert storage["wal_records_total"] > 0
        assert storage["dictionary_size"] > 0  # from the base backend
        assert "storage:" in str(service.stats())
        # The memory backend reports only the shared dictionary size.
        memory_service = BoundedQueryService(db)
        assert memory_service.stats().storage == {
            "dictionary_size": len(db.dictionary)}
        disk.backend.close()
