"""Property: the chase preserves A-equivalence (DESIGN.md invariant 4).

For random small CQs and random FD-style access schemas, the chased
query must agree with the original on every instance satisfying A —
checked both by the A-equivalence decision procedure and by direct
evaluation on random repaired instances.
"""

from __future__ import annotations

import random

from hypothesis import given, settings, strategies as st

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import a_equivalent, chase, chase_and_core
from repro.engine import evaluate
from repro.query import CQ, Atom, Const, Equality, Var
from repro.query.normalize import normalize_cq


def make_schema():
    return Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})


@st.composite
def random_query(draw):
    """Small random safe CQs over R(A,B), S(B,C)."""
    variables = [Var(f"v{i}") for i in range(4)]
    n_atoms = draw(st.integers(1, 3))
    atoms = []
    for _ in range(n_atoms):
        relation = draw(st.sampled_from(["R", "S"]))
        atoms.append(Atom(relation, (draw(st.sampled_from(variables)),
                                     draw(st.sampled_from(variables)))))
    atom_vars = sorted({v for a in atoms for v in a.variables()},
                       key=lambda v: v.name)
    equalities = []
    for var in atom_vars:
        if draw(st.booleans()) and len(equalities) < 2:
            equalities.append(Equality(var, Const(draw(st.integers(0, 2)))))
    head = [draw(st.sampled_from(atom_vars))]
    return CQ("Q", head, atoms, equalities)


@st.composite
def random_fd_schema(draw):
    schema = make_schema()
    constraints = []
    if draw(st.booleans()):
        constraints.append(AccessConstraint("R", ("A",), ("B",), 1))
    if draw(st.booleans()):
        constraints.append(AccessConstraint("S", ("B",), ("C",), 1))
    if draw(st.booleans()):
        constraints.append(AccessConstraint("R", (), ("A",), 2))
    return AccessSchema(schema, constraints)


@given(q=random_query(), access=random_fd_schema())
@settings(max_examples=60, deadline=None)
def test_chase_preserves_a_equivalence(q, access):
    schema = access.schema
    q = normalize_cq(q, schema)
    result = chase_and_core(q, access)
    if result.unsatisfiable:
        # Unsatisfiability means Q is empty on all A-instances: verified
        # by direct evaluation below instead of a_equivalent.
        _check_empty_on_instances(q, access)
        return
    if not result.changed:
        return
    verdict = a_equivalent(q, result.query, access)
    assert not verdict.is_no, (
        f"chase broke A-equivalence: {q} vs {result.query}: "
        f"{verdict.reason}")


def _check_empty_on_instances(q, access, n_instances: int = 5):
    rng = random.Random(hash(str(q)) % (2 ** 31))
    schema = access.schema
    for _ in range(n_instances):
        db = Database(schema, access)
        for _ in range(12):
            relation = rng.choice(["R", "S"])
            row = (rng.randint(0, 2), rng.randint(0, 2))
            db.insert(relation, row)
            if not db.satisfies():
                rebuilt = Database(schema, access)
                for name in schema.relation_names():
                    keep = [t for t in db.relation_tuples(name)
                            if not (name == relation and t == row)]
                    rebuilt.insert_many(name, keep)
                db = rebuilt
        assert db.satisfies()
        assert evaluate(q, db) == set()


@given(q=random_query(), access=random_fd_schema(),
       rows=st.lists(st.tuples(st.sampled_from(["R", "S"]),
                               st.integers(0, 2), st.integers(0, 2)),
                     max_size=12))
@settings(max_examples=60, deadline=None)
def test_chase_agrees_on_concrete_instances(q, access, rows):
    """Direct check: chased query evaluates identically on satisfying
    instances (stronger than the enumeration when it applies)."""
    schema = access.schema
    q = normalize_cq(q, schema)
    result = chase_and_core(q, access)
    db = Database(schema, access)
    for relation, a, b in rows:
        db.insert(relation, (a, b))
        if not db.satisfies():
            rebuilt = Database(schema, access)
            for name in schema.relation_names():
                keep = [t for t in db.relation_tuples(name)
                        if not (name == relation and t == (a, b))]
                rebuilt.insert_many(name, keep)
            db = rebuilt
    assert db.satisfies()
    expected = evaluate(q, db)
    if result.unsatisfiable:
        assert expected == set()
    else:
        assert evaluate(result.query, db) == expected
