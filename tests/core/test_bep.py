"""Unit tests for BEP and CQP (Sections 3.1–3.2, Lemma 3.6)."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import is_boundedly_evaluable, is_covered
from repro.engine import evaluate, execute_plan
from repro.query import parse_cq, parse_query, parse_ucq


class TestBEPForCQ:
    def test_q0(self, accident_access, q0):
        decision = is_boundedly_evaluable(q0, accident_access)
        assert decision
        assert decision.details["method"] == "covered"

    def test_example31_1_no(self, example31):
        _, a1, q1 = example31["1"]
        decision = is_boundedly_evaluable(q1, a1)
        assert decision.is_no
        assert decision.details.get("complete") is False

    def test_example31_2_yes_via_unsat(self, example31):
        r2, a2, q2 = example31["2"]
        decision = is_boundedly_evaluable(q2, a2)
        assert decision
        assert decision.details["method"] == "unsatisfiable"
        # The empty plan really answers Q2 on instances satisfying A2.
        db = Database(r2, a2)
        db.insert_many("R2", [(1, 1), (2, 2)])
        plan = decision.witness["plan"]
        assert execute_plan(plan, db).answers == evaluate(q2, db) == set()

    def test_example31_3_yes(self, example31):
        r3, a3, q3 = example31["3"]
        decision = is_boundedly_evaluable(q3, a3)
        assert decision
        # Covered directly (Example 3.10) — and the plan is correct.
        db = Database(r3, a3)
        db.insert_many("R3", [(1, 1, 5), (5, 5, 5), (2, 3, 5)])
        db.check()
        plan = decision.witness["plan"]
        assert execute_plan(plan, db).answers == evaluate(q3, db)

    def test_rewriting_path(self):
        """A query that is only bounded after the chase rewrites it."""
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1),
            AccessConstraint("S", ("B",), ("C",), 3),
        ])
        # y2 is not covered as written; the chase equates y1 = y2 and the
        # core folds the redundant atom.
        q = parse_cq("Q(z) :- R(x, y1), R(x, y2), S(y2, z), x = 1")
        decision = is_boundedly_evaluable(q, aschema)
        assert decision
        db = Database(schema, aschema)
        db.insert_many("R", [(1, 10), (2, 20)])
        db.insert_many("S", [(10, 100), (10, 101), (20, 200)])
        db.check()
        plan = decision.witness["plan"]
        assert execute_plan(plan, db).answers == evaluate(q, db)

    def test_plan_witness_always_executable(self, accident_access,
                                            accident_db, q0):
        decision = is_boundedly_evaluable(q0, accident_access)
        result = execute_plan(decision.witness["plan"], accident_db)
        assert result.answers == evaluate(q0, accident_db)


class TestBEPForUCQ:
    def test_example35_second_part(self):
        """Q = Q1 ∪ Q2 bounded although Q2 alone is not (Example 3.5)."""
        schema = Schema.from_dict({"Rp": ("A", "B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("Rp", ("A",), ("B",), 4)])
        u = parse_ucq("Q(y) :- Rp(x, y, z), x = 1 ; "
                      "Q(y) :- Rp(x, y, z), x = 1, z = y")
        q2 = u.disjuncts[1]
        assert is_boundedly_evaluable(q2, aschema).is_no
        decision = is_boundedly_evaluable(u, aschema)
        assert decision
        # And the union plan is correct on a concrete instance.
        db = Database(schema, aschema)
        db.insert_many("Rp", [(1, 5, 5), (1, 6, 7), (2, 8, 8)])
        db.check()
        assert execute_plan(decision.witness["plan"], db).answers == \
            evaluate(u, db)

    def test_all_disjuncts_bounded(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        u = parse_ucq("Q(y) :- R(x, y), x = 1 ; Q(y) :- R(x, y), x = 2")
        assert is_boundedly_evaluable(u, aschema)

    def test_hopeless_union(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        u = parse_ucq("Q(y) :- R(x, y), x = 1 ; Q(y) :- R(x, y)")
        assert is_boundedly_evaluable(u, aschema).is_no

    def test_unsat_disjuncts_dropped(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        u = parse_ucq("Q(y) :- R(x, y), x = 1 ; "
                      "Q(y) :- R(x, y1), R(x, y2), y1 = 1, y2 = 2, y = y1")
        decision = is_boundedly_evaluable(u, aschema)
        assert decision
        assert any("dropped" in note for note in decision.details["notes"])


class TestBEPForFormulas:
    def test_positive_query(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2),
            AccessConstraint("S", ("A",), ("B",), 2)])
        q = parse_query("Q(y) := EXISTS x. ((R(x, y) OR S(x, y)) AND x = 1)")
        assert is_boundedly_evaluable(q, aschema)

    def test_fo_with_negation_unknown(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        q = parse_query("Q(x) := R(x, y) AND NOT R(y, x) AND x = 1")
        decision = is_boundedly_evaluable(q, aschema)
        assert decision.is_unknown
        assert "undecidable" in decision.reason

    def test_fo_with_positive_body_decided(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        from repro.query.ast import FOQuery
        positive = parse_query("Q(y) := EXISTS x. (R(x, y) AND x = 1)")
        fo = FOQuery(positive.name, positive.head, positive.body)
        assert is_boundedly_evaluable(fo, aschema)


class TestCQP:
    def test_cq_ptime_path(self, accident_access, q0):
        assert is_covered(q0, accident_access)

    def test_ucq_general_definition(self):
        """A UCQ is covered although one disjunct is not (subsumption)."""
        schema = Schema.from_dict({"Rp": ("A", "B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("Rp", ("A",), ("B",), 4)])
        u = parse_ucq("Q(y) :- Rp(x, y, z), x = 1 ; "
                      "Q(y) :- Rp(x, y, z), x = 1, z = y")
        assert is_covered(u, aschema)

    def test_ucq_not_covered(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        u = parse_ucq("Q(y) :- R(x, y), x = 1 ; Q(y) :- R(x, y)")
        assert is_covered(u, aschema).is_no

    def test_rejects_fo(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [])
        q = parse_query("Q(x) := NOT R(x, x)")
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            is_covered(q, aschema)
