"""Unit tests for the FD-chase and core minimization."""

from __future__ import annotations


from repro import AccessConstraint, AccessSchema, Schema
from repro.core import chase, chase_and_core, core_of
from repro.query import classically_equivalent, parse_cq


class TestChase:
    def test_example31_2_contradiction(self, example31):
        _, a2, q2 = example31["2"]
        result = chase(q2, a2)
        assert result.unsatisfiable

    def test_example31_3_equates_via_empty_fd(self, example31):
        _, a3, q3 = example31["3"]
        result = chase(q3, a3)
        assert not result.unsatisfiable
        # ϕ4 = R3(∅ -> C, 1) forces x = y = z3; the three C-position
        # variables collapse to one.
        chased = result.query
        head_names = {v.name for v in chased.head}
        assert len(head_names) == 1

    def test_no_fds_no_change(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 5)])
        q = parse_cq("Q(x) :- R(x, y), R(x, z), x = 1")
        result = chase(q, aschema)
        assert not result.changed

    def test_fd_merges_y_vars(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        q = parse_cq("Q(y, z) :- R(x, y), R(x, z)")
        result = chase(q, aschema)
        assert result.changed
        assert len(result.query.atoms) == 1
        assert result.query.head[0] == result.query.head[1]

    def test_fd_propagates_constants(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        q = parse_cq("Q(z) :- R(x, y), R(x, z), x = 1, y = 5")
        result = chase(q, aschema)
        assert not result.unsatisfiable
        from repro.query import analyze_variables
        analysis = analyze_variables(result.query)
        assert analysis.pinned_value(result.query.head[0]) == 5

    def test_transitive_chase(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1),
            AccessConstraint("S", ("B",), ("C",), 1),
        ])
        q = parse_cq("Q(c1, c2) :- R(x, y1), R(x, y2), S(y1, c1), S(y2, c2)")
        result = chase(q, aschema)
        # y1 = y2 forces c1 = c2.
        assert result.query.head[0] == result.query.head[1]

    def test_pigeonhole_unsat(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        q = parse_cq("Q() :- R(x, y1), R(x, y2), R(x, y3), "
                     "y1 = 1, y2 = 2, y3 = 3, x = 0")
        result = chase(q, aschema)
        assert result.unsatisfiable
        assert any("pigeonhole" in step for step in result.steps)

    def test_pigeonhole_not_triggered_within_bound(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        q = parse_cq("Q() :- R(x, y1), R(x, y2), y1 = 1, y2 = 2, x = 0")
        assert not chase(q, aschema).unsatisfiable

    def test_eqplus_grouping(self):
        """Two atoms whose X-sides are pinned to the same constant chase
        together even without a shared variable."""
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        q = parse_cq("Q(y, z) :- R(x1, y), R(x2, z), x1 = 7, x2 = 7")
        result = chase(q, aschema)
        assert result.query.head[0] == result.query.head[1]

    def test_chase_preserves_classical_containment_direction(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        q = parse_cq("Q(y, z) :- R(x, y), R(x, z)")
        chased = chase(q, aschema).query
        # The chased query is classically contained in the original
        # (it only adds equalities).
        from repro.query import classically_contained
        assert classically_contained(chased, q)


class TestCore:
    def test_folds_implied_atom(self):
        q = parse_cq("Q(x) :- R(x, y), R(x, z), z = 1")
        minimized = core_of(q)
        assert len(minimized.atoms) == 1
        assert classically_equivalent(q, minimized)

    def test_keeps_core_atoms(self):
        q = parse_cq("Q(x) :- R(x, y), S(y, z)")
        assert len(core_of(q).atoms) == 2

    def test_unsat_query_untouched(self):
        q = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
        assert core_of(q) is q


class TestChaseAndCore:
    def test_example31_3_full_rewrite(self, example31):
        """Chase + core turn Q3 into (a variant of) Q'3."""
        _, a3, q3 = example31["3"]
        result = chase_and_core(q3, a3)
        assert not result.unsatisfiable
        # R3(z1, z2, y) folds away after x = y = z3 is derived.
        assert len(result.query.atoms) == 2

    def test_steps_recorded(self, example31):
        _, a3, q3 = example31["3"]
        result = chase_and_core(q3, a3)
        assert result.steps
