"""Unit tests for cov(Q, A) and covered queries (Section 3.2)."""

from __future__ import annotations


from repro import AccessConstraint, AccessSchema, Schema
from repro.core import (analyze_coverage, covered_variables, is_bounded_cq,
                        is_covered_cq)
from repro.query import Var, parse_cq


class TestCovFixpoint:
    def test_constant_vars_seed(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [])
        q = parse_cq("Q(x) :- R(x, y), x = 1")
        covered, applications = covered_variables(q, aschema)
        assert Var("x") in covered
        assert Var("y") not in covered
        assert applications == []

    def test_data_independent_seed(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [])
        q = parse_cq("Q(u) :- R(x, y), u = 1")
        covered, _ = covered_variables(q, aschema)
        assert Var("u") in covered

    def test_application_propagates(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2),
            AccessConstraint("S", ("B",), ("C",), 2),
        ])
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        covered, applications = covered_variables(q, aschema)
        assert {Var("x"), Var("y"), Var("z")} <= covered
        assert len(applications) == 2

    def test_eqplus_closure_propagates(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        q = parse_cq("Q(z) :- R(x, y), R(w, z), x = 1, y = u, u = w")
        covered, _ = covered_variables(q, aschema)
        # Covering y covers u and w through eq+; w then unlocks z.
        assert {Var("u"), Var("w"), Var("z")} <= covered

    def test_extra_constants_act_as_pinned(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        q = parse_cq("Q(y) :- R(x, y)")
        covered, _ = covered_variables(q, aschema)
        assert Var("y") not in covered
        covered2, _ = covered_variables(q, aschema,
                                        extra_constants=[Var("x")])
        assert Var("y") in covered2

    def test_order_independence(self):
        """Lemma 3.9: the fixpoint does not depend on constraint order."""
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
        c1 = AccessConstraint("R", ("A",), ("B",), 2)
        c2 = AccessConstraint("S", ("B",), ("C",), 2)
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        cov_a, _ = covered_variables(q, AccessSchema(schema, [c1, c2]))
        cov_b, _ = covered_variables(q, AccessSchema(schema, [c2, c1]))
        assert cov_a == cov_b

    def test_monotone_in_access_schema(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
        c1 = AccessConstraint("R", ("A",), ("B",), 2)
        c2 = AccessConstraint("S", ("B",), ("C",), 2)
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        small, _ = covered_variables(q, AccessSchema(schema, [c1]))
        large, _ = covered_variables(q, AccessSchema(schema, [c1, c2]))
        assert small <= large


class TestPaperExamples:
    def test_q0_covered(self, accident_access, q0):
        result = analyze_coverage(q0, accident_access)
        assert result.is_covered
        names = {v.name for v in result.covered}
        assert {"aid", "vid", "dri", "xa"} <= names
        assert "cid" not in names
        assert "class" not in names

    def test_example31_1_not_covered(self, example31):
        _, a1, q1 = example31["1"]
        result = analyze_coverage(q1, a1)
        assert not result.is_covered
        # The failure is condition (c): the atom is not indexed.
        assert result.unindexed_atoms
        assert not result.free_uncovered

    def test_example31_2_not_covered(self, example31):
        _, a2, q2 = example31["2"]
        result = analyze_coverage(q2, a2)
        assert not result.is_covered
        assert [v.name for v in result.free_uncovered] == ["x"]

    def test_example31_3_covered(self, example31):
        _, a3, q3 = example31["3"]
        result = analyze_coverage(q3, a3)
        assert result.is_covered
        assert {v.name for v in result.covered} == {"x", "y", "z3",
                                                    "x1", "x2"}

    def test_example312_unsat_query_covered(self):
        """Q'2(x) = (x=1 ∧ x=2) is covered: x is data-independent."""
        schema = Schema.from_dict({"R2": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R2", ("A",), ("B",), 1)])
        q = parse_cq("Q(x) :- x = 1, x = 2")
        result = analyze_coverage(q, aschema)
        assert result.is_covered


class TestConditions:
    def make(self, query_text, constraints):
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        aschema = AccessSchema(schema, constraints and [
            AccessConstraint("R", *c) for c in constraints] or [])
        return analyze_coverage(parse_cq(query_text), aschema)

    def test_condition_a_free_vars(self):
        result = self.make("Q(x) :- R(x, y, z)", [(("A",), ("B",), 2)])
        assert result.free_uncovered == [Var("x")]

    def test_condition_b_multiply_occurring_uncovered(self):
        # z occurs twice but is never covered.
        result = self.make("Q(x) :- R(x, z, z), x = 1",
                           [(("A",), ("B", "C"), 2)])
        # z is covered via B and C here; pick a weaker schema instead.
        result = self.make("Q(x) :- R(x, z, z), x = 1", [(("A",), ("A",), 1)])
        assert Var("z") in result.lone_violations

    def test_condition_c_span(self):
        # y is free; constraint only spans A, B so position C escapes.
        result = self.make("Q(y) :- R(x, z, y), x = 1",
                           [(("A",), ("B",), 2)])
        assert result.unindexed_atoms == [0]

    def test_condition_c_lone_exemption(self):
        # z is bound and occurs once: exempt from the span requirement.
        result = self.make("Q(y) :- R(x, y, z), x = 1",
                           [(("A",), ("B",), 2)])
        assert result.is_covered

    def test_condition_c_covered_lone_var_still_exempt(self):
        """Example 4.5's subtlety: coverage does not revoke exemption."""
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 4),
            AccessConstraint("R", ("B",), ("C",), 1),
        ])
        q = parse_cq("Q(x, y) :- R(u, x, s1), R(s2, x, y), u = 1")
        result = analyze_coverage(q, aschema)
        assert result.is_covered

    def test_decision_reasons(self):
        result = self.make("Q(x) :- R(x, y, z)", [(("A",), ("B",), 2)])
        decision = result.decision()
        assert decision.is_no
        assert "free variables not covered" in decision.reason

    def test_explain_mentions_applications(self, accident_access, q0):
        text = analyze_coverage(q0, accident_access).explain()
        assert "apply" in text
        assert "yes" in text


class TestBoundedness:
    def test_example41_q1_bounded_not_covered(self, example41):
        _, access, q1, q2 = example41
        assert is_bounded_cq(q1, access)
        assert not is_covered_cq(q1, access)

    def test_example41_q2_not_bounded(self, example41):
        _, access, q1, q2 = example41
        decision = is_bounded_cq(q2, access)
        assert decision.is_no
        assert "y" in decision.reason
