"""Unit tests for A-containment and A-equivalence (Lemma 3.3, Example 3.5)."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema
from repro.core import a_contained, a_equivalent
from repro.query import parse_cq, parse_ucq


class TestClassicalAgreement:
    """Without constraints, A-containment degenerates to classical."""

    @pytest.fixture
    def aschema(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("A",)})
        return AccessSchema(schema, [])

    def test_subset_atoms(self, aschema):
        big = parse_cq("Q(x) :- R(x, y), S(y)")
        small = parse_cq("Q(x) :- R(x, y)")
        assert a_contained(big, small, aschema)
        assert a_contained(small, big, aschema).is_no

    def test_equivalence_up_to_renaming(self, aschema):
        q1 = parse_cq("Q(x) :- R(x, y), S(y)")
        q2 = parse_cq("Q(a) :- R(a, b), S(b)")
        assert a_equivalent(q1, q2, aschema)

    def test_arity_mismatch(self, aschema):
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x, y) :- R(x, y)")
        assert a_contained(q1, q2, aschema).is_no


class TestConstraintSensitive:
    def test_fd_makes_queries_equivalent(self):
        """Under R(A -> B, 1), Q(y) :- R(1,y) equals Q(y) :- R(1,y),R(1,z),y=z ... and
        more interestingly two fetches of the same key coincide."""
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        q1 = parse_cq("Q(y, z) :- R(x, y), R(x, z), x = 1")
        q2 = parse_cq("Q(y, y) :- R(x, y), x = 1")
        assert a_equivalent(q1, q2, aschema)
        # Classically they are NOT equivalent.
        no_constraints = AccessSchema(schema, [])
        assert a_equivalent(q1, q2, no_constraints).is_no

    def test_unsatisfiable_contained_in_everything(self, example31):
        _, a2, q2 = example31["2"]
        other = parse_cq("P(x) :- R2(x, y), y = 9")
        assert a_contained(q2, other, a2)

    def test_example35_union_containment(self):
        """Q ⊑A Q1 ∪ Q2 but Q ⋢A Q1 and Q ⋢A Q2 (Example 3.5)."""
        schema = Schema.from_dict({"R": ("X",), "S": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 2)])
        q = parse_cq(
            "Q(x) :- R(y1), y1 = 1, R(y2), y2 = 0, S(x, y), R(y)")
        union = parse_ucq(
            "Qp(x) :- S(x, y), R(y), y = 1 ; Qp(x) :- S(x, y), R(y), y = 0")
        q1 = parse_cq("Q1(x) :- S(x, y), R(y), y = 1")
        q2 = parse_cq("Q2(x) :- S(x, y), R(y), y = 0")
        assert a_contained(q, union, aschema)
        assert a_contained(q, q1, aschema).is_no
        assert a_contained(q, q2, aschema).is_no

    def test_counterexample_witness(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [])
        q1 = parse_cq("Q(x) :- R(x, y)")
        q2 = parse_cq("Q(x) :- R(x, y), y = 1")
        decision = a_contained(q1, q2, aschema)
        assert decision.is_no
        assert decision.witness is not None
        # The witness instance makes q1 true and q2 false.
        from repro.engine import evaluate
        instance = decision.witness
        assert instance.head_value in evaluate(q1, instance.db)
        assert instance.head_value not in evaluate(q2, instance.db)

    def test_pigeonhole_containment(self):
        """With |R| ≤ 1 globally, any two R-atoms denote the same value."""
        schema = Schema.from_dict({"R": ("X",), "T": ("X",)})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 1)])
        q1 = parse_cq("Q(x, y) :- R(x), R(y)")
        q2 = parse_cq("Q(x, x) :- R(x)")
        assert a_equivalent(q1, q2, aschema)

    def test_ucq_left_side(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [])
        u = parse_ucq("Q(x) :- R(x, y), y = 1 ; Q(x) :- R(x, y), y = 2")
        q = parse_cq("P(x) :- R(x, y)")
        assert a_contained(u, q, aschema)
        assert a_contained(q, u, aschema).is_no
