"""Corollaries 3.15 and 5.5: the Section 3 and Section 5 results carry
over to general access constraints ``R(X -> Y, s(·))``.

The coverage analysis, chase (functional fragment only), BEP pipeline
and QSP never inspect the cardinality *value* except through the
``is_functional`` flag and the cost certificates, so swapping constants
for sublinear functions must not change any verdict — these tests pin
that down.
"""

from __future__ import annotations

import pytest

from repro import (AccessConstraint, AccessSchema, Database, LogCardinality,
                   PowerCardinality, Schema, Var)
from repro.core import (analyze_coverage, is_boundedly_evaluable,
                        specialize_minimally)
from repro.engine import evaluate, execute_plan, static_bounds
from repro.query import parse_cq


def constant_world():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    return schema, AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 4),
        AccessConstraint("S", ("B",), ("C",), 5),
    ])


def general_world():
    schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
    return schema, AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), LogCardinality()),
        AccessConstraint("S", ("B",), ("C",), PowerCardinality(0.5)),
    ])


QUERIES = [
    "Q(z) :- R(x, y), S(y, z), x = 1",        # covered
    "Q(y) :- R(x, y), x = 1",                 # covered
    "Q(x, y) :- R(x, y)",                     # not covered
    "Q(z) :- S(y, z)",                        # not covered
]


class TestCorollary315:
    """Coverage/BEP verdicts are identical under constant and general
    cardinalities (Corollary 3.15)."""

    @pytest.mark.parametrize("text", QUERIES)
    def test_coverage_verdicts_agree(self, text):
        _, constant = constant_world()
        _, general = general_world()
        q = parse_cq(text)
        assert analyze_coverage(q, constant).is_covered == \
            analyze_coverage(q, general).is_covered

    @pytest.mark.parametrize("text", QUERIES)
    def test_bep_verdicts_agree(self, text):
        _, constant = constant_world()
        _, general = general_world()
        q = parse_cq(text)
        assert is_boundedly_evaluable(q, constant).verdict == \
            is_boundedly_evaluable(q, general).verdict

    def test_plan_executes_under_general_constraints(self):
        schema, general = general_world()
        q = parse_cq("Q(z) :- R(x, y), S(y, z), x = 1")
        decision = is_boundedly_evaluable(q, general)
        assert decision
        db = Database(schema, general)
        db.insert_many("R", [(1, 10), (1, 11), (2, 12)])
        db.insert_many("S", [(10, 100), (11, 101), (12, 102)])
        db.check()
        plan = decision.witness["plan"]
        result = execute_plan(plan, db)
        assert result.answers == evaluate(q, db)
        # The certificate now depends on |D| (Section 2's point).
        small_bound = static_bounds(plan, db_size=db.size()).fetch_bound
        large_bound = static_bounds(plan, db_size=10 ** 6).fetch_bound
        assert small_bound < large_bound
        assert result.stats.tuples_fetched <= small_bound

    def test_fd_chase_ignores_nonfunctional_general_bounds(self):
        """A log-bounded constraint is not an FD; the chase must not
        equate through it."""
        schema = Schema.from_dict({"R": ("A", "B")})
        general = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), LogCardinality())])
        from repro.core import chase
        q = parse_cq("Q(y, z) :- R(x, y), R(x, z), x = 1")
        result = chase(q, general)
        assert not result.changed
        assert result.query.head[0] != result.query.head[1]


class TestCorollary55:
    """QSP verdicts carry over to general constraints (Corollary 5.5)."""

    def test_specialization_agrees(self):
        _, constant = constant_world()
        _, general = general_world()
        q = parse_cq("Q(z) :- R(x, y), S(y, z)")
        for access in (constant, general):
            decision = specialize_minimally(q, access,
                                            parameters=[Var("x"),
                                                        Var("y")])
            assert decision
            assert [v.name for v in decision.witness] == ["x"]

    def test_prop54_with_general_constraints(self):
        from repro.core import fully_parameterized_specialization
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), LogCardinality())])
        from repro.query import parse_query
        q = parse_query("Q(x) := R(x, y) AND NOT R(y, x)")
        assert fully_parameterized_specialization(q, access)
