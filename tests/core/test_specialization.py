"""Unit tests for bounded query specialization — QSP (Section 5)."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Const, Schema, Var
from repro.core import (analyze_coverage, fully_parameterized_specialization,
                        is_boundedly_evaluable, specialization_is_covered,
                        specialize_minimally)
from repro.engine import evaluate
from repro.query import parse_cq, parse_query, parse_ucq


@pytest.fixture
def parameterized_q(accident_schema):
    """Example 5.1's Q: like Q0 but with district/date as parameters."""
    return parse_cq(
        "Q(xa) :- Accident(aid, district, date), "
        "Casualty(cid, aid, class, vid), Vehicle(vid, dri, xa)")


class TestExample51:
    def test_q_itself_not_bounded(self, accident_access, parameterized_q):
        assert is_boundedly_evaluable(parameterized_q,
                                      accident_access).is_no

    def test_date_alone_suffices(self, accident_access, parameterized_q):
        decision = specialize_minimally(
            parameterized_q, accident_access,
            parameters=[Var("date"), Var("district")])
        assert decision
        assert [v.name for v in decision.witness] == ["date"]

    def test_district_alone_fails(self, accident_access, parameterized_q):
        decision = specialize_minimally(
            parameterized_q, accident_access, parameters=[Var("district")])
        assert decision.is_no

    def test_specialized_query_is_actually_bounded(
            self, accident_access, accident_db, parameterized_q):
        """Instantiate date with a real constant: the specialized query
        is covered, and its bounded plan agrees with naive evaluation."""
        specialized = parameterized_q.specialize(
            {Var("date"): Const("1/5/2005")})
        decision = is_boundedly_evaluable(specialized, accident_access)
        assert decision
        from repro.engine import execute_plan
        plan = decision.witness["plan"]
        assert execute_plan(plan, accident_db).answers == \
            evaluate(specialized, accident_db)

    def test_coverage_is_valuation_independent(self, accident_access,
                                               parameterized_q):
        """Any constant gives the same (covered) analysis — including one
        that already occurs in the query's data domain."""
        for value in ("1/5/2005", "nonsense", 42):
            specialized = parameterized_q.specialize(
                {Var("date"): Const(value)})
            assert analyze_coverage(specialized,
                                    accident_access).is_covered


class TestQSPMechanics:
    @pytest.fixture
    def world(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("B", "C")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2),
            AccessConstraint("S", ("B",), ("C",), 2)])
        return schema, access

    def test_k_limits_search(self, world):
        _, access = world
        q = parse_cq("Q(y, c) :- R(x, y), S(y2, c), y2 = y")
        # Instantiating x covers everything downstream.
        decision = specialize_minimally(q, access, parameters=[Var("x")],
                                        k=1)
        assert decision
        assert len(decision.witness) == 1

    def test_k_zero_only_accepts_covered(self, world, accident_access, q0):
        decision = specialize_minimally(q0, accident_access, k=0)
        assert decision
        assert decision.witness == ()

    def test_unsatisfiable_query_rejected(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        q = parse_cq("Q(x) :- R(x, y1), R(x, y2), y1 = 1, y2 = 2")
        decision = specialize_minimally(q, access)
        assert decision.is_no
        assert "condition (b)" in decision.reason

    def test_unknown_parameter_rejected(self, world):
        _, access = world
        q = parse_cq("Q(y) :- R(x, y)")
        from repro.errors import QueryError
        with pytest.raises(QueryError, match="does not occur"):
            specialize_minimally(q, access, parameters=[Var("zzz")])

    def test_default_parameters_all_variables(self, world):
        _, access = world
        q = parse_cq("Q(y) :- R(x, y)")
        decision = specialize_minimally(q, access)
        assert decision
        # x is the cheapest single choice (y alone also works; ties are
        # broken by combination order, x first).
        assert decision.witness == (Var("x"),)

    def test_minimality(self, world):
        """The returned tuple has the smallest possible size."""
        _, access = world
        q = parse_cq("Q(c) :- R(x, y), S(y, c)")
        decision = specialize_minimally(q, access)
        assert decision
        assert len(decision.witness) == 1

    def test_no_solution_within_k(self, world):
        _, access = world
        # Two independent chains need two instantiations.
        q = parse_cq("Q(c, d) :- R(x, y), S(y, c), R(u, v), S(v, d)")
        assert specialize_minimally(q, access, k=1).is_no
        decision = specialize_minimally(q, access, k=2)
        assert decision
        assert len(decision.witness) == 2

    def test_ucq_specialization(self, world):
        _, access = world
        u = parse_ucq("Q(y) :- R(x, y) ; Q(y) :- S(y, c), c = 1")
        # x appears in disjunct 1 only; S-disjunct is unconstrained on y.
        decision = specialize_minimally(u, access)
        assert decision
        chosen = {v.name for v in decision.witness}
        assert "x" in chosen

    def test_specialization_is_covered_helper(self, accident_access,
                                              parameterized_q):
        assert specialization_is_covered(parameterized_q, accident_access,
                                         (Var("date"),))
        assert not specialization_is_covered(parameterized_q,
                                             accident_access,
                                             (Var("district"),))


class TestProposition54:
    def test_covering_schema_accepts(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 3)])
        q = parse_query("Q(x) := FORALL y. (NOT R(x, y) OR R(y, x))")
        decision = fully_parameterized_specialization(q, access)
        assert decision
        names = {v.name for v in decision.witness}
        assert names == {"x", "y"}

    def test_non_covering_schema_rejected(self):
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 3)])
        q = parse_query("Q(x) := EXISTS y, z. R(x, y, z)")
        decision = fully_parameterized_specialization(q, access)
        assert decision.is_no
        assert "does not cover" in decision.reason

    def test_fo_query_with_negation_goes_through_prop54(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 3)])
        q = parse_query("Q(x) := R(x, y) AND NOT R(y, x)")
        # QSP proper is undecidable for FO...
        assert specialize_minimally(q, access).is_unknown
        # ... but Proposition 5.4 gives the constructive fallback.
        assert fully_parameterized_specialization(q, access)


class TestSetCoverShape:
    """Example 5.2's reduction skeleton: shared z-variables make QSP a
    set-cover search.  (The literal example text folds away under core
    minimization — see DESIGN.md — so we keep the shared-variable
    structure without the constant atoms.)"""

    def make(self, n_relations=3):
        spec = {f"R{i}": ("A", "B1", "B2", "B3")
                for i in range(1, n_relations + 1)}
        schema = Schema.from_dict(spec)
        constraints = []
        for name in spec:
            constraints.append(
                AccessConstraint(name, ("A",), ("B1", "B2", "B3"), 1))
            for b in ("B1", "B2", "B3"):
                constraints.append(AccessConstraint(name, (b,), ("A",), 1))
        return schema, AccessSchema(schema, constraints)

    def test_cover_by_one_subset(self):
        schema, access = self.make(2)
        # R1 covers z1, z2, z3; R2 repeats z1, z2, z3 => choosing y1
        # covers everything R2 needs through the shared z's.
        q = parse_cq("Q() :- R1(y1, z1, z2, z3), R2(y2, z1, z2, z3)")
        assert is_boundedly_evaluable(q, access).is_no
        decision = specialize_minimally(
            q, access, parameters=[Var("y1"), Var("y2")], k=1)
        assert decision
        assert len(decision.witness) == 1

    def test_disjoint_subsets_need_both(self):
        schema, access = self.make(2)
        q = parse_cq("Q() :- R1(y1, z1, z1, z1), R2(y2, z2, z2, z2)")
        assert specialize_minimally(
            q, access, parameters=[Var("y1"), Var("y2")], k=1).is_no
        assert specialize_minimally(
            q, access, parameters=[Var("y1"), Var("y2")], k=2)
