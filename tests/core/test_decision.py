"""Tests for the Decision/Budget plumbing."""

from __future__ import annotations


from repro.core import Budget, Decision, Verdict, no, unknown, yes


class TestDecision:
    def test_truthiness(self):
        assert yes("fine")
        assert not no("nope")
        assert not unknown("dunno")

    def test_flags(self):
        assert yes().is_yes
        assert no().is_no
        assert unknown().is_unknown
        assert not yes().is_no

    def test_explain(self):
        assert yes("because").explain() == "yes: because"
        assert str(no()) == "no"

    def test_witness_and_details(self):
        decision = yes("ok", witness=[1, 2], extra="data")
        assert decision.witness == [1, 2]
        assert decision.details["extra"] == "data"

    def test_verdict_str(self):
        assert str(Verdict.YES) == "yes"
        assert str(Verdict.UNKNOWN) == "unknown"


class TestBudget:
    def test_spend(self):
        budget = Budget(steps=2)
        assert budget.spend()
        assert budget.spend()
        assert not budget.spend()
        assert budget.exhausted

    def test_spend_amount(self):
        budget = Budget(steps=10)
        assert budget.spend(10)
        assert not budget.spend(1)

    def test_shared_across_procedures(self):
        """A budget threaded through several calls depletes globally."""
        from repro import AccessConstraint, AccessSchema, Schema
        from repro.core import a_satisfiable
        from repro.query import parse_cq
        schema = Schema.from_dict({"R": ("X",)})
        access = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 2)])
        budget = Budget(steps=3)
        q = parse_cq("Q() :- R(a), R(b), R(c), R(d)")
        a_satisfiable(q, access, budget)
        assert budget.steps < 3
