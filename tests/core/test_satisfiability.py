"""Unit tests for A-satisfiability (Lemma 3.2)."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Schema
from repro.core import Budget, a_instances, a_satisfiable
from repro.query import parse_cq


@pytest.fixture
def world():
    schema = Schema.from_dict({"R": ("A", "B")})
    aschema = AccessSchema(schema, [
        AccessConstraint("R", ("A",), ("B",), 1)])
    return schema, aschema


class TestASatisfiable:
    def test_plain_query_satisfiable(self, world):
        _, aschema = world
        q = parse_cq("Q(x) :- R(x, y)")
        assert a_satisfiable(q, aschema)

    def test_example31_2_unsatisfiable(self, example31):
        _, a2, q2 = example31["2"]
        decision = a_satisfiable(q2, a2)
        assert decision.is_no

    def test_classically_unsat(self, world):
        _, aschema = world
        q = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
        assert a_satisfiable(q, aschema).is_no

    def test_cardinality_two_allows_two_values(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        q = parse_cq("Q(x) :- R(x, y1), R(x, y2), y1 = 1, y2 = 2")
        assert a_satisfiable(q, aschema)

    def test_global_cardinality(self):
        """R(∅ -> X, 2): at most two distinct values overall."""
        schema = Schema.from_dict({"R": ("X",)})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 2)])
        ok = parse_cq("Q() :- R(a), R(b), a = 1, b = 2")
        too_many = parse_cq("Q() :- R(a), R(b), R(c), a = 1, b = 2, c = 3")
        assert a_satisfiable(ok, aschema)
        assert a_satisfiable(too_many, aschema).is_no

    def test_variable_identification_rescues(self):
        """Three atoms, bound 2: satisfiable because variables may merge."""
        schema = Schema.from_dict({"R": ("X",)})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 2)])
        q = parse_cq("Q() :- R(a), R(b), R(c), a = 1, b = 2")
        assert a_satisfiable(q, aschema)

    def test_no_constraints_shortcut(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [])
        q = parse_cq("Q(x) :- R(x, y), R(y, x)")
        assert a_satisfiable(q, aschema)

    def test_budget_exhaustion_reports_unknown(self):
        schema = Schema.from_dict({"R": ("X",)})
        # A constraint so tight no witness exists, with a tiny budget so
        # the enumeration cannot finish.
        aschema = AccessSchema(schema, [
            AccessConstraint("R", (), ("X",), 1)])
        q = parse_cq("Q() :- R(a), R(b), R(c), R(d), R(e), R(f), "
                     "a = 1, b = 2")
        decision = a_satisfiable(q, aschema, Budget(steps=1))
        # Chase's pigeonhole already answers this one; force the slow
        # path with a constraint the fast paths cannot decide.
        assert decision.is_no or decision.is_unknown

    def test_ucq_any_disjunct(self, example31):
        _, a2, q2 = example31["2"]
        sat = parse_cq("P(x) :- R2(x, y)")
        # Rename head so UCQ construction works.
        from repro.query.ast import CQ, UCQ
        u = UCQ("U", [CQ("U1", q2.head, q2.atoms, q2.equalities),
                      CQ("U2", sat.head, sat.atoms, sat.equalities)])
        assert a_satisfiable(u, a2)


class TestAInstances:
    def test_instances_satisfy_schema(self, world):
        _, aschema = world
        q = parse_cq("Q(x) :- R(x, y), R(y, x)")
        count = 0
        for instance in a_instances(q, aschema):
            assert instance.db.satisfies(aschema)
            count += 1
        assert count > 0

    def test_head_value_consistent_with_valuation(self, world):
        _, aschema = world
        q = parse_cq("Q(x) :- R(x, y), y = 3")
        for instance in a_instances(q, aschema):
            rows = instance.db.relation_tuples("R")
            assert any(row[1] == 3 for row in rows)
            assert (instance.head_value[0],) in {
                (row[0],) for row in rows}

    def test_classically_unsat_yields_nothing(self, world):
        _, aschema = world
        q = parse_cq("Q(x) :- R(x, y), x = 1, x = 2")
        assert list(a_instances(q, aschema)) == []

    def test_named_constants_reachable(self, world):
        """extra_constants lets variables map onto foreign constants."""
        from repro.query import Const
        _, aschema = world
        q = parse_cq("Q(x) :- R(x, y)")
        values = {instance.valuation[v]
                  for instance in a_instances(
                      q, aschema, extra_constants=[Const(99)])
                  for v in instance.valuation}
        assert 99 in values
