"""Unit tests for upper/lower envelopes (Section 4, Examples 4.1 and 4.5)."""

from __future__ import annotations

import pytest

from repro import AccessConstraint, AccessSchema, Database, Schema
from repro.core import (a_contained, answer_count_bound, lower_envelope,
                        upper_envelope)
from repro.engine import evaluate, execute_plan
from repro.query import parse_cq, parse_ucq


class TestExample41Upper:
    def test_q1_has_upper_envelope(self, example41):
        schema, access, q1, _ = example41
        decision = upper_envelope(q1, access)
        assert decision
        envelope = decision.witness
        # The found relaxation drops R(y, w) — one atom.
        assert decision.details["removed_atoms"] == ["R(y, w)"]
        assert envelope.bound is not None

    def test_q1_envelope_sandwich_on_data(self, example41):
        schema, access, q1, _ = example41
        envelope = upper_envelope(q1, access).witness
        db = Database(schema, access)
        db.insert_many("R", [(1, 2), (2, 1), (1, 3), (3, 4), (4, 1),
                             (2, 5), (5, 2)])
        db.check()
        exact = evaluate(q1, db)
        upper = execute_plan(envelope.plan, db).answers
        assert exact <= upper
        assert len(upper - exact) <= envelope.bound

    def test_q2_has_no_envelope(self, example41):
        _, access, _, q2 = example41
        assert upper_envelope(q2, access).is_no
        assert lower_envelope(q2, access).is_no

    def test_not_bounded_reason(self, example41):
        _, access, _, q2 = example41
        decision = upper_envelope(q2, access)
        assert "not bounded" in decision.reason


class TestExample41Lower:
    def test_q1_has_lower_envelope(self, example41):
        schema, access, q1, _ = example41
        decision = lower_envelope(q1, access, k=2)
        assert decision
        envelope = decision.witness
        assert envelope.bound is not None
        # Lower envelope must be A-contained in Q1.
        assert a_contained(envelope.query, q1, access)

    def test_q1_lower_sandwich_on_data(self, example41):
        schema, access, q1, _ = example41
        envelope = lower_envelope(q1, access, k=2).witness
        db = Database(schema, access)
        db.insert_many("R", [(1, 2), (2, 1), (1, 3), (3, 4), (4, 1),
                             (2, 5), (5, 2)])
        db.check()
        exact = evaluate(q1, db)
        lower = execute_plan(envelope.plan, db).answers
        assert lower <= exact
        assert len(exact - lower) <= envelope.bound


class TestExample45Split:
    def test_split_envelope_found(self, example45):
        schema, access, q = example45
        decision = lower_envelope(q, access, k=2)
        assert decision
        assert "split" in decision.reason
        envelope = decision.witness
        # The envelope is actually A-equivalent to Q here (the paper
        # notes Q' ≡A Q), so on data the answers coincide.
        db = Database(schema, access)
        db.insert_many("R", [(1, "b1", "c1"), (2, "b2", "c2"),
                             (1, "b3", "c3")])
        db.check()
        assert execute_plan(envelope.plan, db).answers == evaluate(q, db)

    def test_split_envelope_contained(self, example45):
        _, access, q = example45
        envelope = lower_envelope(q, access, k=2).witness
        assert a_contained(envelope.query, q, access)


class TestAnswerCountBound:
    def test_bounded_query_has_bound(self, accident_access, q0):
        bound = answer_count_bound(q0, accident_access)
        assert bound == 610 * 192  # aid fan-out times vid fan-out.

    def test_unbounded_query_raises(self, example41):
        _, access, _, q2 = example41
        from repro.errors import QueryError
        with pytest.raises(QueryError):
            answer_count_bound(q2, access)


class TestUCQEnvelopes:
    @pytest.fixture
    def world(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 3)])
        return schema, access

    def test_upper_envelope_union(self, world):
        schema, access = world
        # Each disjunct is Q1 of Example 4.1 up to constants.
        u = parse_ucq(
            "Q(x) :- R(w, x), R(y, w), R(x, z), w = 1 ; "
            "Q(x) :- R(w, x), R(y, w), R(x, z), w = 2")
        decision = upper_envelope(u, access)
        assert decision
        envelope = decision.witness
        db = Database(schema, access)
        db.insert_many("R", [(1, 5), (2, 6), (5, 7), (6, 8), (9, 1)])
        db.check()
        exact = evaluate(u, db)
        upper = execute_plan(envelope.plan, db).answers
        assert exact <= upper
        assert len(upper - exact) <= envelope.bound

    def test_lower_envelope_union(self, world):
        schema, access = world
        u = parse_ucq(
            "Q(x) :- R(w, x), R(y, w), R(x, z), w = 1 ; "
            "Q(x) :- R(w, x), R(y, w), R(x, z), w = 2")
        decision = lower_envelope(u, access, k=2)
        assert decision
        envelope = decision.witness
        db = Database(schema, access)
        db.insert_many("R", [(1, 5), (2, 6), (5, 7), (6, 8), (9, 1)])
        db.check()
        exact = evaluate(u, db)
        lower = execute_plan(envelope.plan, db).answers
        assert lower <= exact

    def test_unbounded_union_rejected(self, world):
        _, access = world
        u = parse_ucq("Q(x) :- R(w, x), w = 1 ; Q(x) :- R(x, z)")
        assert upper_envelope(u, access).is_no
        assert lower_envelope(u, access).is_no


class TestEnvelopeEdgeCases:
    def test_already_covered_query(self, accident_access, q0):
        """UEP on a covered query degenerates: the query is its own
        envelope (removing zero atoms)."""
        decision = upper_envelope(q0, accident_access)
        assert decision
        assert decision.details["removed_atoms"] == []

    def test_nonconstant_constraint_bound_is_none(self):
        from repro import LogCardinality
        schema = Schema.from_dict({"R": ("A", "B")})
        access = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), LogCardinality())])
        q = parse_cq("Q(x) :- R(w, x), R(x, z), R(y, w), w = 1")
        decision = upper_envelope(q, access)
        assert decision
        assert decision.witness.bound is None
        # Supplying a db_size makes the bound concrete.
        sized = upper_envelope(q, access, db_size=1024)
        assert sized.witness.bound is not None
