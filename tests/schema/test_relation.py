"""Unit tests for relational schemas."""

from __future__ import annotations

import pytest

from repro import RelationSchema, Schema, SchemaError


class TestRelationSchema:
    def test_basic(self):
        r = RelationSchema("R", ("A", "B"))
        assert r.arity == 2
        assert r.position("B") == 1
        assert r.has_attribute("A")
        assert not r.has_attribute("Z")

    def test_positions(self):
        r = RelationSchema("R", ("A", "B", "C"))
        assert r.positions(("C", "A")) == (2, 0)

    def test_unknown_attribute(self):
        r = RelationSchema("R", ("A",))
        with pytest.raises(SchemaError, match="no attribute"):
            r.position("B")

    def test_duplicate_attributes_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            RelationSchema("R", ("A", "A"))

    def test_empty_name_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("", ("A",))

    def test_no_attributes_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("R", ())

    def test_str(self):
        assert str(RelationSchema("R", ("A", "B"))) == "R(A, B)"


class TestSchema:
    def test_from_dict(self):
        schema = Schema.from_dict({"R": ("A",), "S": ("B", "C")})
        assert len(schema) == 2
        assert schema.relation("S").arity == 2
        assert "R" in schema

    def test_duplicate_relation_rejected(self):
        schema = Schema([RelationSchema("R", ("A",))])
        with pytest.raises(SchemaError, match="duplicate"):
            schema.add(RelationSchema("R", ("B",)))

    def test_unknown_relation(self):
        schema = Schema()
        with pytest.raises(SchemaError, match="no relation"):
            schema.relation("R")

    def test_size_counts_attributes(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("C",)})
        assert schema.size() == 3

    def test_iteration(self):
        schema = Schema.from_dict({"R": ("A",), "S": ("B",)})
        assert [r.name for r in schema] == ["R", "S"]
