"""Unit tests for access constraints and access schemas."""

from __future__ import annotations

import pytest

from repro import (AccessConstraint, AccessSchema, ConstantCardinality,
                   LogCardinality, PowerCardinality, Schema, SchemaError)
from repro.schema.access import as_cardinality


class TestCardinalityFunctions:
    def test_constant(self):
        c = ConstantCardinality(5)
        assert c.bound(10) == 5
        assert c.bound(10**9) == 5
        assert c.is_constant

    def test_constant_must_be_positive(self):
        with pytest.raises(SchemaError):
            ConstantCardinality(0)

    def test_log(self):
        c = LogCardinality()
        assert c.bound(2) == 1
        assert c.bound(1024) == 10
        assert not c.is_constant

    def test_log_grows_slowly(self):
        c = LogCardinality()
        assert c.bound(10**6) < 21

    def test_power(self):
        c = PowerCardinality(0.5)
        assert c.bound(100) == 10
        assert not c.is_constant

    def test_power_rejects_superlinear(self):
        with pytest.raises(SchemaError):
            PowerCardinality(1.0)
        with pytest.raises(SchemaError):
            PowerCardinality(0.0)

    def test_as_cardinality(self):
        assert isinstance(as_cardinality(3), ConstantCardinality)
        log = LogCardinality()
        assert as_cardinality(log) is log
        with pytest.raises(SchemaError):
            as_cardinality("nope")


class TestAccessConstraint:
    def test_basic(self):
        c = AccessConstraint("R", ("A",), ("B",), 610)
        assert c.x_set == {"A"}
        assert c.y_set == {"B"}
        assert c.bound(10**9) == 610
        assert str(c) == "R(A -> B, 610)"

    def test_empty_x(self):
        c = AccessConstraint("R", (), ("C",), 1)
        assert c.x == ()
        assert c.is_functional
        assert str(c) == "R(() -> C, 1)"

    def test_multi_y_str(self):
        c = AccessConstraint("R", ("A",), ("B", "C"), 1)
        assert str(c) == "R(A -> (B, C), 1)"

    def test_functional_detection(self):
        assert AccessConstraint("R", ("A",), ("B",), 1).is_functional
        assert not AccessConstraint("R", ("A",), ("B",), 2).is_functional
        assert not AccessConstraint("R", ("A",), ("B",),
                                    LogCardinality()).is_functional

    def test_empty_y_rejected(self):
        with pytest.raises(SchemaError):
            AccessConstraint("R", ("A",), (), 1)

    def test_duplicates_rejected(self):
        with pytest.raises(SchemaError):
            AccessConstraint("R", ("A", "A"), ("B",), 1)
        with pytest.raises(SchemaError):
            AccessConstraint("R", ("A",), ("B", "B"), 1)

    def test_validate_against_schema(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        AccessConstraint("R", ("A",), ("B",), 1).validate_against(schema)
        with pytest.raises(SchemaError, match="unknown attribute"):
            AccessConstraint("R", ("A",), ("Z",), 1).validate_against(schema)
        with pytest.raises(SchemaError, match="no relation"):
            AccessConstraint("T", ("A",), ("B",), 1).validate_against(schema)

    def test_positions(self):
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        relation = schema.relation("R")
        c = AccessConstraint("R", ("C",), ("A", "B"), 2)
        assert c.x_positions(relation) == (2,)
        assert c.y_positions(relation) == (0, 1)


class TestAccessSchema:
    def test_add_validates(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema)
        with pytest.raises(SchemaError):
            aschema.add(AccessConstraint("R", ("Z",), ("B",), 1))

    def test_for_relation(self):
        schema = Schema.from_dict({"R": ("A", "B"), "S": ("C", "D")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1),
            AccessConstraint("S", ("C",), ("D",), 2),
        ])
        assert len(aschema.for_relation("R")) == 1
        assert len(aschema.for_relation("S")) == 1
        assert aschema.functional_constraints()[0].relation_name == "R"

    def test_all_constant(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 2)])
        assert aschema.all_constant
        aschema.add(AccessConstraint("R", ("B",), ("A",), LogCardinality()))
        assert not aschema.all_constant

    def test_covers_relation_prop54(self):
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 1)])
        assert not aschema.covers_relation("R")
        aschema.add(AccessConstraint("R", ("A",), ("B", "C"), 1))
        assert aschema.covers_relation("R")
        assert aschema.covers_schema()

    def test_covers_schema_needs_every_relation(self):
        schema = Schema.from_dict({"R": ("A",), "S": ("B",)})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", (), ("A",), 5)])
        assert aschema.covers_relation("R")
        assert not aschema.covers_schema()

    def test_size(self):
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B", "C"), 1)])
        assert aschema.size() == 3

    def test_max_constant_bound(self):
        schema = Schema.from_dict({"R": ("A", "B")})
        aschema = AccessSchema(schema, [
            AccessConstraint("R", ("A",), ("B",), 7)])
        assert aschema.max_constant_bound() == 7
