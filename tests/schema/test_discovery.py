"""Unit and property tests for access-constraint discovery."""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro import Database, DiscoveryOptions, Schema, discover_access_schema
from repro.schema.discovery import discover_for_relation


@pytest.fixture
def db():
    schema = Schema.from_dict({"R": ("A", "B")})
    database = Database(schema)
    database.insert_many("R", [(1, "a"), (1, "b"), (2, "a"), (3, "c")])
    return database


class TestDiscovery:
    def test_finds_expected_bound(self, db):
        constraints = discover_for_relation(db, "R")
        as_text = {str(c) for c in constraints}
        assert "R(A -> B, 2)" in as_text
        assert "R(B -> A, 2)" in as_text

    def test_empty_lhs_constraints(self, db):
        constraints = discover_for_relation(db, "R")
        as_text = {str(c) for c in constraints}
        assert "R(() -> A, 3)" in as_text

    def test_max_bound_filters(self, db):
        options = DiscoveryOptions(max_bound=1)
        constraints = discover_for_relation(db, "R", options)
        assert all(c.cardinality.value <= 1 for c in constraints)

    def test_slack_inflates_bounds(self, db):
        options = DiscoveryOptions(slack=2.0)
        constraints = discover_for_relation(db, "R", options)
        by_text = {(c.x, c.y): c for c in constraints}
        assert by_text[(("A",), ("B",))].cardinality.value == 4

    def test_per_relation_limit(self, db):
        options = DiscoveryOptions(per_relation_limit=2)
        assert len(discover_for_relation(db, "R", options)) == 2

    def test_empty_relation_learns_nothing(self):
        schema = Schema.from_dict({"R": ("A",)})
        db = Database(schema)
        assert discover_for_relation(db, "R") == []

    def test_pair_lhs(self):
        schema = Schema.from_dict({"R": ("A", "B", "C")})
        db = Database(schema)
        db.insert_many("R", [(1, 2, 3), (1, 2, 4)])
        options = DiscoveryOptions(pair_lhs=True)
        constraints = discover_for_relation(db, "R", options)
        assert any(set(c.x) == {"A", "B"} for c in constraints)

    def test_whole_schema(self, db):
        aschema = discover_access_schema(db)
        assert len(aschema) > 0
        assert aschema.schema is db.schema


# -- property: every discovered constraint holds on its source instance ----

rows = st.lists(
    st.tuples(st.integers(0, 5), st.integers(0, 5), st.integers(0, 3)),
    min_size=0, max_size=30)


@given(rows=rows)
@settings(max_examples=60, deadline=None)
def test_discovered_constraints_are_sound(rows):
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    db = Database(schema)
    db.insert_many("R", rows)
    aschema = discover_access_schema(
        db, DiscoveryOptions(pair_lhs=True, max_bound=10**6))
    assert db.satisfies(aschema)


@given(rows=rows, slack=st.floats(1.0, 3.0))
@settings(max_examples=30, deadline=None)
def test_slack_preserves_soundness(rows, slack):
    schema = Schema.from_dict({"R": ("A", "B", "C")})
    db = Database(schema)
    db.insert_many("R", rows)
    aschema = discover_access_schema(
        db, DiscoveryOptions(slack=slack, max_bound=10**6))
    assert db.satisfies(aschema)
