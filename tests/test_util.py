"""Unit tests for repro._util."""

from __future__ import annotations

from hypothesis import given, strategies as st

from repro._util import (FreshNames, UnionFind, constrained_partitions,
                         cross_product, powerset, set_partitions,
                         stable_unique)


class TestUnionFind:
    def test_singletons(self):
        uf = UnionFind([1, 2, 3])
        assert uf.find(1) == 1
        assert not uf.same(1, 2)

    def test_union_and_find(self):
        uf = UnionFind()
        uf.union("a", "b")
        uf.union("b", "c")
        assert uf.same("a", "c")
        assert not uf.same("a", "d")

    def test_classes(self):
        uf = UnionFind([1, 2, 3, 4])
        uf.union(1, 2)
        uf.union(3, 4)
        classes = sorted(sorted(c) for c in uf.classes())
        assert classes == [[1, 2], [3, 4]]

    def test_class_of(self):
        uf = UnionFind()
        uf.union("x", "y")
        assert uf.class_of("x") == {"x", "y"}

    def test_copy_is_independent(self):
        uf = UnionFind([1, 2])
        clone = uf.copy()
        clone.union(1, 2)
        assert clone.same(1, 2)
        assert not uf.same(1, 2)

    def test_lazy_add(self):
        uf = UnionFind()
        assert uf.find("fresh") == "fresh"

    @given(st.lists(st.tuples(st.integers(0, 8), st.integers(0, 8)),
                    max_size=20))
    def test_union_is_equivalence(self, pairs):
        uf = UnionFind(range(9))
        for a, b in pairs:
            uf.union(a, b)
        # Reflexive, symmetric, transitive by construction; check the
        # classes partition the universe.
        classes = uf.classes()
        flattened = sorted(x for c in classes for x in c)
        assert flattened == sorted(range(9))
        for c in classes:
            members = sorted(c)
            for m in members:
                assert uf.same(members[0], m)


class TestFreshNames:
    def test_avoids_taken(self):
        gen = FreshNames({"x"})
        assert gen.fresh("x") == "x_1"
        assert gen.fresh("x") == "x_2"

    def test_unseen_stem_is_returned_verbatim(self):
        gen = FreshNames({"x"})
        assert gen.fresh("z") == "z"

    def test_reserve(self):
        gen = FreshNames()
        gen.reserve("v")
        assert gen.fresh("v") == "v_1"

    def test_no_collisions_ever(self):
        gen = FreshNames({"a"})
        names = {gen.fresh("a") for _ in range(50)}
        assert len(names) == 50
        assert "a" not in names


class TestPowerset:
    def test_order_by_size(self):
        subsets = list(powerset([1, 2, 3]))
        sizes = [len(s) for s in subsets]
        assert sizes == sorted(sizes)
        assert len(subsets) == 8

    def test_max_size(self):
        subsets = list(powerset([1, 2, 3], max_size=1))
        assert subsets == [(), (1,), (2,), (3,)]

    def test_min_size(self):
        subsets = list(powerset([1, 2], min_size=1))
        assert () not in subsets


class TestSetPartitions:
    def test_empty(self):
        assert list(set_partitions([])) == [[]]

    def test_bell_numbers(self):
        # Bell numbers: 1, 1, 2, 5, 15, 52.
        for n, bell in [(1, 1), (2, 2), (3, 5), (4, 15), (5, 52)]:
            assert len(list(set_partitions(range(n)))) == bell

    def test_blocks_partition_universe(self):
        for partition in set_partitions([1, 2, 3, 4]):
            flat = sorted(x for block in partition for x in block)
            assert flat == [1, 2, 3, 4]


class TestConstrainedPartitions:
    def test_must_merge(self):
        for partition in constrained_partitions([1, 2, 3],
                                                must_merge=[(1, 2)]):
            block_of = {x: i for i, b in enumerate(partition) for x in b}
            assert block_of[1] == block_of[2]

    def test_must_differ(self):
        for partition in constrained_partitions([1, 2, 3],
                                                must_differ=[(1, 2)]):
            block_of = {x: i for i, b in enumerate(partition) for x in b}
            assert block_of[1] != block_of[2]

    def test_contradiction_yields_nothing(self):
        result = list(constrained_partitions(
            [1, 2], must_merge=[(1, 2)], must_differ=[(1, 2)]))
        assert result == []

    def test_counts(self):
        # 3 elements with one merge: partitions of 2 super-elements = 2.
        assert len(list(constrained_partitions([1, 2, 3],
                                               must_merge=[(1, 2)]))) == 2


class TestMisc:
    def test_stable_unique(self):
        assert stable_unique([3, 1, 3, 2, 1]) == [3, 1, 2]

    def test_cross_product_empty_pool(self):
        assert list(cross_product([[1, 2], []])) == []

    def test_cross_product(self):
        assert sorted(cross_product([[1, 2], [3]])) == [(1, 3), (2, 3)]
