"""Unit tests for the exposition renderer, parser and validator."""

from __future__ import annotations

import pytest

from repro.obs.export import (main, parse_exposition, render_exposition,
                              validate_exposition)
from repro.obs.metrics import MetricsRegistry


@pytest.fixture
def registry():
    registry = MetricsRegistry()
    registry.counter("repro_requests_total", "Requests served").inc(5)
    ops = registry.counter("repro_ops_total", label_names=("op",))
    ops.labels(op="hash_join").inc(2)
    histogram = registry.histogram("repro_latency_seconds",
                                   "Latency", buckets=(0.1, 1.0))
    histogram.observe(0.05)
    histogram.observe(0.5)
    registry.gauge("repro_cache_size").set(3)
    return registry


def test_render_exposition_format(registry):
    text = render_exposition(registry)
    assert "# HELP repro_requests_total Requests served" in text
    assert "# TYPE repro_requests_total counter" in text
    assert "repro_requests_total 5" in text
    assert 'repro_ops_total{op="hash_join"} 2' in text
    assert "# TYPE repro_latency_seconds histogram" in text
    assert 'repro_latency_seconds_bucket{le="0.1"} 1' in text
    assert 'repro_latency_seconds_bucket{le="+Inf"} 2' in text
    assert "repro_latency_seconds_count 2" in text
    assert text.endswith("\n")


def test_parse_round_trips_render(registry):
    families = parse_exposition(render_exposition(registry))
    assert families["repro_requests_total"]["type"] == "counter"
    assert families["repro_requests_total"]["samples"] == {
        "repro_requests_total": 5.0}
    assert families["repro_ops_total"]["samples"] == {
        'repro_ops_total{op="hash_join"}': 2.0}
    # Histogram samples group under the family, including +Inf.
    latency = families["repro_latency_seconds"]
    assert latency["type"] == "histogram"
    assert latency["samples"]['repro_latency_seconds_bucket{le="+Inf"}'] \
        == 2.0
    assert latency["samples"]["repro_latency_seconds_count"] == 2.0


def test_parse_rejects_malformed_lines():
    with pytest.raises(ValueError, match="expected 'name value'"):
        parse_exposition("just_a_name\n")
    with pytest.raises(ValueError, match="bad sample value"):
        parse_exposition("metric not-a-number\n")
    with pytest.raises(ValueError, match="malformed TYPE"):
        parse_exposition("# TYPE incomplete\n")


def test_validate_reports_missing_and_empty_requirements(registry):
    text = render_exposition(registry)
    assert validate_exposition(text, ["repro_requests_total"]) == []
    problems = validate_exposition(text, ["repro_absent_total"])
    assert problems == ["required metric 'repro_absent_total' is missing"]
    assert validate_exposition("metric nan\n") == []  # nan parses as float
    assert validate_exposition("broken line here\n")[0].startswith(
        "exposition does not parse")


def test_main_checks_file_and_requirements(registry, tmp_path, capsys):
    path = tmp_path / "metrics.prom"
    path.write_text(render_exposition(registry))
    assert main(["--check", str(path),
                 "--require", "repro_requests_total,repro_latency_seconds"
                 ]) == 0
    out = capsys.readouterr().out
    assert "metric families" in out and "2 required present" in out

    assert main(["--check", str(path), "--require", "nope_total"]) == 1
    assert "INVALID" in capsys.readouterr().err

    assert main(["--check", str(tmp_path / "missing.prom")]) == 2
