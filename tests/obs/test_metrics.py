"""Unit tests for the metrics registry and its instruments."""

from __future__ import annotations

import threading

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, LATENCY_BUCKETS,
                               MetricsRegistry, merge_counts)


# -- Counter ------------------------------------------------------------------


def test_counter_inc_and_value():
    counter = Counter("requests_total")
    counter.inc()
    counter.inc(4)
    assert counter.value == 5


def test_counter_rejects_negative_increment():
    counter = Counter("requests_total")
    with pytest.raises(ValueError, match="only go up"):
        counter.inc(-1)


def test_counter_set_total_overwrites():
    counter = Counter("mirrored_total")
    counter.inc(7)
    counter.set_total(3)
    assert counter.value == 3


def test_counter_labels_children_and_samples():
    counter = Counter("ops_total", label_names=("op",))
    counter.labels(op="hash_join").inc(2)
    counter.labels(op="fetch").inc()
    counter.labels(op="hash_join").inc()
    assert counter.samples() == [({"op": "fetch"}, 1),
                                 ({"op": "hash_join"}, 3)]


def test_counter_labels_shape_mismatch_raises():
    counter = Counter("ops_total", label_names=("op",))
    with pytest.raises(ValueError, match="expects labels"):
        counter.labels(kind="fetch")


def test_counter_rejects_bad_names():
    with pytest.raises(ValueError, match="invalid metric name"):
        Counter("bad name")
    with pytest.raises(ValueError, match="invalid label name"):
        Counter("ok_total", label_names=("bad-label",))


# -- Gauge --------------------------------------------------------------------


def test_gauge_set_and_add():
    gauge = Gauge("cache_size")
    gauge.set(10)
    gauge.add(-3)
    assert gauge.value == 7
    assert gauge.samples() == [({}, 7)]


# -- Histogram ----------------------------------------------------------------


def test_histogram_count_sum_mean_exact():
    histogram = Histogram("latency_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.05, 0.5, 2.0):
        histogram.observe(value)
    assert histogram.count == 4
    assert histogram.sum == pytest.approx(2.6)
    assert histogram.mean == pytest.approx(0.65)


def test_histogram_bucket_counts_cumulative_with_inf_tail():
    histogram = Histogram("latency_seconds", buckets=(0.1, 1.0))
    for value in (0.05, 0.5, 2.0):
        histogram.observe(value)
    assert histogram.bucket_counts() == [(0.1, 1), (1.0, 2),
                                         (float("inf"), 3)]


def test_histogram_quantile_interpolates_within_bucket():
    histogram = Histogram("latency_seconds", buckets=(1.0, 2.0))
    # Ten observations, all in the (1.0, 2.0] bucket: the median lands
    # at the bucket's midpoint under linear interpolation.
    for _ in range(10):
        histogram.observe(1.5)
    assert histogram.p50 == pytest.approx(1.5)
    assert histogram.quantile(1.0) == pytest.approx(2.0)


def test_histogram_quantile_clamps_to_last_finite_bound():
    histogram = Histogram("latency_seconds", buckets=(0.1,))
    histogram.observe(5.0)  # lands in the +inf bucket
    assert histogram.p99 == pytest.approx(0.1)


def test_histogram_empty_quantile_is_zero():
    histogram = Histogram("latency_seconds")
    assert histogram.p95 == 0.0


def test_histogram_quantile_range_checked():
    histogram = Histogram("latency_seconds")
    with pytest.raises(ValueError, match=r"\[0, 1\]"):
        histogram.quantile(1.5)


def test_histogram_matches_nearest_rank_within_bucket_width():
    # The documented contract for BatchReport's percentile swap: the
    # interpolated estimate differs from exact nearest-rank by at most
    # the width of the containing bucket.
    import random
    rng = random.Random(8)
    values = [rng.uniform(0.0001, 0.3) for _ in range(500)]
    histogram = Histogram("latency_seconds", buckets=LATENCY_BUCKETS)
    for value in values:
        histogram.observe(value)
    ranked = sorted(values)
    for q in (0.50, 0.95, 0.99):
        exact = ranked[min(len(ranked) - 1, int(q * len(ranked)))]
        estimate = histogram.quantile(q)
        position = 0
        while (position < len(LATENCY_BUCKETS)
               and LATENCY_BUCKETS[position] < exact):
            position += 1
        lower = LATENCY_BUCKETS[position - 1] if position else 0.0
        width = LATENCY_BUCKETS[min(position, len(LATENCY_BUCKETS) - 1)] \
            - lower
        assert abs(estimate - exact) <= width + 1e-12


# -- MetricsRegistry ----------------------------------------------------------


def test_registry_registration_is_idempotent():
    registry = MetricsRegistry()
    assert registry.counter("a_total") is registry.counter("a_total")
    assert registry.gauge("b") is registry.gauge("b")
    assert registry.histogram("c_seconds") is registry.histogram("c_seconds")


def test_registry_shape_mismatch_raises():
    registry = MetricsRegistry()
    registry.counter("a_total")
    with pytest.raises(ValueError, match="different shape"):
        registry.gauge("a_total")
    with pytest.raises(ValueError, match="different shape"):
        registry.counter("a_total", label_names=("op",))
    registry.histogram("h_seconds", buckets=(1.0,))
    with pytest.raises(ValueError, match="different shape"):
        registry.histogram("h_seconds", buckets=(2.0,))


def test_registry_collector_runs_at_snapshot_time():
    registry = MetricsRegistry()
    gauge = registry.gauge("external_size")
    source = {"size": 0}
    registry.register_collector(lambda: gauge.set(source["size"]))
    source["size"] = 42
    assert registry.as_flat_dict()["external_size"] == 42
    source["size"] = 7
    assert registry.as_flat_dict()["external_size"] == 7


def test_registry_as_flat_dict_folds_labels_and_histograms():
    registry = MetricsRegistry()
    registry.counter("plain_total").inc(2)
    ops = registry.counter("ops_total", label_names=("op",))
    ops.labels(op="fetch").inc(3)
    histogram = registry.histogram("latency_seconds", buckets=(1.0,))
    histogram.observe(0.5)
    flat = registry.as_flat_dict(prefix="repro_")
    assert flat["repro_plain_total"] == 2
    assert flat["repro_ops_total.op=fetch"] == 3
    assert flat["repro_latency_seconds_count"] == 1
    assert flat["repro_latency_seconds_sum"] == pytest.approx(0.5)
    # Bucket shapes are an implementation detail, not a trajectory.
    assert not any("bucket" in key for key in flat)


def test_registry_get_returns_instrument_or_none():
    registry = MetricsRegistry()
    counter = registry.counter("a_total")
    assert registry.get("a_total") is counter
    assert registry.get("missing") is None


def test_counter_is_thread_safe_under_contention():
    counter = Counter("hits_total")

    def spin():
        for _ in range(10_000):
            counter.inc()

    threads = [threading.Thread(target=spin) for _ in range(4)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert counter.value == 40_000


# -- merge_counts -------------------------------------------------------------


def test_merge_counts_folds_mappings_and_pairs():
    totals: dict = {}
    merge_counts(totals, {"a": 1, "b": 2})
    merge_counts(totals, [("a", 3), ("c", 5)])
    assert totals == {"a": 4, "b": 2, "c": 5}
