"""Unit tests for the ambient tracer: null path, nesting, threads."""

from __future__ import annotations

import json
import threading

import pytest

from repro.obs.trace import (NULL_SPAN, Tracer, annotate, current_tracer,
                             span)


def test_span_is_noop_when_no_tracer_active():
    assert current_tracer() is None
    assert span("anything") is NULL_SPAN
    # The shared null span is re-entrant and records nothing.
    with span("outer"):
        with span("inner"):
            pass
    assert current_tracer() is None


def test_tracer_collects_nested_tree():
    with Tracer() as tracer:
        with span("request"):
            with span("compile"):
                pass
            with span("execute"):
                with span("fetch"):
                    pass
    assert [root.name for root in tracer.roots] == ["request"]
    root = tracer.roots[0]
    assert [child.name for child in root.children] == ["compile", "execute"]
    assert [n.name for n in root.walk()] == ["request", "compile",
                                             "execute", "fetch"]
    assert root.find("fetch") is not None
    assert tracer.find("missing") is None


def test_sibling_roots_and_durations_nest():
    with Tracer() as tracer:
        with span("a"):
            pass
        with span("b"):
            with span("c"):
                pass
    assert [root.name for root in tracer.roots] == ["a", "b"]
    b = tracer.roots[1]
    assert b.duration_s >= b.children[0].duration_s >= 0.0


def test_span_attrs_and_annotate():
    with Tracer() as tracer:
        with span("request", query="Q0") as open_span:
            assert open_span.attrs == {"query": "Q0"}
            annotate(cached=True)
    root = tracer.roots[0]
    assert root.attrs == {"query": "Q0", "cached": True}
    # annotate outside any tracer/span is a silent no-op.
    annotate(ignored=1)


def test_exception_marks_span_and_propagates():
    with Tracer() as tracer:
        with pytest.raises(KeyError):
            with span("request"):
                with span("execute"):
                    raise KeyError("boom")
    root = tracer.roots[0]
    assert root.attrs["error"] == "KeyError"
    assert root.children[0].attrs["error"] == "KeyError"


def test_only_one_tracer_at_a_time():
    with Tracer():
        with pytest.raises(RuntimeError, match="already active"):
            with Tracer():
                pass
    # The failed activation must not have deactivated the outer one's
    # cleanup: a new tracer activates fine now.
    with Tracer() as tracer:
        with span("ok"):
            pass
    assert len(tracer.roots) == 1


def test_threads_record_their_own_roots():
    with Tracer() as tracer:
        def work(name):
            with span(name):
                with span("inner"):
                    pass

        threads = [threading.Thread(target=work, args=(f"w{i}",))
                   for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
    names = sorted(root.name for root in tracer.roots)
    assert names == ["w0", "w1", "w2", "w3"]
    assert all(root.children[0].name == "inner" for root in tracer.roots)


def test_stage_totals_sums_across_trees():
    with Tracer() as tracer:
        for _ in range(3):
            with span("request"):
                with span("execute"):
                    pass
    totals = tracer.stage_totals()
    assert set(totals) == {"request", "execute"}
    assert totals["request"] >= totals["execute"] >= 0.0


def test_to_dict_offsets_and_write_jsonl(tmp_path):
    with Tracer() as tracer:
        with span("request"):
            with span("compile"):
                pass
    tree = tracer.to_dicts()[0]
    assert tree["name"] == "request"
    assert tree["start_ms"] >= 0.0  # offset from the tracer's epoch
    child = tree["children"][0]
    assert child["name"] == "compile"
    assert child["duration_ms"] <= tree["duration_ms"]

    path = tmp_path / "trace.jsonl"
    assert tracer.write_jsonl(path) == 1
    lines = path.read_text().splitlines()
    assert len(lines) == 1
    assert json.loads(lines[0])["name"] == "request"


def test_render_is_indented_and_limited():
    with Tracer() as tracer:
        for _ in range(3):
            with span("request"):
                with span("compile"):
                    pass
    text = tracer.render(limit=2)
    assert text.count("request") == 2
    assert "  compile" in text
    assert "1 more root span(s)" in text
